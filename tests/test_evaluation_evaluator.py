"""Tests for the Evaluator pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.evaluation.evaluator import EvaluationRun, Evaluator
from repro.evaluation.protocols import RatedTestItemsProtocol
from repro.exceptions import EvaluationError
from repro.ganc.framework import GANC, GANCConfig
from repro.preferences.simple import TfidfPreference
from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender


def test_evaluator_validates_n(small_split):
    with pytest.raises(EvaluationError):
        Evaluator(small_split, n=0)


def test_evaluator_exposes_split_and_popularity(small_split):
    evaluator = Evaluator(small_split, n=5)
    assert evaluator.train is small_split.train
    assert evaluator.test is small_split.test
    assert evaluator.popularity.n_items == small_split.train.n_items
    # The popularity statistics are cached.
    assert evaluator.popularity is evaluator.popularity


def test_evaluate_recommender_fits_and_scores(small_split):
    evaluator = Evaluator(small_split, n=5)
    run = evaluator.evaluate_recommender(MostPopular(), algorithm="Pop")
    assert isinstance(run, EvaluationRun)
    assert run.algorithm == "Pop"
    assert run.report.dataset == small_split.train.name
    assert len(run.recommendations) == small_split.train.n_users


def test_evaluate_recommender_respects_fit_flag(small_split):
    evaluator = Evaluator(small_split, n=5)
    model = MostPopular().fit(small_split.train)
    run = evaluator.evaluate_recommender(model, fit=False)
    assert run.algorithm == "MostPopular"


def test_evaluate_recommendations_accepts_fitted_topn(small_split):
    evaluator = Evaluator(small_split, n=5)
    model = MostPopular().fit(small_split.train)
    run = evaluator.evaluate_recommendations(model.recommend_all(5), algorithm="Pop")
    assert run.report.f_measure >= 0.0


def test_evaluate_pipeline_with_ganc(small_split):
    evaluator = Evaluator(small_split, n=5)

    def build(split, n):
        model = GANC(
            MostPopular(),
            TfidfPreference(),
            DynamicCoverage(),
            config=GANCConfig(sample_size=20, seed=0),
        )
        model.fit(split.train)
        return model.recommend_all(n)

    run = evaluator.evaluate_pipeline(build, algorithm="GANC(Pop, thetaT, Dyn)")
    assert run.report.coverage > 0.0
    assert run.algorithm.startswith("GANC")


def test_evaluator_with_rated_protocol(small_split):
    evaluator = Evaluator(small_split, n=5, protocol=RatedTestItemsProtocol())
    run = evaluator.evaluate_recommender(MostPopular(), algorithm="Pop")
    for user, items in run.recommendations.items():
        test_items = set(small_split.test.user_items(user).tolist())
        assert set(np.asarray(items).tolist()).issubset(test_items)


def test_pop_beats_random_on_accuracy(small_split):
    """Sanity ordering the whole evaluation stack must reproduce."""
    evaluator = Evaluator(small_split, n=5)
    pop = evaluator.evaluate_recommender(MostPopular(), algorithm="Pop")
    rand = evaluator.evaluate_recommender(RandomRecommender(seed=0), algorithm="Rand")
    assert pop.report.f_measure > rand.report.f_measure
    assert rand.report.coverage > pop.report.coverage
