"""Delta-only artifact recompilation (``repro compile --update``).

The contracts under test:

* **Byte identity** — after an update, every shard file and every manifest
  field except ``revision`` equals a from-scratch compile of the extended
  dataset, for bare recommenders and GANC pipelines alike.
* **Delta-only writes** — shards whose rows did not change keep their
  inodes; only changed shards are rewritten and new-user shards appended.
* **Crash safety** — the manifest is swapped last, so an update that dies
  after rewriting shards leaves a live store serving the old revision byte
  for byte, and a re-run converges.
* **Compile robustness** — unique tmp names let two compiles share one
  artifact directory; ``covers`` answers instead of raising on garbage
  user arrays; ``load_manifest`` validates every key the store
  dereferences.
"""

from __future__ import annotations

import http.client
import json
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.serving.update as update_module
from repro.cli import main
from repro.data import extend_split
from repro.exceptions import ConfigurationError, DataFormatError
from repro.pipeline import (
    ComponentSpec,
    EvaluationSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
)
from repro.serving import (
    RecommendationStore,
    build_async_service,
    build_server,
    compile_artifact,
    compile_artifact_update,
    load_manifest,
    refit_pipeline,
    start_async_in_thread,
    start_in_thread,
)

N = 5


def _bare_spec(name: str) -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec(name), evaluation=EvaluationSpec(n=N), seed=0
    )


def _ganc_spec() -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("pop"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=16, optimizer="oslg"),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )


def _rating_delta(split, size=30, seed=7):
    rng = np.random.default_rng(seed)
    return extend_split(
        split,
        rng.integers(0, split.train.n_users, size=size),
        rng.integers(0, split.train.n_items, size=size),
        np.ones(size),
    )


def _assert_same_artifact(updated: Path, scratch: Path) -> None:
    """Every byte equal except the manifest's revision counter."""
    left, right = load_manifest(updated), load_manifest(scratch)
    left.pop("revision"), right.pop("revision")
    assert left == right
    for entry_l, entry_r in zip(left["shards"], right["shards"]):
        for kind in ("items", "scores"):
            assert (updated / entry_l[kind]).read_bytes() == (
                scratch / entry_r[kind]
            ).read_bytes()


def _shard_inodes(artifact_dir: Path) -> dict[str, int]:
    return {
        path.name: path.stat().st_ino
        for path in (artifact_dir / "shards").iterdir()
        if path.suffix == ".npy"
    }


# --------------------------------------------------------------------------- #
# Byte identity of the update
# --------------------------------------------------------------------------- #
class TestUpdateByteIdentity:
    @pytest.mark.parametrize("spec_builder", [lambda: _bare_spec("pop"), _ganc_spec])
    def test_update_equals_scratch_compile_of_extension(
        self, tmp_path, small_split, spec_builder
    ):
        spec = spec_builder()
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(spec).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)

        ext = _rating_delta(small_split)
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)
        report = compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        assert refit_report.kind == "delta"  # pop supports exact delta refits
        assert report.revision == 2

        scratch_dir = tmp_path / "scratch"
        compile_artifact(Pipeline(spec_builder()).fit(ext.split), scratch_dir, shard_size=16)
        _assert_same_artifact(artifact_dir, scratch_dir)

    def test_update_with_full_refit_fallback(self, tmp_path, small_split):
        # UserKNN has no delta path; the fallback must still land on the
        # exact from-scratch bytes.
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("userknn")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)

        ext = _rating_delta(small_split, size=10)
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)
        assert refit_report.kind == "full"
        compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        scratch_dir = tmp_path / "scratch"
        compile_artifact(
            Pipeline(_bare_spec("userknn")).fit(ext.split), scratch_dir, shard_size=16
        )
        _assert_same_artifact(artifact_dir, scratch_dir)

    def test_partial_artifact_stays_partial(self, tmp_path, small_split):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16, max_users=40)

        ext = _rating_delta(small_split)
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)
        report = compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        assert report.n_users == 40
        scratch_dir = tmp_path / "scratch"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(ext.split),
            scratch_dir,
            shard_size=16,
            max_users=40,
        )
        _assert_same_artifact(artifact_dir, scratch_dir)


# --------------------------------------------------------------------------- #
# Delta-only shard writes
# --------------------------------------------------------------------------- #
class TestDeltaOnlyWrites:
    def test_cold_start_skips_unchanged_shards_and_appends(
        self, tmp_path, small_split
    ):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=32)  # [0,32) [32,64) [64,80)
        inodes_before = _shard_inodes(artifact_dir)

        # Pure arrival delta: the universe grows, no ratings change, so the
        # model state is bitwise unchanged and only new users need rows.
        ext = extend_split(
            small_split,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            n_users=100,
        )
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)
        assert refit_report.state_changed is False
        report = compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        assert report.users_recomputed == 20  # only the arrivals
        assert report.shards_skipped == 2
        assert report.shards_rewritten == 1  # [64,80) grew to [64,96)
        assert report.shards_appended == 1  # [96,100)

        inodes_after = _shard_inodes(artifact_dir)
        for name in ("items_00000.npy", "scores_00000.npy", "items_00001.npy", "scores_00001.npy"):
            assert inodes_after[name] == inodes_before[name]  # untouched files
        assert inodes_after["items_00002.npy"] != inodes_before["items_00002.npy"]

        scratch_dir = tmp_path / "scratch"
        compile_artifact(Pipeline(_bare_spec("pop")).fit(ext.split), scratch_dir, shard_size=32)
        _assert_same_artifact(artifact_dir, scratch_dir)

    def test_rerunning_an_update_converges_to_all_skipped(self, tmp_path, small_split):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)

        again = compile_artifact_update(pipeline_dir, artifact_dir)
        assert again.shards_rewritten == 0 and again.shards_appended == 0
        assert again.shards_skipped == len(load_manifest(artifact_dir)["shards"])
        assert again.revision == 2  # the manifest swap still happened

    def test_counts_partition_the_shards(self, tmp_path, small_split):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)

        ext = _rating_delta(small_split)
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)
        report = compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        total = report.shards_skipped + report.shards_rewritten + report.shards_appended
        assert total == len(load_manifest(artifact_dir)["shards"])


# --------------------------------------------------------------------------- #
# Guard rails
# --------------------------------------------------------------------------- #
class TestUpdateValidation:
    def test_spec_mismatch_suggests_full_compile(self, tmp_path, small_split):
        artifact_dir = tmp_path / "artifact"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        other = Pipeline(_bare_spec("itemknn")).fit(small_split)
        with pytest.raises(ConfigurationError, match="full repro compile"):
            compile_artifact_update(other, artifact_dir)

    def test_shrunken_dataset_rejected(self, tmp_path, small_split):
        artifact_dir = tmp_path / "artifact"
        ext = extend_split(
            small_split,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            n_users=90,
        )
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(ext.split), artifact_dir, shard_size=16
        )
        smaller = Pipeline(_bare_spec("pop")).fit(small_split)
        with pytest.raises(ConfigurationError, match="extension"):
            compile_artifact_update(smaller, artifact_dir)

    def test_unfitted_pipeline_rejected(self, tmp_path, small_split):
        artifact_dir = tmp_path / "artifact"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        with pytest.raises(ConfigurationError, match="fitted"):
            compile_artifact_update(Pipeline(_bare_spec("pop")), artifact_dir)


# --------------------------------------------------------------------------- #
# Crash safety and warm reload
# --------------------------------------------------------------------------- #
class TestCrashSafetyAndReload:
    def test_crash_before_manifest_swap_keeps_old_revision_live(
        self, tmp_path, small_split, monkeypatch
    ):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)

        store = RecommendationStore(artifact_dir)
        users = np.arange(store.coverage, dtype=np.int64)
        before_rows = store.top_n(users).copy()
        assert store.revision == 1

        ext = _rating_delta(small_split)
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), ext.split)

        def _boom(path, payload):
            raise OSError("simulated crash between shard rewrite and manifest swap")

        # Shards are rewritten first; the manifest swap is the commit point.
        monkeypatch.setattr(update_module, "_atomic_write_json", _boom)
        with pytest.raises(OSError, match="simulated crash"):
            compile_artifact_update(
                refitted,
                artifact_dir,
                changed_users=ext.changed_users,
                state_changed=refit_report.state_changed,
            )
        monkeypatch.undo()

        # The live store's maps still point at the old (renamed-over) inodes:
        # it serves the old revision byte-identically, no reload required.
        np.testing.assert_array_equal(store.top_n(users), before_rows)
        assert store.revision == 1
        assert load_manifest(artifact_dir)["revision"] == 1  # swap never happened

        # Re-running the interrupted update converges: the crashed run's shard
        # bytes are already on disk, so everything is skipped and the manifest
        # swap completes.
        report = compile_artifact_update(
            refitted,
            artifact_dir,
            changed_users=ext.changed_users,
            state_changed=refit_report.state_changed,
        )
        assert report.shards_rewritten + report.shards_appended >= 0
        assert report.revision == 2

        store.reload()
        assert store.revision == 2
        scratch = Pipeline(_bare_spec("pop")).fit(ext.split)
        np.testing.assert_array_equal(store.top_n(users), scratch.recommend_all(N).items)

    def test_warm_reload_surfaces_the_new_revision(self, tmp_path, small_split):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)
        store = RecommendationStore(artifact_dir)
        assert store.revision == 1

        compile_artifact_update(pipeline_dir, artifact_dir)
        assert store.revision == 1  # not yet reloaded
        store.reload()
        assert store.revision == 2

    def test_revision_defaults_to_one_for_old_artifacts(self, tmp_path, small_split):
        artifact_dir = tmp_path / "artifact"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        manifest_path = artifact_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["revision"]
        manifest_path.write_text(json.dumps(manifest))
        store = RecommendationStore(artifact_dir)
        assert store.revision == 1


# --------------------------------------------------------------------------- #
# Concurrent compiles into one directory (tmp-name collision regression)
# --------------------------------------------------------------------------- #
class TestConcurrentCompile:
    def test_two_threads_compiling_one_directory(self, tmp_path, small_split):
        pipeline_a = Pipeline(_bare_spec("pop")).fit(small_split)
        pipeline_b = Pipeline(_bare_spec("pop")).fit(small_split)
        artifact_dir = tmp_path / "artifact"

        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def compile_one(pipeline):
            try:
                barrier.wait(timeout=30)
                compile_artifact(pipeline, artifact_dir, shard_size=4)
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=compile_one, args=(p,))
            for p in (pipeline_a, pipeline_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []

        # Both compiles produce identical bytes, so whichever manifest swap
        # landed last, the directory must be a fully consistent artifact.
        store = RecommendationStore(artifact_dir)
        np.testing.assert_array_equal(
            store.top_n(np.arange(store.coverage)), pipeline_a.recommend_all(N).items
        )
        leftovers = [p.name for p in (artifact_dir / "shards").iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []


# --------------------------------------------------------------------------- #
# covers() robustness (routing predicate must answer, not raise)
# --------------------------------------------------------------------------- #
class TestCoversRobustness:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory, small_split):
        artifact_dir = tmp_path_factory.mktemp("covers-artifact")
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        return RecommendationStore(artifact_dir)

    @pytest.mark.parametrize(
        "users",
        [
            float("nan"),
            np.asarray([float("nan")]),
            np.asarray([1.0, float("nan")]),
            np.asarray(["zero", "one"], dtype=object),
            np.asarray([None], dtype=object),
            10**30,
            np.asarray([10**30]),
        ],
        ids=["nan-scalar", "nan-array", "nan-mixed", "object-str", "object-none",
             "overflow-int", "overflow-array"],
    )
    def test_garbage_users_route_to_false(self, store, users):
        assert store.covers(users) is False
        assert store.covers(users, N) is False

    def test_valid_inputs_still_route_true(self, store):
        assert store.covers(0) is True
        assert store.covers(np.asarray([0, 1, 2])) is True
        assert store.covers(np.asarray([1.0, 2.0])) is True  # coercible floats


class TestBadUsersThroughBothTiers:
    def test_sync_tier_rejects_non_integer_user_with_400(
        self, tmp_path, small_split
    ):
        artifact_dir = tmp_path / "artifact"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        server = build_server(artifact_dir, port=0)
        start_in_thread(server)
        try:
            host, port = server.server_address[:2]
            for query in ("user=NaN", "user=abc", "user=1.5"):
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request("GET", f"/recommend?{query}")
                    assert conn.getresponse().status == 400
                finally:
                    conn.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_async_tier_rejects_non_integer_users_with_400(
        self, tmp_path, small_split
    ):
        artifact_dir = tmp_path / "artifact"
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        handle = start_async_in_thread(build_async_service(artifact_dir))
        try:
            host, port = handle.address
            bodies = [
                json.dumps({"users": [float("nan")]}),  # serialized as bare NaN
                json.dumps({"users": ["zero"]}),
                json.dumps({"users": [True]}),
            ]
            for body in bodies:
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "POST",
                        "/recommend/batch",
                        body=body.encode(),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    assert response.status == 400
                finally:
                    conn.close()
        finally:
            handle.stop()


# --------------------------------------------------------------------------- #
# load_manifest validation
# --------------------------------------------------------------------------- #
class TestManifestValidation:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory, small_split):
        artifact_dir = tmp_path_factory.mktemp("manifest-base")
        compile_artifact(
            Pipeline(_bare_spec("pop")).fit(small_split), artifact_dir, shard_size=16
        )
        return load_manifest(artifact_dir)

    def _write(self, tmp_path: Path, manifest: dict) -> Path:
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        return tmp_path

    @pytest.mark.parametrize("key", ["n", "n_items", "n_users", "shard_size", "shards"])
    def test_missing_top_level_key_names_file_and_key(self, tmp_path, manifest, key):
        broken = dict(manifest)
        del broken[key]
        with pytest.raises(DataFormatError, match=f"manifest.json is missing '{key}'"):
            load_manifest(self._write(tmp_path, broken))

    @pytest.mark.parametrize("key", ["items", "scores", "start", "stop"])
    def test_missing_shard_key_names_position_and_key(self, tmp_path, manifest, key):
        broken = dict(manifest)
        shards = [dict(entry) for entry in broken["shards"]]
        del shards[1][key]
        broken["shards"] = shards
        with pytest.raises(DataFormatError, match=f"shard 1 .* is missing '{key}'"):
            load_manifest(self._write(tmp_path, broken))

    def test_non_list_shards_rejected(self, tmp_path, manifest):
        broken = dict(manifest)
        broken["shards"] = {"0": broken["shards"][0]}
        with pytest.raises(DataFormatError, match="non-list 'shards'"):
            load_manifest(self._write(tmp_path, broken))

    def test_non_object_shard_entry_rejected(self, tmp_path, manifest):
        broken = dict(manifest)
        broken["shards"] = [broken["shards"][0], "items_00001.npy"]
        with pytest.raises(DataFormatError, match="shard 1 .* is not an object"):
            load_manifest(self._write(tmp_path, broken))


# --------------------------------------------------------------------------- #
# CLI end to end
# --------------------------------------------------------------------------- #
class TestCliUpdate:
    def test_compile_update_delta_round_trip(self, tmp_path, small_split, capsys):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        assert main(
            ["compile", "--pipeline", str(pipeline_dir),
             "--artifact", str(artifact_dir), "--shard-size", "16"]
        ) == 0

        train = small_split.train
        delta = tmp_path / "delta.csv"
        delta.write_text(
            "user,item,rating\n"
            f"{train.user_ids[0]},{train.item_ids[3]},1.0\n"
            f"{train.user_ids[1]},{train.item_ids[7]},1.0\n"
            "brand-new-user,brand-new-item,1.0\n"
        )
        assert main(
            [
                "compile", "--update", "--delta", str(delta),
                "--pipeline", str(pipeline_dir), "--artifact", str(artifact_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "revision 2" in out
        assert load_manifest(artifact_dir)["revision"] == 2

        # The pipeline directory was refitted and saved back in place: the
        # updated artifact equals a from-scratch compile of that pipeline.
        scratch_dir = tmp_path / "scratch"
        compile_artifact(pipeline_dir, scratch_dir, shard_size=16)
        _assert_same_artifact(artifact_dir, scratch_dir)

    def test_update_flag_combinations_rejected(self, tmp_path, small_split):
        pipeline_dir = tmp_path / "pipeline"
        artifact_dir = tmp_path / "artifact"
        Pipeline(_bare_spec("pop")).fit(small_split).save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=16)
        base = ["compile", "--pipeline", str(pipeline_dir), "--artifact", str(artifact_dir)]
        with pytest.raises(ConfigurationError, match="--delta requires --update"):
            main(base + ["--delta", "whatever.csv"])
        for flag, value in (("--n", "3"), ("--shard-size", "8"), ("--max-users", "10")):
            with pytest.raises(ConfigurationError, match="cannot be changed by --update"):
                main(base + ["--update", flag, value])
