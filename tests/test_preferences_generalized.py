"""Tests for the generalized (minimax) preference estimator θG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import TfidfPreference


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        GeneralizedPreference(regularization=0.0)
    with pytest.raises(ConfigurationError):
        GeneralizedPreference(max_iterations=0)
    with pytest.raises(ConfigurationError):
        GeneralizedPreference(tolerance=0.0)


def test_theta_g_lies_in_unit_interval(small_split):
    theta = GeneralizedPreference().estimate(small_split.train).theta
    assert theta.shape == (small_split.train.n_users,)
    assert theta.min() >= 0.0 and theta.max() <= 1.0


def test_single_iteration_equals_tfidf_when_weights_equal(tiny_dataset):
    """Eq. II.6 with equal item weights reduces to the TFIDF average θT.

    The estimator is initialized with θT (the equal-weight average); the claim
    of the paper — θG = θT when w_i is constant — is checked by construction
    on the first θ-step when all mediocrities are equal (uniform weights).
    """
    tfidf = TfidfPreference().estimate(tiny_dataset).theta
    generalized = GeneralizedPreference(max_iterations=50).estimate(tiny_dataset).theta
    # θG and θT must be strongly correlated (same ordering of users).
    order_t = np.argsort(tfidf)
    order_g = np.argsort(generalized)
    np.testing.assert_array_equal(order_t, order_g)


def test_optimization_converges(small_split):
    estimator = GeneralizedPreference(max_iterations=100, tolerance=1e-8)
    estimator.estimate(small_split.train)
    trace = estimator.trace_
    assert trace is not None
    assert trace.converged
    assert trace.iterations < 100
    # The θ updates shrink monotonically toward convergence at the end.
    assert trace.theta_delta[-1] <= trace.theta_delta[0]


def test_item_weights_downweight_mediocre_items(small_split):
    estimator = GeneralizedPreference()
    estimator.estimate(small_split.train)
    weights = estimator.trace_.item_weights
    popularity = small_split.train.item_popularity()
    rated = popularity > 0
    assert np.all(weights[rated] > 0)
    # Items nobody rated carry zero weight.
    assert np.all(weights[~rated] == 0)


def test_weights_inverse_of_mediocrity_scale():
    """An item rated by many users with similar θ_ui gets a smaller weight than
    an item whose raters disagree strongly with their general preference."""
    # Build a tiny dataset by hand: item 0 is 'mediocre' (all users rate it in
    # line with the rest of their history), item 1 is 'divisive'.
    triples = [
        (0, 0, 3.0), (0, 2, 3.0), (0, 3, 3.0),
        (1, 0, 3.0), (1, 2, 3.0), (1, 4, 3.0),
        (2, 0, 3.0), (2, 1, 5.0), (2, 5, 1.0),
        (3, 1, 5.0), (3, 4, 1.0), (3, 5, 5.0),
    ]
    data = RatingDataset.from_interactions(triples)
    estimator = GeneralizedPreference(max_iterations=30)
    estimator.estimate(data)
    weights = estimator.trace_.item_weights
    # Item 0 (consistent) has more raters agreeing -> higher mediocrity ->
    # lower weight than the divisive item 1.
    assert weights[0] < weights[1]


def test_theta_g_gives_higher_preference_to_longtail_raters(tiny_dataset):
    theta = GeneralizedPreference().estimate(tiny_dataset).theta
    # User 3 rated the two rarest items with high ratings.
    assert np.argmax(theta) == 3


def test_distribution_is_less_skewed_than_activity(small_split):
    """Figure 2's qualitative claim: θG is closer to normal than θA."""
    from repro.preferences.simple import ActivityPreference

    def skew(x: np.ndarray) -> float:
        std = x.std()
        return float(np.mean((x - x.mean()) ** 3) / std**3) if std > 0 else 0.0

    activity = ActivityPreference().estimate(small_split.train).theta
    generalized = GeneralizedPreference().estimate(small_split.train).theta
    assert abs(skew(generalized)) < abs(skew(activity))


def test_empty_train_set_is_rejected():
    from repro.exceptions import OptimizationError
    data = RatingDataset(
        np.array([], dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([], dtype=np.float64),
        n_users=3,
        n_items=3,
    )
    with pytest.raises(OptimizationError):
        GeneralizedPreference().estimate(data)


def test_estimate_is_deterministic(small_split):
    a = GeneralizedPreference().estimate(small_split.train).theta
    b = GeneralizedPreference().estimate(small_split.train).theta
    np.testing.assert_allclose(a, b)
