"""Tests for the Pipeline lifecycle and fitted-pipeline persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.evaluation.evaluator import Evaluator
from repro.exceptions import ConfigurationError, DataFormatError, NotFittedError
from repro.ganc.framework import GANC, GANCConfig
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
    ganc_spec,
)
from repro.preferences.generalized import GeneralizedPreference
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.registry import make_recommender


def _ganc_pipeline_spec(**overrides) -> PipelineSpec:
    base = dict(
        dataset="ml100k", arec="psvd10", theta="thetaG", coverage="dyn",
        n=5, sample_size=25, optimizer="oslg", scale=0.2, seed=0,
    )
    base.update(overrides)
    return ganc_spec(**base)


# --------------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------------- #
def test_pipeline_matches_hand_wired_ganc(small_split):
    spec = _ganc_pipeline_spec()
    pipeline = Pipeline(spec).fit(small_split)
    via_pipeline = pipeline.recommend_all()

    arec = make_recommender("psvd10", seed=0, scale_hint=0.2)
    model = GANC(
        arec,
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(
            sample_size=min(25, small_split.train.n_users), optimizer="oslg", seed=0
        ),
    )
    model.fit(small_split.train)
    assert np.array_equal(via_pipeline.items, model.recommend_all(5).items)
    assert pipeline.algorithm == model.template


def test_bare_recommender_pipeline(small_split):
    spec = PipelineSpec(
        recommender=ComponentSpec("pop"),
        dataset=DatasetSpec(key="ml100k", scale=0.2),
        evaluation=EvaluationSpec(n=4),
        seed=0,
    )
    pipeline = Pipeline(spec).fit(small_split)
    recs = pipeline.recommend_all()
    reference = make_recommender("pop").fit(small_split.train).recommend_all(4)
    assert np.array_equal(recs.items, reference.items)
    assert pipeline.algorithm == "MostPopular"
    assert pipeline.model is None


def test_fit_loads_spec_dataset_when_no_data_given():
    spec = PipelineSpec(
        recommender=ComponentSpec("pop"),
        dataset=DatasetSpec(key="ml100k", scale=0.15),
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    assert pipeline.split.train.n_users > 0


def test_fit_rejects_raw_datasets(small_dataset):
    pipeline = Pipeline(PipelineSpec(recommender=ComponentSpec("pop")))
    with pytest.raises(ConfigurationError, match="TrainTestSplit"):
        pipeline.fit(small_dataset)


def test_unfitted_pipeline_refuses_to_serve():
    pipeline = Pipeline(PipelineSpec(recommender=ComponentSpec("pop")))
    with pytest.raises(NotFittedError):
        pipeline.recommend_all()
    with pytest.raises(NotFittedError):
        _ = pipeline.algorithm


def test_recommend_single_and_block(small_split):
    spec = _ganc_pipeline_spec()
    pipeline = Pipeline(spec).fit(small_split)
    single = pipeline.recommend(0)
    assert single.ndim == 1 and single.size <= 5
    block = pipeline.recommend(np.array([0, 1, 2]))
    assert block.shape == (3, 5)

    bare = Pipeline(
        PipelineSpec(recommender=ComponentSpec("pop"), seed=0)
    ).fit(small_split)
    assert bare.recommend(np.array([0, 1])).shape == (2, 5)
    assert np.array_equal(bare.recommend(1), bare.recommend_all().items[1])


def test_evaluate_uses_spec_conditions(small_split):
    spec = _ganc_pipeline_spec()
    pipeline = Pipeline(spec).fit(small_split)
    run = pipeline.evaluate()
    assert run.algorithm == pipeline.algorithm
    reference = Evaluator(small_split, n=5).evaluate_recommendations(
        pipeline.recommend_all(), algorithm=pipeline.algorithm
    )
    assert run.report.as_dict() == reference.report.as_dict()


def test_injected_fitted_recommender_is_reused(small_split):
    arec = make_recommender("psvd10", seed=0, scale_hint=0.2).fit(small_split.train)
    factors_before = arec.user_factors_
    pipeline = Pipeline(_ganc_pipeline_spec(), recommender=arec).fit(small_split)
    assert pipeline.recommender is arec
    assert pipeline.recommender.user_factors_ is factors_before


def test_injected_preference_result_is_used(small_split):
    theta = GeneralizedPreference().estimate(small_split.train)
    pipeline = Pipeline(_ganc_pipeline_spec(), preference=theta).fit(small_split)
    assert np.array_equal(pipeline.model.theta, theta.theta)


# --------------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("arec", ["pop", "rand", "psvd10", "rsvd", "itemknn", "userknn"])
def test_save_load_reproduces_byte_identical_topn(tmp_path, small_split, arec):
    pipeline = Pipeline(_ganc_pipeline_spec(arec=arec)).fit(small_split)
    expected = pipeline.recommend_all()
    pipeline.save(tmp_path / "artifact")
    reloaded = Pipeline.load(tmp_path / "artifact")
    assert np.array_equal(reloaded.recommend_all().items, expected.items)


def test_load_does_not_refit_models(tmp_path, small_split, monkeypatch):
    pipeline = Pipeline(_ganc_pipeline_spec()).fit(small_split)
    expected = pipeline.recommend_all()
    pipeline.save(tmp_path / "artifact")

    def explode(self, *args, **kwargs):
        raise AssertionError("model was refitted on load")

    monkeypatch.setattr(PureSVD, "fit", explode)
    monkeypatch.setattr(GeneralizedPreference, "estimate", explode)
    reloaded = Pipeline.load(tmp_path / "artifact")
    assert np.array_equal(reloaded.recommend_all().items, expected.items)


def test_saved_artifact_evaluates_identically(tmp_path, small_split):
    pipeline = Pipeline(_ganc_pipeline_spec()).fit(small_split)
    original = pipeline.evaluate().report.as_dict()
    pipeline.save(tmp_path / "artifact")
    reloaded = Pipeline.load(tmp_path / "artifact")
    assert reloaded.evaluate().report.as_dict() == original
    assert reloaded.algorithm == pipeline.algorithm


def test_bare_pipeline_save_load(tmp_path, small_split):
    spec = PipelineSpec(recommender=ComponentSpec("rsvd"), seed=0)
    pipeline = Pipeline(spec).fit(small_split)
    expected = pipeline.recommend_all()
    pipeline.save(tmp_path / "bare")
    reloaded = Pipeline.load(tmp_path / "bare")
    assert np.array_equal(reloaded.recommend_all().items, expected.items)


def test_load_rejects_mismatched_recommender_class(tmp_path, small_split):
    pipeline = Pipeline(_ganc_pipeline_spec()).fit(small_split)
    pipeline.save(tmp_path / "artifact")
    spec_path = tmp_path / "artifact" / "spec.json"
    spec = PipelineSpec.from_json_file(spec_path)
    tampered = spec.to_config()
    tampered["recommender"] = {"name": "pop", "params": {}}
    PipelineSpec.from_config(tampered).to_json_file(spec_path)
    with pytest.raises(DataFormatError, match="fitted with"):
        Pipeline.load(tmp_path / "artifact")


def test_save_requires_fitted_pipeline(tmp_path):
    pipeline = Pipeline(PipelineSpec(recommender=ComponentSpec("pop")))
    with pytest.raises(NotFittedError):
        pipeline.save(tmp_path / "nope")


def test_ganc_spec_sample_size_is_clipped(small_split):
    spec = _ganc_pipeline_spec(sample_size=10_000, optimizer="auto")
    pipeline = Pipeline(spec).fit(small_split)
    assert pipeline.model.config.sample_size == small_split.train.n_users


def test_theta_spelling_in_spec_resolves(small_split):
    pipeline = Pipeline(_ganc_pipeline_spec(theta="θN")).fit(small_split)
    assert "long_tail_fraction" in pipeline.algorithm


def test_recommend_all_block_size_override_on_ganc(small_split):
    pipeline = Pipeline(_ganc_pipeline_spec(optimizer="locally_greedy")).fit(small_split)
    baseline = pipeline.recommend_all()
    overridden = pipeline.recommend_all(block_size=3)
    assert np.array_equal(baseline.items, overridden.items)
    # The override is per-call: the fitted config is restored afterwards.
    assert pipeline.model.config.block_size is None
