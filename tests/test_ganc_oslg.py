"""Tests for the OSLG optimizer (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.static import StaticCoverage
from repro.exceptions import ConfigurationError
from repro.ganc.oslg import OSLGOptimizer
from repro.preferences.generalized import GeneralizedPreference


def _providers(train, seed: int = 0):
    def accuracy(user: int) -> np.ndarray:
        rng = np.random.default_rng(seed + user)
        return rng.random(train.n_items)

    def exclusions(user: int) -> np.ndarray:
        return train.user_items(user)

    return accuracy, exclusions


def test_oslg_requires_dynamic_coverage(tiny_dataset):
    with pytest.raises(ConfigurationError):
        OSLGOptimizer(StaticCoverage().fit(tiny_dataset), 5)  # type: ignore[arg-type]


def test_oslg_constructor_validation(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    with pytest.raises(ConfigurationError):
        OSLGOptimizer(coverage, 0)
    with pytest.raises(ConfigurationError):
        OSLGOptimizer(coverage, 5, sample_size=0)


def test_oslg_assigns_every_user(medium_split):
    train = medium_split.train
    coverage = DynamicCoverage().fit(train)
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    result = OSLGOptimizer(coverage, 5, sample_size=40, seed=0).run(theta, accuracy, exclusions)
    assert result.top_n.items.shape == (train.n_users, 5)
    for user in range(train.n_users):
        row = result.top_n.for_user(user)
        assert row.size == 5
        assert len(set(row.tolist())) == 5
        seen = set(train.user_items(user).tolist())
        assert seen.isdisjoint(set(row.tolist()))


def test_oslg_sample_is_sorted_by_increasing_theta(medium_split):
    train = medium_split.train
    coverage = DynamicCoverage().fit(train)
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    result = OSLGOptimizer(coverage, 5, sample_size=30, seed=1).run(theta, accuracy, exclusions)
    sampled_theta = theta[result.sampled_users]
    assert np.all(np.diff(sampled_theta) >= -1e-12)
    assert result.sampled_users.size == 30
    assert len(set(result.sampled_users.tolist())) == 30


def test_oslg_snapshots_are_monotone_increasing(medium_split):
    """Each sequential user adds N assignments to the coverage snapshot."""
    train = medium_split.train
    coverage = DynamicCoverage().fit(train)
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    n = 4
    result = OSLGOptimizer(coverage, n, sample_size=20, seed=2).run(theta, accuracy, exclusions)
    totals = result.snapshots.sum(axis=1)
    np.testing.assert_allclose(totals, n * np.arange(1, 21))


def test_oslg_sample_size_larger_than_population_is_full_pass(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    theta = np.array([0.1, 0.4, 0.6, 0.9])
    accuracy, exclusions = _providers(tiny_dataset)
    result = OSLGOptimizer(coverage, 2, sample_size=100, seed=0).run(theta, accuracy, exclusions)
    assert result.sampled_users.size == tiny_dataset.n_users


def test_oslg_is_deterministic_per_seed(medium_split):
    train = medium_split.train
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    a = OSLGOptimizer(DynamicCoverage().fit(train), 5, sample_size=25, seed=7).run(
        theta, accuracy, exclusions
    )
    b = OSLGOptimizer(DynamicCoverage().fit(train), 5, sample_size=25, seed=7).run(
        theta, accuracy, exclusions
    )
    np.testing.assert_array_equal(a.top_n.items, b.top_n.items)
    np.testing.assert_array_equal(a.sampled_users, b.sampled_users)


def test_oslg_empty_theta_is_rejected(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    accuracy, exclusions = _providers(tiny_dataset)
    with pytest.raises(ConfigurationError):
        OSLGOptimizer(coverage, 2, sample_size=2).run(np.array([]), accuracy, exclusions)


def test_larger_sample_size_increases_coverage(medium_split):
    """The Figure 3 trend: more sequential users -> better item-space coverage."""
    train = medium_split.train
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)

    def distinct_items(sample_size: int) -> int:
        coverage = DynamicCoverage().fit(train)
        result = OSLGOptimizer(coverage, 5, sample_size=sample_size, seed=0).run(
            theta, accuracy, exclusions
        )
        return len(
            {int(i) for u in range(train.n_users) for i in result.top_n.for_user(u)}
        )

    assert distinct_items(train.n_users) >= distinct_items(5)


@pytest.mark.parametrize("bad", ["silvermann", "", -0.5, 0, float("nan")])
def test_oslg_rejects_bad_bandwidth_at_construction(tiny_dataset, bad):
    coverage = DynamicCoverage().fit(tiny_dataset)
    with pytest.raises(ConfigurationError, match="bandwidth"):
        OSLGOptimizer(coverage, 2, bandwidth=bad)


def test_oslg_snapshot_log_is_compact_and_reconstructs(medium_split):
    """snapshots is a lazily densified view over O(S*N) recorded deltas."""
    train = medium_split.train
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    result = OSLGOptimizer(
        DynamicCoverage().fit(train), 4, sample_size=15, seed=5
    ).run(theta, accuracy, exclusions)
    log = result.snapshot_log
    assert log.n_steps == 15
    assert sum(d.size for d in log._deltas) <= 15 * 4
    dense = result.snapshots
    assert dense.shape == (15, train.n_items)
    assert np.array_equal(log.dense(), dense)
    np.testing.assert_array_equal(
        log.counts_at(log.n_steps - 1), dense[-1]
    )


def test_oslg_fallback_snapshots_track_subclass_counting(medium_split):
    """A DynamicCoverage subclass with custom counting must get snapshots of
    its *actual* frequencies (dense capture), not a +1-per-item delta replay."""

    class DoubleCountCoverage(DynamicCoverage):
        def update(self, items):
            super().update(items)
            super().update(items)  # counts every assignment twice

    train = medium_split.train
    theta = GeneralizedPreference().estimate(train).theta
    accuracy, exclusions = _providers(train)
    coverage = DoubleCountCoverage().fit(train)
    result = OSLGOptimizer(coverage, 3, sample_size=10, seed=2).run(
        theta, accuracy, exclusions
    )
    assert result.snapshot_log is None
    # Every sampled user assigned 3 items, each counted twice.
    np.testing.assert_allclose(
        result.snapshots.sum(axis=1), 6 * np.arange(1, 11)
    )
    np.testing.assert_array_equal(result.snapshots[-1], coverage.frequencies)
