"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.plotting import Series, ascii_bars, ascii_histogram, ascii_plot


def test_series_validates_lengths():
    with pytest.raises(ConfigurationError):
        Series(label="s", x=[1, 2], y=[1])


def test_ascii_plot_contains_title_axes_and_legend():
    series = Series(label="accuracy", x=[0, 1, 2, 3], y=[0.1, 0.2, 0.3, 0.4])
    text = ascii_plot([series], title="My plot", x_label="N", y_label="F")
    assert "My plot" in text
    assert "legend: o=accuracy" in text
    assert "N: 0 .. 3" in text
    assert "F (top=" in text


def test_ascii_plot_uses_distinct_markers_per_series():
    a = Series(label="a", x=[0, 1], y=[0, 1])
    b = Series(label="b", x=[0, 1], y=[1, 0])
    text = ascii_plot([a, b])
    assert "o=a" in text and "x=b" in text
    assert "o" in text and "x" in text


def test_ascii_plot_dimensions():
    series = Series(label="s", x=list(range(10)), y=list(range(10)))
    text = ascii_plot([series], width=30, height=8)
    body_lines = [line for line in text.splitlines() if line.startswith("|")]
    assert len(body_lines) == 8
    assert all(len(line) == 31 for line in body_lines)


def test_ascii_plot_validation():
    with pytest.raises(ConfigurationError):
        ascii_plot([])
    with pytest.raises(ConfigurationError):
        ascii_plot([Series("s", [1], [1])], width=3, height=3)


def test_ascii_plot_constant_series_does_not_crash():
    text = ascii_plot([Series("flat", [0, 1, 2], [0.5, 0.5, 0.5])])
    assert "flat" in text


def test_ascii_histogram_counts_values():
    values = [0.1] * 5 + [0.9] * 2
    text = ascii_histogram(values, bins=2, width=10)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].endswith("5")
    assert lines[1].endswith("2")
    # The fuller bin gets the longer bar.
    assert lines[0].count("#") > lines[1].count("#")


def test_ascii_histogram_title_and_range():
    text = ascii_histogram([0.5], bins=4, title="theta", value_range=(0.0, 1.0))
    assert text.splitlines()[0] == "theta"
    assert len(text.splitlines()) == 5


def test_ascii_histogram_validation():
    with pytest.raises(ConfigurationError):
        ascii_histogram([])
    with pytest.raises(ConfigurationError):
        ascii_histogram([1.0], bins=0)


def test_ascii_bars_scales_to_largest_value():
    text = ascii_bars(["pop", "rand"], [0.8, 0.2], width=20)
    lines = text.splitlines()
    assert lines[0].count("#") == 20
    assert lines[1].count("#") == 5
    assert "0.8000" in lines[0]


def test_ascii_bars_validation():
    with pytest.raises(ConfigurationError):
        ascii_bars(["a"], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        ascii_bars([], [])
