"""Tests for the RSVD (SGD matrix factorization) recommender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.recommenders.rsvd import RSVD


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        RSVD(n_factors=0)
    with pytest.raises(ConfigurationError):
        RSVD(n_epochs=0)
    with pytest.raises(ConfigurationError):
        RSVD(learning_rate=0.0)
    with pytest.raises(ConfigurationError):
        RSVD(reg=-0.1)
    with pytest.raises(ConfigurationError):
        RSVD(batch_size=0)


def test_training_reduces_rmse(small_split):
    model = RSVD(n_factors=8, n_epochs=15, learning_rate=0.02, reg=0.02, seed=0)
    model.fit(small_split.train)
    history = model.history_.epoch_rmse
    assert len(history) == 15
    assert history[-1] < history[0]
    assert history[-1] < 1.5


def test_predictions_are_finite_and_reasonable(small_split):
    model = RSVD(n_factors=8, n_epochs=20, learning_rate=0.02, reg=0.02, seed=0)
    model.fit(small_split.train)
    preds = model.score_all_items(0)
    assert np.all(np.isfinite(preds))
    assert preds.max() < 10.0 and preds.min() > -5.0


def test_fit_is_deterministic_per_seed(small_split):
    a = RSVD(n_factors=6, n_epochs=5, seed=4).fit(small_split.train)
    b = RSVD(n_factors=6, n_epochs=5, seed=4).fit(small_split.train)
    np.testing.assert_allclose(a.user_factors_, b.user_factors_)
    c = RSVD(n_factors=6, n_epochs=5, seed=5).fit(small_split.train)
    assert not np.allclose(a.user_factors_, c.user_factors_)


def test_biased_variant_uses_global_mean(small_split):
    plain = RSVD(n_factors=4, n_epochs=3, seed=0).fit(small_split.train)
    biased = RSVD(n_factors=4, n_epochs=3, use_biases=True, seed=0).fit(small_split.train)
    assert plain.global_mean_ == 0.0
    assert biased.global_mean_ == pytest.approx(small_split.train.mean_rating())
    assert np.any(biased.user_bias_ != 0.0)
    assert np.all(plain.user_bias_ == 0.0)


def test_non_negative_projection(small_split):
    model = RSVD(n_factors=6, n_epochs=8, non_negative=True, seed=0).fit(small_split.train)
    assert model.user_factors_.min() >= 0.0
    assert model.item_factors_.min() >= 0.0


def test_predict_matrix_matches_pointwise(small_split):
    model = RSVD(n_factors=5, n_epochs=5, seed=0).fit(small_split.train)
    matrix = model.predict_matrix()
    items = np.arange(small_split.train.n_items)
    np.testing.assert_allclose(matrix[3], model.predict_scores(3, items))


def test_rmse_on_test_split(small_split):
    model = RSVD(n_factors=8, n_epochs=20, learning_rate=0.02, seed=0).fit(small_split.train)
    value = model.rmse(small_split.test)
    assert np.isfinite(value)
    assert 0.3 < value < 3.0


def test_better_fit_with_more_epochs(small_split):
    short = RSVD(n_factors=8, n_epochs=2, learning_rate=0.02, seed=0).fit(small_split.train)
    long = RSVD(n_factors=8, n_epochs=25, learning_rate=0.02, seed=0).fit(small_split.train)
    assert long.history_.final_rmse < short.history_.final_rmse


def test_recommendations_exclude_train_items(small_split):
    model = RSVD(n_factors=8, n_epochs=5, seed=0).fit(small_split.train)
    for user in (0, 5, 17):
        recs = model.recommend(user, 10)
        seen = set(small_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(recs.tolist()))


def test_batch_size_one_equals_classic_sgd_path(tiny_dataset):
    """Per-sample SGD (batch_size=1) still trains and improves."""
    model = RSVD(n_factors=3, n_epochs=10, batch_size=1, learning_rate=0.05, seed=0)
    model.fit(tiny_dataset)
    assert model.history_.epoch_rmse[-1] < model.history_.epoch_rmse[0]
