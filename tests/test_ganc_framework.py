"""Tests for the GANC facade (fit / recommend_all / template)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.random import RandomCoverage
from repro.coverage.static import StaticCoverage
from repro.exceptions import ConfigurationError, NotFittedError
from repro.ganc.framework import GANC, GANCConfig
from repro.metrics.coverage import coverage_at_n
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import ConstantPreference, TfidfPreference
from repro.recommenders.popularity import MostPopular
from repro.recommenders.puresvd import PureSVD


def test_config_validation():
    with pytest.raises(ConfigurationError):
        GANCConfig(sample_size=0)
    with pytest.raises(ConfigurationError):
        GANCConfig(optimizer="bogus")  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        GANCConfig(theta_order="sideways")  # type: ignore[arg-type]


def test_unfitted_ganc_raises(small_split):
    model = GANC(MostPopular(), ConstantPreference(0.5), StaticCoverage())
    with pytest.raises(NotFittedError):
        model.recommend_all(5)
    with pytest.raises(NotFittedError):
        _ = model.theta


def test_template_string(small_split):
    model = GANC(MostPopular(), GeneralizedPreference(), DynamicCoverage())
    assert model.template == "GANC(MostPopular, generalized, Dyn)"


def test_fit_estimates_theta_from_model(small_split):
    model = GANC(MostPopular(), TfidfPreference(), StaticCoverage())
    model.fit(small_split.train)
    assert model.is_fitted
    assert model.theta.shape == (small_split.train.n_users,)
    assert model.theta.min() >= 0.0 and model.theta.max() <= 1.0


def test_fit_accepts_precomputed_theta(small_split):
    theta = np.full(small_split.train.n_users, 0.3)
    model = GANC(MostPopular(), theta, StaticCoverage())
    model.fit(small_split.train)
    np.testing.assert_allclose(model.theta, 0.3)


def test_fit_rejects_wrong_length_theta(small_split):
    model = GANC(MostPopular(), np.array([0.5, 0.5]), StaticCoverage())
    with pytest.raises(ConfigurationError):
        model.fit(small_split.train)


def test_fit_rejects_out_of_range_theta(small_split):
    theta = np.full(small_split.train.n_users, 1.5)
    model = GANC(MostPopular(), theta, StaticCoverage())
    with pytest.raises(ConfigurationError):
        model.fit(small_split.train)


def test_recommend_all_shapes_and_exclusions(small_split):
    model = GANC(
        MostPopular(),
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=20, seed=0),
    )
    model.fit(small_split.train)
    top = model.recommend_all(5)
    assert top.items.shape == (small_split.train.n_users, 5)
    for user in range(top.n_users):
        row = top.for_user(user)
        assert len(set(row.tolist())) == row.size == 5
        seen = set(small_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(row.tolist()))


def test_theta_zero_reduces_to_accuracy_recommender(small_split):
    arec = PureSVD(n_factors=8)
    theta = np.zeros(small_split.train.n_users)
    model = GANC(arec, theta, DynamicCoverage(), config=GANCConfig(optimizer="locally_greedy"))
    model.fit(small_split.train)
    ganc_top = model.recommend_all(5)
    base_top = arec.recommend_all(5)
    agreements = sum(
        set(ganc_top.for_user(u).tolist()) == set(base_top.for_user(u).tolist())
        for u in range(base_top.n_users)
    )
    # θ = 0 zeroes the coverage term, so the sets must coincide for everyone.
    assert agreements == base_top.n_users


def test_theta_one_maximizes_coverage(small_split):
    arec = MostPopular()
    n_users = small_split.train.n_users
    pure_coverage = GANC(
        arec,
        np.ones(n_users),
        DynamicCoverage(),
        config=GANCConfig(optimizer="locally_greedy"),
    )
    pure_accuracy = GANC(
        arec,
        np.zeros(n_users),
        DynamicCoverage(),
        config=GANCConfig(optimizer="locally_greedy"),
    )
    pure_coverage.fit(small_split.train)
    pure_accuracy.fit(small_split.train)
    cov_high = coverage_at_n(pure_coverage.recommend_all(5).as_dict(), small_split.train.n_items)
    cov_low = coverage_at_n(pure_accuracy.recommend_all(5).as_dict(), small_split.train.n_items)
    assert cov_high > cov_low


def test_increasing_theta_increases_coverage_monotonically(small_split):
    coverages = []
    for constant in (0.0, 0.5, 1.0):
        model = GANC(
            MostPopular(),
            np.full(small_split.train.n_users, constant),
            DynamicCoverage(),
            config=GANCConfig(optimizer="locally_greedy"),
        )
        model.fit(small_split.train)
        coverages.append(
            coverage_at_n(model.recommend_all(5).as_dict(), small_split.train.n_items)
        )
    assert coverages[0] <= coverages[1] <= coverages[2]


def test_auto_optimizer_selects_oslg_for_large_user_counts(medium_split):
    model = GANC(
        MostPopular(),
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=30, optimizer="auto", seed=0),
    )
    model.fit(medium_split.train)
    model.recommend_all(5)
    assert model.last_oslg_result_ is not None
    assert model.last_oslg_result_.sampled_users.size == 30


def test_auto_optimizer_uses_exact_pass_for_small_user_counts(tiny_dataset):
    model = GANC(
        MostPopular(),
        np.array([0.2, 0.4, 0.6, 0.8]),
        DynamicCoverage(),
        config=GANCConfig(sample_size=500, optimizer="auto"),
    )
    model.fit(tiny_dataset)
    model.recommend_all(2)
    assert model.last_oslg_result_ is None


def test_static_and_random_coverage_paths(small_split):
    for coverage in (StaticCoverage(), RandomCoverage(seed=0)):
        model = GANC(MostPopular(), ConstantPreference(0.5), coverage)
        model.fit(small_split.train)
        top = model.recommend_all(5)
        assert top.items.shape == (small_split.train.n_users, 5)


def test_recommend_single_user(small_split):
    model = GANC(MostPopular(), ConstantPreference(0.3), StaticCoverage())
    model.fit(small_split.train)
    recs = model.recommend(0, 5)
    assert recs.size == 5
    seen = set(small_split.train.user_items(0).tolist())
    assert seen.isdisjoint(set(recs.tolist()))


def test_value_function_inspection(small_split):
    model = GANC(MostPopular(), ConstantPreference(0.4), StaticCoverage())
    model.fit(small_split.train)
    vf = model.value_function(0, 5)
    assert vf.theta == pytest.approx(0.4)
    assert vf.accuracy_scores.shape == (small_split.train.n_items,)


def test_recommend_all_rejects_bad_n(small_split):
    model = GANC(MostPopular(), ConstantPreference(0.4), StaticCoverage())
    model.fit(small_split.train)
    with pytest.raises(ConfigurationError):
        model.recommend_all(0)


def test_recommend_all_is_deterministic(medium_split):
    def build():
        model = GANC(
            MostPopular(),
            GeneralizedPreference(),
            DynamicCoverage(),
            config=GANCConfig(sample_size=25, seed=11),
        )
        model.fit(medium_split.train)
        return model.recommend_all(5)

    np.testing.assert_array_equal(build().items, build().items)


# --------------------------------------------------------------------------- #
# Construction-time bandwidth validation (historically failed deep in KDE fit)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("bad", ["silvermann", "", "gauss", 0.0, -1.0, float("inf"), float("nan")])
def test_ganc_config_rejects_bad_bandwidth_at_construction(bad):
    with pytest.raises(ConfigurationError, match="bandwidth"):
        GANCConfig(bandwidth=bad)


@pytest.mark.parametrize("good", ["scott", "silverman", " Silverman ", 0.05, 2])
def test_ganc_config_accepts_valid_bandwidths(good):
    assert GANCConfig(bandwidth=good).bandwidth == good


def test_ganc_threads_bandwidth_into_oslg(medium_split):
    model = GANC(
        MostPopular(),
        np.linspace(0.0, 1.0, medium_split.train.n_users),
        DynamicCoverage(),
        config=GANCConfig(sample_size=20, seed=0, bandwidth=0.4),
    )
    model.fit(medium_split.train)
    model.recommend_all(5)
    result = model.last_oslg_result_
    assert result is not None
    # A sanity anchor: the run used the explicit bandwidth without error and
    # produced a full sequential sample.
    assert result.sampled_users.size == 20
