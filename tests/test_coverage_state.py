"""Tests for the incremental coverage state and delta snapshots.

The incremental GANC core rests on two equivalences, both checked here with
exact (bitwise) equality — the golden masters depend on them:

* a delta-updated :class:`CoverageState` equals a from-scratch
  ``1 / sqrt(f + 1)`` recompute after *any* assignment sequence;
* a :class:`DeltaSnapshots` log reconstructs the historical dense snapshot
  matrix and its score rows exactly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.state import CoverageState, DeltaSnapshots
from repro.exceptions import ConfigurationError

FAST = settings(max_examples=50, deadline=None)

#: Arbitrary assignment sequences over a small item universe: each step
#: assigns up to 6 items, duplicates allowed (np.add.at semantics).
ASSIGNMENTS = st.lists(
    st.lists(st.integers(0, 19), min_size=0, max_size=6),
    min_size=0,
    max_size=25,
)

N_ITEMS = 20


def recompute_scores(counts: np.ndarray) -> np.ndarray:
    """The historical full recompute the incremental state replaces."""
    return 1.0 / np.sqrt(counts + 1.0)


# --------------------------------------------------------------------------- #
# CoverageState
# --------------------------------------------------------------------------- #
class TestCoverageState:
    def test_zeros_scores_are_all_one(self):
        state = CoverageState.zeros(5)
        np.testing.assert_array_equal(state.counts, np.zeros(5))
        np.testing.assert_array_equal(state.scores, np.ones(5))

    def test_constructor_copies_and_derives(self):
        counts = np.array([0.0, 3.0, 8.0])
        state = CoverageState(counts)
        counts[0] = 99.0  # the state must not alias caller memory
        np.testing.assert_array_equal(state.counts, [0.0, 3.0, 8.0])
        np.testing.assert_array_equal(state.scores, recompute_scores(state.counts))

    def test_views_are_read_only(self):
        state = CoverageState.zeros(4)
        with pytest.raises(ValueError):
            state.counts[0] = 1.0
        with pytest.raises(ValueError):
            state.scores[0] = 0.5

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageState(np.array([1.0, -1.0]))
        with pytest.raises(ConfigurationError):
            CoverageState(np.ones((2, 2)))

    def test_apply_duplicates_count_per_occurrence(self):
        state = CoverageState.zeros(4)
        state.apply(np.array([2, 2, 0]))
        np.testing.assert_array_equal(state.counts, [1.0, 0.0, 2.0, 0.0])
        np.testing.assert_array_equal(state.scores, recompute_scores(state.counts))

    def test_apply_empty_is_a_no_op(self):
        state = CoverageState.zeros(3)
        state.apply(np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(state.counts, np.zeros(3))

    def test_reset_restores_fresh_state(self):
        state = CoverageState.zeros(4)
        state.apply(np.array([0, 1, 1]))
        state.reset()
        np.testing.assert_array_equal(state.counts, np.zeros(4))
        np.testing.assert_array_equal(state.scores, np.ones(4))

    def test_scores_view_is_live(self):
        state = CoverageState.zeros(3)
        view = state.scores
        state.apply(np.array([1]))
        assert view[1] == recompute_scores(np.array([1.0]))[0]

    @FAST
    @given(steps=ASSIGNMENTS)
    def test_incremental_equals_recompute_after_any_sequence(self, steps):
        state = CoverageState.zeros(N_ITEMS)
        counts = np.zeros(N_ITEMS)
        for items in steps:
            items = np.asarray(items, dtype=np.int64)
            state.apply(items)
            if items.size:
                np.add.at(counts, items, 1.0)
        np.testing.assert_array_equal(state.counts, counts)
        # Bitwise equality: the incremental scores must be indistinguishable
        # from the historical full recompute.
        assert np.array_equal(state.scores, recompute_scores(counts))

    def test_apply_batch_empty_and_all_empty_are_no_ops(self):
        state = CoverageState.zeros(3)
        state.apply_batch([])
        state.apply_batch([np.empty(0, dtype=np.int64), []])
        np.testing.assert_array_equal(state.counts, np.zeros(3))
        np.testing.assert_array_equal(state.scores, np.ones(3))

    @FAST
    @given(steps=ASSIGNMENTS)
    def test_apply_batch_bit_identical_to_looped_apply(self, steps):
        looped = CoverageState.zeros(N_ITEMS)
        for items in steps:
            looped.apply(np.asarray(items, dtype=np.int64))
        batched = CoverageState.zeros(N_ITEMS)
        batched.apply_batch([np.asarray(items, dtype=np.int64) for items in steps])
        assert np.array_equal(batched.counts, looped.counts)
        assert np.array_equal(batched.scores, looped.scores)

    @FAST
    @given(
        base=st.lists(st.integers(0, 5), min_size=N_ITEMS, max_size=N_ITEMS),
        items=st.lists(st.integers(0, N_ITEMS - 1), min_size=0, max_size=12),
    )
    def test_apply_then_revert_round_trips_bitwise(self, base, items):
        state = CoverageState(np.asarray(base, dtype=np.float64))
        counts_before = state.counts.copy()
        scores_before = state.scores.copy()
        items = np.asarray(items, dtype=np.int64)
        state.apply(items)
        state.revert(items)
        assert np.array_equal(state.counts, counts_before)
        assert np.array_equal(state.scores, scores_before)

    def test_revert_rejects_unapplied_items_and_leaves_state_unchanged(self):
        state = CoverageState.zeros(4)
        state.apply(np.array([1, 1, 2]))
        counts_before = state.counts.copy()
        scores_before = state.scores.copy()
        with pytest.raises(ConfigurationError):
            state.revert(np.array([1, 3]))  # item 3 was never assigned
        np.testing.assert_array_equal(state.counts, counts_before)
        np.testing.assert_array_equal(state.scores, scores_before)

    def test_revert_empty_is_a_no_op(self):
        state = CoverageState.zeros(3)
        state.revert(np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(state.counts, np.zeros(3))


# --------------------------------------------------------------------------- #
# DeltaSnapshots
# --------------------------------------------------------------------------- #
class TestDeltaSnapshots:
    def _dense_reference(self, base, steps):
        counts = np.asarray(base, dtype=np.float64).copy()
        rows = []
        for items in steps:
            items = np.asarray(items, dtype=np.int64)
            if items.size:
                np.add.at(counts, items, 1.0)
            rows.append(counts.copy())
        return np.asarray(rows).reshape(len(steps), counts.size)

    def test_record_validates_item_range(self):
        log = DeltaSnapshots(np.zeros(4))
        with pytest.raises(ConfigurationError):
            log.record(np.array([4]))
        with pytest.raises(ConfigurationError):
            log.record(np.array([-1]))

    def test_positions_validated(self):
        log = DeltaSnapshots(np.zeros(4))
        log.record(np.array([0]))
        with pytest.raises(ConfigurationError):
            log.counts_at(1)
        with pytest.raises(ConfigurationError):
            log.scores_at(np.array([-1]))

    def test_scores_at_empty_positions(self):
        log = DeltaSnapshots(np.zeros(4))
        assert log.scores_at(np.empty(0, dtype=np.int64)).shape == (0, 4)

    @FAST
    @given(
        steps=st.lists(
            st.lists(st.integers(0, N_ITEMS - 1), min_size=0, max_size=6),
            min_size=1,
            max_size=20,
        ),
        base=st.lists(st.integers(0, 5), min_size=N_ITEMS, max_size=N_ITEMS),
        data=st.data(),
    )
    def test_reconstruction_equals_dense_snapshots(self, steps, base, data):
        base = np.asarray(base, dtype=np.float64)
        log = DeltaSnapshots(base)
        for items in steps:
            log.record(np.asarray(items, dtype=np.int64))
        dense = self._dense_reference(base, steps)

        assert np.array_equal(log.dense(), dense)
        position = data.draw(st.integers(0, len(steps) - 1))
        assert np.array_equal(log.counts_at(position), dense[position])

        positions = np.asarray(
            data.draw(
                st.lists(st.integers(0, len(steps) - 1), min_size=1, max_size=10)
            ),
            dtype=np.int64,
        )
        # Bitwise: delta-reconstructed score rows == dense-derived rows.
        assert np.array_equal(
            log.scores_at(positions),
            DynamicCoverage.snapshot_scores(dense[positions]),
        )

    def test_pickle_round_trip(self):
        log = DeltaSnapshots(np.arange(4, dtype=np.float64))
        log.record(np.array([0, 3]))
        log.record(np.array([3]))
        clone = pickle.loads(pickle.dumps(log))
        assert np.array_equal(clone.dense(), log.dense())
        assert np.array_equal(clone.base_counts, log.base_counts)

    def test_compact_memory_vs_dense(self):
        """The log stores O(|I| + S*N) numbers, not O(S*|I|)."""
        n_items, steps, n = 1000, 50, 5
        log = DeltaSnapshots(np.zeros(n_items))
        rng = np.random.default_rng(0)
        for _ in range(steps):
            log.record(rng.choice(n_items, size=n, replace=False))
        stored = log.base_counts.size + sum(d.size for d in log._deltas)
        assert stored == n_items + steps * n
        assert stored < steps * n_items / 10  # an order denser than dense


# --------------------------------------------------------------------------- #
# DynamicCoverage over the state
# --------------------------------------------------------------------------- #
class TestDynamicCoverageState:
    def test_set_frequencies_rebuilds_scores(self, tiny_dataset):
        coverage = DynamicCoverage().fit(tiny_dataset)
        counts = np.arange(tiny_dataset.n_items, dtype=np.float64)
        coverage.set_frequencies(counts)
        assert np.array_equal(coverage.scores(0), recompute_scores(counts))

    def test_scores_returns_fresh_writable_copy(self, tiny_dataset):
        coverage = DynamicCoverage().fit(tiny_dataset)
        scores = coverage.scores(0)
        scores[0] = -1.0  # mutating the copy must not corrupt the state
        assert coverage.scores(0)[0] == 1.0

    def test_scores_matrix_broadcasts_current_state(self, tiny_dataset):
        coverage = DynamicCoverage().fit(tiny_dataset)
        coverage.update(np.array([0, 1]))
        block = coverage.scores_matrix(np.array([0, 1, 2]))
        assert block.shape == (3, tiny_dataset.n_items)
        np.testing.assert_array_equal(block[0], coverage.scores(0))
        np.testing.assert_array_equal(block[1], block[0])

    def test_user_independent_flags(self, tiny_dataset):
        from repro.coverage.random import RandomCoverage
        from repro.coverage.static import StaticCoverage

        assert DynamicCoverage().user_independent
        assert StaticCoverage().user_independent
        assert not RandomCoverage().user_independent
