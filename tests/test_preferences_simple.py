"""Tests for the simple long-tail preference models (θA, θN, θT, θR, θC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError
from repro.preferences.base import PreferenceResult
from repro.preferences.simple import (
    ActivityPreference,
    ConstantPreference,
    NormalizedLongTailPreference,
    RandomPreference,
    TfidfPreference,
    per_user_item_preference,
)


def test_preference_result_validates_range():
    with pytest.raises(ConfigurationError):
        PreferenceResult(theta=np.array([0.2, 1.4]), model_name="bad")
    with pytest.raises(ConfigurationError):
        PreferenceResult(theta=np.array([[0.2]]), model_name="bad-shape")


def test_preference_result_accessors():
    result = PreferenceResult(theta=np.array([0.1, 0.9]), model_name="m")
    assert result.n_users == 2
    assert result.for_user(1) == pytest.approx(0.9)


def test_activity_preference_is_minmax_of_counts(tiny_dataset):
    theta = ActivityPreference().estimate(tiny_dataset).theta
    # Every user rated exactly 3 items, so normalized activity is constant 0.
    np.testing.assert_allclose(theta, 0.0)


def test_activity_preference_orders_users_by_activity(small_split):
    theta = ActivityPreference().estimate(small_split.train).theta
    activity = small_split.train.user_activity()
    assert theta[np.argmax(activity)] == pytest.approx(1.0)
    assert theta[np.argmin(activity)] == pytest.approx(0.0)


def test_normalized_longtail_fraction(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    theta = NormalizedLongTailPreference().estimate(tiny_dataset, popularity=stats).theta
    # User 3 rated both single-rating items (4, 5): their fraction must be the
    # largest in the population.
    assert np.argmax(theta) == 3
    assert np.all((theta >= 0) & (theta <= 1))


def test_normalized_longtail_zero_for_head_only_users(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    theta = NormalizedLongTailPreference().estimate(tiny_dataset, popularity=stats).theta
    head_mask = ~stats.long_tail_mask
    # User 0 rated items 0, 1, 2; if all of those are head items, theta is 0.
    if head_mask[[0, 1, 2]].all():
        assert theta[0] == pytest.approx(0.0)


def test_per_user_item_preference_alignment(tiny_dataset):
    values = per_user_item_preference(tiny_dataset)
    assert values.shape == (tiny_dataset.n_ratings,)
    assert values.min() >= 0.0 and values.max() <= 1.0


def test_per_user_item_preference_unnormalized_monotone_in_rarity(tiny_dataset):
    values = per_user_item_preference(tiny_dataset, normalize=False)
    # A 5-star rating on a rare item is worth more than a 5-star rating on the
    # blockbuster item 0.
    users = tiny_dataset.user_indices
    items = tiny_dataset.item_indices
    rare_idx = int(np.flatnonzero((users == 3) & (items == 4))[0])
    popular_idx = int(np.flatnonzero((users == 0) & (items == 0))[0])
    assert values[rare_idx] > values[popular_idx]


def test_tfidf_preference_prefers_longtail_raters(tiny_dataset):
    theta = TfidfPreference().estimate(tiny_dataset).theta
    assert np.argmax(theta) == 3
    assert np.all((theta >= 0) & (theta <= 1))


def test_tfidf_preference_on_synthetic_data_is_not_degenerate(small_split):
    theta = TfidfPreference().estimate(small_split.train).theta
    assert theta.std() > 0.0
    assert 0.0 < theta.mean() < 1.0


def test_random_preference_determinism(small_split):
    a = RandomPreference(seed=3).estimate(small_split.train).theta
    b = RandomPreference(seed=3).estimate(small_split.train).theta
    np.testing.assert_allclose(a, b)
    c = RandomPreference(seed=4).estimate(small_split.train).theta
    assert not np.allclose(a, c)


def test_random_preference_spans_unit_interval(small_split):
    theta = RandomPreference(seed=0).estimate(small_split.train).theta
    assert theta.min() >= 0.0 and theta.max() <= 1.0
    assert theta.std() > 0.1


def test_constant_preference_value(small_split):
    theta = ConstantPreference(0.25).estimate(small_split.train).theta
    np.testing.assert_allclose(theta, 0.25)


def test_constant_preference_validation():
    with pytest.raises(ConfigurationError):
        ConstantPreference(1.5)


def test_model_names_are_stable(tiny_dataset):
    assert ActivityPreference().estimate(tiny_dataset).model_name == "activity"
    assert TfidfPreference().estimate(tiny_dataset).model_name == "tfidf"
    assert ConstantPreference().estimate(tiny_dataset).model_name == "constant"
