"""Docstring-presence audit mirroring the ruff `D` ruleset in pyproject.toml.

The documentation site renders library docstrings with mkdocstrings, so a
missing docstring is a broken docs page.  CI enforces this via ruff
(D100–D104, D106, D419); this test enforces the identical contract with the
stdlib ``ast`` module so the tier-1 suite catches violations in environments
without ruff installed — and so the two can never silently diverge on what
"documented" means: every public module, package, class, method and function
under ``src/`` must carry a non-empty docstring.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"

#: The packages the serving PR audited explicitly; listed first so a failure
#: names them, but the contract covers all of src/.
AUDITED_PACKAGES = ("repro/serving", "repro/parallel", "repro/pipeline")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path) -> list[str]:
    """All public defs/classes (and the module itself) lacking a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing: list[str] = []
    docstring = ast.get_docstring(tree)
    if not (docstring and docstring.strip()):
        missing.append("<module>")
    for node in ast.walk(tree):
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_public(node.name):
            continue
        # Overload stubs and trivial protocol bodies (`...`) document the
        # contract at the definition site mkdocstrings renders.
        body = [s for s in node.body if not isinstance(s, ast.Expr) or not isinstance(s.value, ast.Constant)]
        if not body and not isinstance(node, ast.ClassDef):
            continue
        docstring = ast.get_docstring(node)
        if not (docstring and docstring.strip()):
            missing.append(f"{type(node).__name__.replace('Def', '').lower()} {node.name}:{node.lineno}")
    return missing


def _source_files() -> list[Path]:
    return sorted(p for p in SRC_ROOT.rglob("*.py") if "__pycache__" not in p.parts)


def test_source_tree_found():
    assert len(_source_files()) > 50


@pytest.mark.parametrize(
    "path", _source_files(), ids=lambda p: p.relative_to(SRC_ROOT).as_posix()
)
def test_public_api_is_documented(path: Path):
    missing = _missing_docstrings(path)
    assert not missing, (
        f"{path.relative_to(SRC_ROOT)} has undocumented public API "
        f"(breaks the mkdocstrings-rendered docs site): {missing}"
    )


@pytest.mark.parametrize("package", AUDITED_PACKAGES)
def test_audited_packages_exist(package: str):
    """The packages the docs site renders in full are present and non-empty."""
    directory = SRC_ROOT / package
    assert any(directory.glob("*.py")), f"{package} has no modules to document"
