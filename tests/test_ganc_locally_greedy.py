"""Tests for the exact Locally Greedy optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.static import StaticCoverage
from repro.exceptions import ConfigurationError
from repro.ganc.locally_greedy import LocallyGreedyOptimizer


def _providers(train):
    def accuracy(user: int) -> np.ndarray:
        rng = np.random.default_rng(100 + user)
        return rng.random(train.n_items)

    def exclusions(user: int) -> np.ndarray:
        return train.user_items(user)

    return accuracy, exclusions


def test_constructor_validation(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    with pytest.raises(ConfigurationError):
        LocallyGreedyOptimizer(coverage, 0)


def test_run_assigns_n_items_to_every_user(small_split):
    train = small_split.train
    coverage = DynamicCoverage().fit(train)
    accuracy, exclusions = _providers(train)
    result = LocallyGreedyOptimizer(coverage, 5).run(
        np.full(train.n_users, 0.5), accuracy, exclusions
    )
    assert result.items.shape == (train.n_users, 5)
    for user in range(train.n_users):
        row = result.for_user(user)
        assert row.size == 5
        assert len(set(row.tolist())) == 5


def test_run_never_recommends_train_items(small_split):
    train = small_split.train
    coverage = DynamicCoverage().fit(train)
    accuracy, exclusions = _providers(train)
    result = LocallyGreedyOptimizer(coverage, 5).run(
        np.full(train.n_users, 0.7), accuracy, exclusions
    )
    for user in range(train.n_users):
        seen = set(train.user_items(user).tolist())
        assert seen.isdisjoint(set(result.for_user(user).tolist()))


def test_dynamic_state_is_updated_between_users(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    accuracy = lambda u: np.zeros(tiny_dataset.n_items)
    exclusions = lambda u: np.empty(0, dtype=np.int64)
    LocallyGreedyOptimizer(coverage, 2).run(
        np.ones(tiny_dataset.n_users), accuracy, exclusions
    )
    # 4 users x 2 items each = 8 assignments recorded in the coverage state.
    assert coverage.frequencies.sum() == pytest.approx(8.0)


def test_pure_coverage_users_spread_across_items(tiny_dataset):
    """θ=1 users with zero accuracy signal should avoid re-recommending items."""
    coverage = DynamicCoverage().fit(tiny_dataset)
    accuracy = lambda u: np.zeros(tiny_dataset.n_items)
    exclusions = lambda u: np.empty(0, dtype=np.int64)
    result = LocallyGreedyOptimizer(coverage, 1).run(
        np.ones(tiny_dataset.n_users), accuracy, exclusions
    )
    assigned = [int(result.for_user(u)[0]) for u in range(tiny_dataset.n_users)]
    # 4 users, 6 items, pure coverage: every user gets a distinct item.
    assert len(set(assigned)) == 4


def test_pure_accuracy_users_ignore_coverage(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    scores = np.linspace(1.0, 0.0, tiny_dataset.n_items)
    accuracy = lambda u: scores
    exclusions = lambda u: np.empty(0, dtype=np.int64)
    result = LocallyGreedyOptimizer(coverage, 1).run(
        np.zeros(tiny_dataset.n_users), accuracy, exclusions
    )
    # With θ=0 everybody takes the single highest-accuracy item.
    assigned = {int(result.for_user(u)[0]) for u in range(tiny_dataset.n_users)}
    assert assigned == {0}


def test_static_coverage_is_order_independent(small_split):
    train = small_split.train
    accuracy, exclusions = _providers(train)
    theta = np.full(train.n_users, 0.5)

    forward = LocallyGreedyOptimizer(StaticCoverage().fit(train), 5).run(
        theta, accuracy, exclusions
    )
    backward = LocallyGreedyOptimizer(StaticCoverage().fit(train), 5).run(
        theta, accuracy, exclusions, user_order=list(range(train.n_users))[::-1]
    )
    np.testing.assert_array_equal(forward.items, backward.items)


def test_user_order_must_be_a_permutation(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    accuracy = lambda u: np.zeros(tiny_dataset.n_items)
    exclusions = lambda u: np.empty(0, dtype=np.int64)
    optimizer = LocallyGreedyOptimizer(coverage, 1)
    with pytest.raises(ConfigurationError):
        optimizer.run(np.ones(4), accuracy, exclusions, user_order=[0, 1, 1, 2])


def test_assign_user_with_all_items_excluded(tiny_dataset):
    coverage = DynamicCoverage().fit(tiny_dataset)
    optimizer = LocallyGreedyOptimizer(coverage, 3)
    items = optimizer.assign_user(
        0, 0.5, np.zeros(tiny_dataset.n_items), np.arange(tiny_dataset.n_items)
    )
    assert items.size == 0
