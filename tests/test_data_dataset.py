"""Tests for the RatingDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Interaction, RatingDataset
from repro.exceptions import DataError


def test_basic_properties(tiny_dataset):
    assert tiny_dataset.n_users == 4
    assert tiny_dataset.n_items == 6
    assert tiny_dataset.n_ratings == 12
    assert len(tiny_dataset) == 12
    assert tiny_dataset.density == pytest.approx(12 / 24)


def test_rating_scale(tiny_dataset):
    assert tiny_dataset.rating_scale == (2.0, 5.0)


def test_user_items_and_ratings(tiny_dataset):
    items = tiny_dataset.user_items(0)
    assert set(items.tolist()) == {0, 1, 2}
    items, ratings = tiny_dataset.user_ratings(3)
    lookup = dict(zip(items.tolist(), ratings.tolist()))
    assert lookup == {0: 2.0, 4: 5.0, 5: 4.0}


def test_item_users(tiny_dataset):
    users = tiny_dataset.item_users(0)
    assert set(users.tolist()) == {0, 1, 2, 3}
    assert set(tiny_dataset.item_users(4).tolist()) == {3}


def test_user_activity_and_item_popularity(tiny_dataset):
    np.testing.assert_array_equal(tiny_dataset.user_activity(), [3, 3, 3, 3])
    np.testing.assert_array_equal(tiny_dataset.item_popularity(), [4, 2, 2, 2, 1, 1])


def test_to_csr_matches_triples(tiny_dataset):
    csr = tiny_dataset.to_csr()
    assert csr.shape == (4, 6)
    assert csr[0, 0] == 5.0
    assert csr[3, 5] == 4.0
    assert csr.nnz == 12


def test_csr_and_csc_are_cached(tiny_dataset):
    assert tiny_dataset.to_csr() is tiny_dataset.to_csr()
    assert tiny_dataset.to_csc() is tiny_dataset.to_csc()


def test_mean_rating(tiny_dataset):
    assert tiny_dataset.mean_rating() == pytest.approx(np.mean([5, 4, 3, 4, 5, 2, 3, 4, 5, 2, 5, 4]))


def test_rating_lookup(tiny_dataset):
    lookup = tiny_dataset.rating_lookup()
    assert lookup[(0, 0)] == 5.0
    assert lookup[(2, 3)] == 5.0
    assert (1, 5) not in lookup


def test_iteration_yields_interactions(tiny_dataset):
    records = list(tiny_dataset)
    assert len(records) == 12
    assert all(isinstance(r, Interaction) for r in records)


def test_users_and_items_with_ratings(tiny_dataset):
    np.testing.assert_array_equal(tiny_dataset.users_with_ratings(), [0, 1, 2, 3])
    np.testing.assert_array_equal(tiny_dataset.items_with_ratings(), [0, 1, 2, 3, 4, 5])


def test_from_interactions_maps_raw_ids():
    data = RatingDataset.from_interactions(
        [("alice", "x", 5.0), ("bob", "y", 3.0), ("alice", "y", 4.0)]
    )
    assert data.n_users == 2
    assert data.n_items == 2
    assert data.user_ids == ["alice", "bob"]
    assert data.item_ids == ["x", "y"]


def test_from_interactions_rejects_empty_input():
    with pytest.raises(DataError):
        RatingDataset.from_interactions([])


def test_with_interactions_preserves_universe(tiny_dataset):
    subset = tiny_dataset.with_interactions(
        np.array([0, 1]), np.array([0, 1]), np.array([5.0, 4.0]), name="subset"
    )
    assert subset.n_users == tiny_dataset.n_users
    assert subset.n_items == tiny_dataset.n_items
    assert subset.n_ratings == 2
    assert subset.name == "subset"


def test_constructor_validates_shapes():
    with pytest.raises(DataError):
        RatingDataset(np.array([0]), np.array([0, 1]), np.array([1.0]), n_users=1, n_items=2)


def test_constructor_validates_index_bounds():
    with pytest.raises(DataError):
        RatingDataset(np.array([5]), np.array([0]), np.array([1.0]), n_users=2, n_items=2)
    with pytest.raises(DataError):
        RatingDataset(np.array([0]), np.array([9]), np.array([1.0]), n_users=2, n_items=2)


def test_constructor_validates_id_lengths():
    with pytest.raises(DataError):
        RatingDataset(
            np.array([0]), np.array([0]), np.array([1.0]),
            n_users=2, n_items=1, user_ids=["only-one"],
        )


def test_arrays_are_read_only(tiny_dataset):
    with pytest.raises(ValueError):
        tiny_dataset.ratings[0] = 99.0


def test_filter_users_with_min_ratings():
    triples = [(0, 0, 3.0), (0, 1, 4.0), (1, 0, 5.0), (2, 2, 1.0), (2, 3, 2.0), (2, 4, 3.0)]
    data = RatingDataset.from_interactions(triples)
    filtered = data.filter_users_with_min_ratings(2)
    assert filtered.n_users == 2  # users 0 and 2 survive
    assert filtered.n_ratings == 5
    # Items are re-indexed to those that still have interactions.
    assert filtered.n_items == 5


def test_filter_users_rejects_bad_minimum(tiny_dataset):
    with pytest.raises(DataError):
        tiny_dataset.filter_users_with_min_ratings(0)


def test_filter_removing_everything_raises():
    data = RatingDataset.from_interactions([(0, 0, 1.0), (1, 1, 2.0)])
    with pytest.raises(DataError):
        data.filter_users_with_min_ratings(5)
