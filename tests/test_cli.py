"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ConfigurationError


def test_parser_knows_every_subcommand():
    parser = build_parser()
    help_text = parser.format_help()
    for command in (
        "table2", "figure1", "figure2", "figure3", "figure4", "figure5",
        "table4", "table5", "figure6", "figure7-8",
        "ablation-oslg", "ablation-ordering", "recommend",
    ):
        assert command in help_text


def test_cli_requires_a_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["table2", "--datasets", "not-a-dataset"])


def test_cli_table2_prints_rows(capsys):
    exit_code = main(["table2", "--scale", "0.2", "--datasets", "ml100k"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "ML-100K" in out


def test_cli_table2_writes_output_file(tmp_path, capsys):
    target = tmp_path / "table2.txt"
    exit_code = main(["table2", "--scale", "0.2", "--datasets", "ml100k", "--output", str(target)])
    assert exit_code == 0
    assert target.exists()
    assert "ML-100K" in target.read_text()


def test_cli_figure1_runs(capsys):
    exit_code = main(["figure1", "--scale", "0.2", "--datasets", "ml100k"])
    assert exit_code == 0
    assert "Figure 1" in capsys.readouterr().out


def test_cli_figure2_runs(capsys):
    exit_code = main(["figure2", "--scale", "0.2", "--datasets", "ml100k"])
    assert exit_code == 0
    assert "thetaG" in capsys.readouterr().out


def test_cli_ablation_ordering_runs(capsys):
    exit_code = main(["ablation-ordering", "--dataset", "ml100k", "--scale", "0.2"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "increasing" in out and "decreasing" in out


def test_cli_report_writes_markdown(tmp_path, capsys):
    target = tmp_path / "report.md"
    exit_code = main(
        [
            "report",
            "--datasets", "ml100k",
            "--scale", "0.2",
            "--sample-size", "40",
            "--skip-table4",
            "--skip-figure6",
            "--output", str(target),
        ]
    )
    assert exit_code == 0
    assert target.exists()
    assert "# GANC reproduction report" in target.read_text()


def test_cli_recommend_reports_metrics(capsys, tmp_path):
    recs_file = tmp_path / "recs.csv"
    exit_code = main(
        [
            "recommend",
            "--dataset", "ml100k",
            "--scale", "0.2",
            "--arec", "pop",
            "--theta", "thetaT",
            "--coverage", "dyn",
            "--sample-size", "30",
            "--save-recommendations", str(recs_file),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "f_measure" in out and "coverage" in out
    assert recs_file.exists()
    header = recs_file.read_text().splitlines()[0]
    assert header == "user,rank,item"


def test_cli_recommend_dump_spec_and_run_reproduce_csv(tmp_path, capsys):
    """`run --config` must reproduce the `recommend` CSV byte-identically."""
    spec_path = tmp_path / "spec.json"
    rec_csv = tmp_path / "recommend.csv"
    run_csv = tmp_path / "run.csv"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.2",
            "--arec", "psvd10", "--theta", "thetaN", "--coverage", "dyn",
            "--sample-size", "30",
            "--dump-spec", str(spec_path),
            "--save-recommendations", str(rec_csv),
        ]
    ) == 0
    assert spec_path.exists()
    assert main(
        ["run", "--config", str(spec_path), "--save-recommendations", str(run_csv)]
    ) == 0
    assert rec_csv.read_bytes() == run_csv.read_bytes()


def test_cli_run_save_and_load_pipeline_serve_identically(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    artifact = tmp_path / "artifact"
    first_csv = tmp_path / "first.csv"
    served_csv = tmp_path / "served.csv"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.2",
            "--arec", "pop", "--theta", "thetaT", "--coverage", "stat",
            "--sample-size", "30", "--dump-spec", str(spec_path),
        ]
    ) == 0
    assert main(
        [
            "run", "--config", str(spec_path),
            "--save-pipeline", str(artifact),
            "--save-recommendations", str(first_csv),
        ]
    ) == 0
    assert (artifact / "spec.json").exists()
    assert (artifact / "state.npz").exists()
    assert main(
        [
            "run", "--load-pipeline", str(artifact),
            "--save-recommendations", str(served_csv),
        ]
    ) == 0
    assert first_csv.read_bytes() == served_csv.read_bytes()


def test_cli_run_requires_a_source(capsys):
    import pytest as _pytest

    with _pytest.raises(SystemExit):
        main(["run"])


def test_cli_block_size_is_accepted_and_preserves_output(tmp_path, capsys):
    default_csv = tmp_path / "default.csv"
    blocked_csv = tmp_path / "blocked.csv"
    base = [
        "recommend", "--dataset", "ml100k", "--scale", "0.2",
        "--arec", "psvd10", "--theta", "thetaN", "--coverage", "stat",
        "--sample-size", "30",
    ]
    assert main(base + ["--save-recommendations", str(default_csv)]) == 0
    assert main(
        base + ["--block-size", "7", "--save-recommendations", str(blocked_csv)]
    ) == 0
    assert default_csv.read_bytes() == blocked_csv.read_bytes()


def test_cli_recommend_honors_output_file(tmp_path, capsys):
    target = tmp_path / "metrics.txt"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.2",
            "--arec", "pop", "--theta", "thetaN", "--coverage", "stat",
            "--sample-size", "30", "--output", str(target),
        ]
    ) == 0
    assert target.exists()
    assert "f_measure" in target.read_text()


# --------------------------------------------------------------------------- #
# --jobs / --backend: validation and output equivalence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("option,value", [
    ("--jobs", "0"),
    ("--jobs", "-2"),
    ("--jobs", "two"),
    ("--block-size", "0"),
    ("--block-size", "-5"),
])
def test_cli_rejects_non_positive_jobs_and_block_size(option, value):
    with pytest.raises(ConfigurationError, match=option.replace("--", "--")):
        main(["recommend", "--dataset", "ml100k", "--scale", "0.2", option, value])


def test_cli_run_rejects_non_positive_jobs(tmp_path):
    with pytest.raises(ConfigurationError, match="--jobs"):
        main(["run", "--config", "whatever.json", "--jobs", "0"])


@pytest.mark.parametrize("value", ["0", "-0.5", "nan", "inf", "abc"])
def test_cli_rejects_non_positive_scale(value):
    """--scale is validated at parse time, naming the flag (not deep in synthesis)."""
    with pytest.raises(ConfigurationError, match="--scale"):
        main(["table2", "--scale", value])


@pytest.mark.parametrize("option,value", [
    ("--shard-size", "0"),
    ("--max-users", "-1"),
    ("--n", "0"),
    ("--jobs", "0"),
])
def test_cli_compile_rejects_bad_arguments(option, value):
    with pytest.raises(ConfigurationError, match=option):
        main(["compile", "--pipeline", "p", "--artifact", "a", option, value])


def test_cli_jobs_and_backend_preserve_recommend_output(tmp_path, capsys):
    serial_csv = tmp_path / "serial.csv"
    parallel_csv = tmp_path / "parallel.csv"
    base = [
        "recommend", "--dataset", "ml100k", "--scale", "0.15",
        "--arec", "psvd10", "--theta", "thetaG", "--coverage", "dyn",
        "--sample-size", "25",
    ]
    assert main(base + ["--save-recommendations", str(serial_csv)]) == 0
    assert main(
        base + [
            "--jobs", "2", "--backend", "process", "--block-size", "9",
            "--save-recommendations", str(parallel_csv),
        ]
    ) == 0
    assert serial_csv.read_bytes() == parallel_csv.read_bytes()


def test_cli_run_jobs_override_preserves_spec_output(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    serial_csv = tmp_path / "serial.csv"
    parallel_csv = tmp_path / "parallel.csv"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.15",
            "--arec", "pop", "--theta", "thetaN", "--coverage", "stat",
            "--sample-size", "25", "--dump-spec", str(spec_path),
            "--save-recommendations", str(serial_csv),
        ]
    ) == 0
    assert main(
        [
            "run", "--config", str(spec_path), "--jobs", "2",
            "--backend", "thread", "--save-recommendations", str(parallel_csv),
        ]
    ) == 0
    assert serial_csv.read_bytes() == parallel_csv.read_bytes()


def test_cli_load_pipeline_jobs_override_serves_identically(tmp_path, capsys):
    artifact = tmp_path / "artifact"
    serial_csv = tmp_path / "serial.csv"
    parallel_csv = tmp_path / "parallel.csv"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.15",
            "--arec", "psvd10", "--theta", "thetaG", "--coverage", "dyn",
            "--sample-size", "25", "--save-pipeline", str(artifact),
            "--save-recommendations", str(serial_csv),
        ]
    ) == 0
    assert main(
        [
            "run", "--load-pipeline", str(artifact), "--jobs", "2",
            "--backend", "process", "--save-recommendations", str(parallel_csv),
        ]
    ) == 0
    assert serial_csv.read_bytes() == parallel_csv.read_bytes()


# --------------------------------------------------------------------------- #
# GANC optimizer knobs: --sample-size / --bandwidth / --theta-order
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "option,value",
    [
        ("--sample-size", "0"),
        ("--sample-size", "-3"),
        ("--sample-size", "many"),
        ("--bandwidth", "0"),
        ("--bandwidth", "-1.5"),
        ("--bandwidth", "silvermann"),
        ("--bandwidth", "inf"),
        ("--theta-order", "sideways"),
    ],
)
def test_cli_recommend_rejects_bad_ganc_knobs(option, value):
    with pytest.raises(ConfigurationError, match=option.replace("-", "[-]")):
        main(["recommend", option, value])


@pytest.mark.parametrize(
    "option,value",
    [
        ("--sample-size", "0"),
        ("--bandwidth", "nope"),
        ("--theta-order", "diagonal"),
    ],
)
def test_cli_run_rejects_bad_ganc_knobs(tmp_path, option, value):
    with pytest.raises(ConfigurationError, match=option.replace("-", "[-]")):
        main(["run", "--config", str(tmp_path / "spec.json"), option, value])


def test_cli_recommend_threads_ganc_knobs_into_spec(tmp_path):
    spec_path = tmp_path / "spec.json"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.2",
            "--arec", "pop", "--theta", "thetaT", "--coverage", "dyn",
            "--sample-size", "17", "--bandwidth", "0.25",
            "--theta-order", "decreasing",
            "--dump-spec", str(spec_path),
        ]
    ) == 0
    from repro.pipeline import PipelineSpec

    spec = PipelineSpec.from_json_file(spec_path)
    assert spec.ganc.sample_size == 17
    assert spec.ganc.bandwidth == 0.25
    assert spec.ganc.theta_order == "decreasing"


def test_cli_run_ganc_overrides_change_the_run(tmp_path, capsys):
    """`run` overrides must actually reach the optimizer: a different

    sample size changes which users are served sequentially, while the same
    override value reproduces the unmodified spec byte-for-byte."""
    spec_path = tmp_path / "spec.json"
    base_csv = tmp_path / "base.csv"
    same_csv = tmp_path / "same.csv"
    assert main(
        [
            "recommend", "--dataset", "ml100k", "--scale", "0.2",
            "--arec", "pop", "--theta", "thetaT", "--coverage", "dyn",
            "--sample-size", "30",
            "--dump-spec", str(spec_path),
            "--save-recommendations", str(base_csv),
        ]
    ) == 0
    assert main(
        [
            "run", "--config", str(spec_path),
            "--sample-size", "30",
            "--save-recommendations", str(same_csv),
        ]
    ) == 0
    assert base_csv.read_bytes() == same_csv.read_bytes()


def test_cli_serve_async_only_flags_require_async(tmp_path):
    """--workers/--coalesce-* configure the async tier; reject them without it."""
    for flags in (
        ["--workers", "2"],
        ["--coalesce-max", "8"],
        ["--coalesce-window-us", "0"],
    ):
        with pytest.raises(ConfigurationError, match="requires --async"):
            main(["serve", "--artifact", str(tmp_path), *flags])


def test_cli_serve_rejects_nonpositive_worker_counts(tmp_path):
    with pytest.raises(ConfigurationError, match="--workers must be >= 1"):
        main(["serve", "--artifact", str(tmp_path), "--async", "--workers", "0"])
    with pytest.raises(ConfigurationError, match="--coalesce-max must be >= 1"):
        main(["serve", "--artifact", str(tmp_path), "--async", "--coalesce-max", "-1"])
