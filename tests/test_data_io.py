"""Tests for dataset / recommendation / report persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.io import (
    load_dataset_csv,
    load_recommendations_csv,
    load_reports_json,
    report_from_dict,
    report_to_dict,
    save_dataset_csv,
    save_recommendations_csv,
    save_reports_json,
)
from repro.exceptions import DataFormatError
from repro.metrics.report import MetricReport


def test_dataset_csv_roundtrip(tiny_dataset, tmp_path):
    path = save_dataset_csv(tiny_dataset, tmp_path / "ratings.csv")
    loaded = load_dataset_csv(path)
    assert loaded.n_ratings == tiny_dataset.n_ratings
    assert loaded.n_users == tiny_dataset.n_users
    assert loaded.n_items == tiny_dataset.n_items
    assert sorted(loaded.ratings.tolist()) == sorted(tiny_dataset.ratings.tolist())


def test_dataset_csv_preserves_raw_ids(tmp_path):
    from repro.data.dataset import RatingDataset

    data = RatingDataset.from_interactions(
        [("alice", "matrix", 5.0), ("bob", "alien", 4.0), ("alice", "alien", 3.0)]
    )
    path = save_dataset_csv(data, tmp_path / "named.csv")
    text = path.read_text()
    assert "alice" in text and "matrix" in text
    loaded = load_dataset_csv(path)
    assert set(loaded.user_ids) == {"alice", "bob"}


def test_recommendations_csv_roundtrip(tmp_path):
    recs = {0: np.array([5, 3, 9]), 2: np.array([1]), 7: np.array([4, 2])}
    path = save_recommendations_csv(recs, tmp_path / "recs.csv")
    loaded = load_recommendations_csv(path)
    assert set(loaded) == {0, 2, 7}
    np.testing.assert_array_equal(loaded[0], [5, 3, 9])
    np.testing.assert_array_equal(loaded[7], [4, 2])


def test_recommendations_preserve_rank_order(tmp_path):
    recs = {0: np.array([9, 1, 5])}
    path = save_recommendations_csv(recs, tmp_path / "recs.csv")
    loaded = load_recommendations_csv(path)
    np.testing.assert_array_equal(loaded[0], [9, 1, 5])


def test_recommendations_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,1,1\n")
    with pytest.raises(DataFormatError):
        load_recommendations_csv(path)


def test_recommendations_non_integer_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("user,rank,item\n1,1,abc\n")
    with pytest.raises(DataFormatError):
        load_recommendations_csv(path)


def test_recommendations_missing_file(tmp_path):
    with pytest.raises(DataFormatError):
        load_recommendations_csv(tmp_path / "missing.csv")


def _report() -> MetricReport:
    return MetricReport(
        algorithm="GANC",
        dataset="ml100k",
        n=5,
        precision=0.1,
        recall=0.2,
        f_measure=0.066,
        lt_accuracy=0.3,
        stratified_recall=0.05,
        coverage=0.9,
        gini=0.4,
        extras={"ndcg": 0.15},
    )


def test_report_dict_roundtrip():
    report = _report()
    payload = report_to_dict(report)
    rebuilt = report_from_dict(payload)
    assert rebuilt == report


def test_report_from_dict_rejects_missing_fields():
    with pytest.raises(DataFormatError):
        report_from_dict({"algorithm": "x"})


def test_reports_json_roundtrip(tmp_path):
    reports = [_report(), _report()]
    path = save_reports_json(reports, tmp_path / "reports.json")
    loaded = load_reports_json(path)
    assert loaded == reports
    # The file is human-readable JSON.
    parsed = json.loads(path.read_text())
    assert isinstance(parsed, list) and parsed[0]["algorithm"] == "GANC"


def test_reports_json_rejects_non_array(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"algorithm": "x"}')
    with pytest.raises(DataFormatError):
        load_reports_json(path)


def test_reports_json_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all")
    with pytest.raises(DataFormatError):
        load_reports_json(path)
