"""Tests for the dataset file-format loaders."""

from __future__ import annotations

import pytest

from repro.data.loaders import (
    load_csv_ratings,
    load_movielens_100k,
    load_movielens_dat,
    load_movietweetings,
    load_netflix_directory,
    map_rating_to_five_star,
)
from repro.exceptions import DataFormatError


def test_load_movielens_100k(tmp_path):
    path = tmp_path / "u.data"
    path.write_text("1\t10\t5\t874965758\n1\t20\t3\t876893171\n2\t10\t4\t878542960\n")
    data = load_movielens_100k(path)
    assert data.n_users == 2
    assert data.n_items == 2
    assert data.n_ratings == 3
    assert data.rating_scale == (3.0, 5.0)


def test_load_movielens_dat(tmp_path):
    path = tmp_path / "ratings.dat"
    path.write_text("1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978301968\n")
    data = load_movielens_dat(path, name="ml1m-test")
    assert data.name == "ml1m-test"
    assert data.n_ratings == 3
    assert data.n_users == 2


def test_load_movielens_skips_blank_lines(tmp_path):
    path = tmp_path / "u.data"
    path.write_text("1\t10\t5\t0\n\n2\t10\t4\t0\n")
    assert load_movielens_100k(path).n_ratings == 2


def test_loader_rejects_malformed_lines(tmp_path):
    path = tmp_path / "u.data"
    path.write_text("1\t10\n")
    with pytest.raises(DataFormatError):
        load_movielens_100k(path)


def test_loader_rejects_non_numeric_rating(tmp_path):
    path = tmp_path / "u.data"
    path.write_text("1\t10\tfive\t0\n")
    with pytest.raises(DataFormatError):
        load_movielens_100k(path)


def test_loader_missing_file_raises(tmp_path):
    with pytest.raises(DataFormatError):
        load_movielens_100k(tmp_path / "does-not-exist.data")


def test_map_rating_to_five_star_endpoints():
    assert map_rating_to_five_star(0.0) == pytest.approx(1.0)
    assert map_rating_to_five_star(10.0) == pytest.approx(5.0)
    assert map_rating_to_five_star(5.0) == pytest.approx(3.0)


def test_map_rating_clips_out_of_range():
    assert map_rating_to_five_star(12.0) == pytest.approx(5.0)
    assert map_rating_to_five_star(-3.0) == pytest.approx(1.0)


def test_load_movietweetings_maps_and_filters(tmp_path):
    path = tmp_path / "ratings.dat"
    lines = [f"1::{100 + i}::10::0" for i in range(6)] + ["2::100::8::0"]
    path.write_text("\n".join(lines) + "\n")
    data = load_movietweetings(path, min_user_ratings=5)
    # User 2 has only one rating and is filtered out.
    assert data.n_users == 1
    assert data.rating_scale[1] == pytest.approx(5.0)


def test_load_netflix_directory(tmp_path):
    (tmp_path / "mv_0000001.txt").write_text("1:\n101,5,2005-09-06\n102,3,2005-09-07\n")
    (tmp_path / "mv_0000002.txt").write_text("2:\n101,4,2005-09-06\n")
    data = load_netflix_directory(tmp_path)
    assert data.n_items == 2
    assert data.n_users == 2
    assert data.n_ratings == 3


def test_load_netflix_rejects_missing_header(tmp_path):
    (tmp_path / "mv_0000001.txt").write_text("101,5,2005-09-06\n")
    with pytest.raises(DataFormatError):
        load_netflix_directory(tmp_path)


def test_load_netflix_empty_directory(tmp_path):
    with pytest.raises(DataFormatError):
        load_netflix_directory(tmp_path)


def test_load_netflix_limit_files(tmp_path):
    (tmp_path / "mv_0000001.txt").write_text("1:\n101,5,2005-09-06\n")
    (tmp_path / "mv_0000002.txt").write_text("2:\n102,4,2005-09-06\n")
    data = load_netflix_directory(tmp_path, limit_files=1)
    assert data.n_items == 1


def test_load_csv_with_header(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text("user,item,rating,ts\nu1,i1,4.5,0\nu2,i1,2.0,0\n")
    data = load_csv_ratings(path)
    assert data.n_ratings == 2
    assert data.rating_scale == (2.0, 4.5)


def test_load_csv_without_header(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text("u1,i1,4.5\nu2,i2,2.0\n")
    data = load_csv_ratings(path, has_header=False)
    assert data.n_ratings == 2
    assert data.n_items == 2


def test_load_csv_rejects_short_rows(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text("user,item,rating\nu1,i1\n")
    with pytest.raises(DataFormatError):
        load_csv_ratings(path)
