"""Tests for PureSVD, CofiRank and ItemKNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.knn import ItemKNN
from repro.recommenders.puresvd import PureSVD


# --------------------------------------------------------------------------- #
# PureSVD
# --------------------------------------------------------------------------- #
def test_puresvd_requires_positive_factors():
    with pytest.raises(ConfigurationError):
        PureSVD(n_factors=0)


def test_puresvd_caps_rank_at_matrix_size(tiny_dataset):
    model = PureSVD(n_factors=100).fit(tiny_dataset)
    assert model.effective_factors_ == min(tiny_dataset.n_users, tiny_dataset.n_items) - 1


def test_puresvd_scores_correlate_with_observed_ratings(small_split):
    model = PureSVD(n_factors=10).fit(small_split.train)
    train = small_split.train
    # Reconstruction should give higher scores to items the user rated highly
    # than to a random unrated item, on average.
    better = 0
    total = 0
    rng = np.random.default_rng(0)
    for user in range(0, train.n_users, 5):
        items, ratings = train.user_ratings(user)
        if items.size == 0:
            continue
        liked = items[np.argmax(ratings)]
        unrated = rng.choice(np.setdiff1d(np.arange(train.n_items), items))
        scores = model.predict_scores(user, np.array([liked, unrated]))
        better += int(scores[0] > scores[1])
        total += 1
    assert better / total > 0.7


def test_puresvd_more_factors_changes_recommendations(small_split):
    small = PureSVD(n_factors=3).fit(small_split.train).recommend_all(5)
    large = PureSVD(n_factors=30).fit(small_split.train).recommend_all(5)
    differences = sum(
        not np.array_equal(small.for_user(u), large.for_user(u))
        for u in range(small.n_users)
    )
    assert differences > 0


def test_puresvd_deterministic(small_split):
    a = PureSVD(n_factors=8).fit(small_split.train).recommend(0, 5)
    b = PureSVD(n_factors=8).fit(small_split.train).recommend(0, 5)
    np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------------- #
# CofiRank (regression-loss collaborative ranking)
# --------------------------------------------------------------------------- #
def test_cofirank_validation():
    with pytest.raises(ConfigurationError):
        CofiRank(n_factors=0)
    with pytest.raises(ConfigurationError):
        CofiRank(reg=-1.0)
    with pytest.raises(ConfigurationError):
        CofiRank(n_iterations=0)


def test_cofirank_fits_observed_ratings(small_split):
    model = CofiRank(n_factors=10, reg=5.0, n_iterations=3, seed=0).fit(small_split.train)
    train = small_split.train
    preds = np.array(
        [
            model.predict_scores(int(u), np.asarray([i]))[0]
            for u, i in zip(train.user_indices[:200], train.item_indices[:200])
        ]
    )
    rmse = float(np.sqrt(np.mean((preds - train.ratings[:200]) ** 2)))
    assert rmse < 1.5


def test_cofirank_is_deterministic(small_split):
    a = CofiRank(n_factors=6, n_iterations=2, seed=1).fit(small_split.train).recommend(2, 5)
    b = CofiRank(n_factors=6, n_iterations=2, seed=1).fit(small_split.train).recommend(2, 5)
    np.testing.assert_array_equal(a, b)


def test_cofirank_handles_users_without_train_ratings():
    from repro.data.dataset import RatingDataset

    # User universe of 3 but user 2 has no ratings.
    data = RatingDataset(
        np.array([0, 0, 1, 1]),
        np.array([0, 1, 0, 2]),
        np.array([5.0, 3.0, 4.0, 2.0]),
        n_users=3,
        n_items=3,
    )
    model = CofiRank(n_factors=2, n_iterations=2, seed=0).fit(data)
    scores = model.predict_scores(2, np.arange(3))
    assert np.all(np.isfinite(scores))


# --------------------------------------------------------------------------- #
# ItemKNN
# --------------------------------------------------------------------------- #
def test_itemknn_validation():
    with pytest.raises(ConfigurationError):
        ItemKNN(k=0)
    with pytest.raises(ConfigurationError):
        ItemKNN(shrinkage=-1)


def test_itemknn_similarity_diagonal_is_zero(small_split):
    model = ItemKNN(k=20).fit(small_split.train)
    assert np.allclose(np.diag(model.similarity_), 0.0)


def test_itemknn_scores_follow_user_history(tiny_dataset):
    model = ItemKNN(k=5, shrinkage=0.0).fit(tiny_dataset)
    scores = model.predict_scores(0, np.arange(tiny_dataset.n_items))
    assert np.all(np.isfinite(scores))


def test_itemknn_cold_user_gets_zero_scores():
    from repro.data.dataset import RatingDataset

    data = RatingDataset(
        np.array([0, 0, 1]),
        np.array([0, 1, 1]),
        np.array([4.0, 3.0, 5.0]),
        n_users=3,
        n_items=2,
    )
    model = ItemKNN(k=2).fit(data)
    np.testing.assert_allclose(model.predict_scores(2, np.arange(2)), [0.0, 0.0])


def test_itemknn_recommendations_are_valid(small_split):
    model = ItemKNN(k=30).fit(small_split.train)
    recs = model.recommend(1, 5)
    assert recs.size == 5
    assert len(set(recs.tolist())) == 5
