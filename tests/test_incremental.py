"""Streaming ingestion (:mod:`repro.data.incremental`) and exact delta refits.

The load-bearing guarantee is bitwise: a dataset extended with new triples
plus a model ``delta_refit`` must be indistinguishable — every persisted
array, every recommendation row — from a from-scratch ``fit`` on the same
extended dataset.  The property tests mirror the incremental-coverage suite
(``tests/test_coverage_state.py``): arbitrary deltas, exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage.state import CoverageState
from repro.data import (
    RatingDataset,
    RatioSplitter,
    SyntheticConfig,
    SyntheticDatasetFactory,
    consumed_delta,
    extend_split,
    extend_split_interactions,
    read_delta_csv,
)
from repro.exceptions import ConfigurationError, DataError, DataFormatError
from repro.pipeline import ComponentSpec, EvaluationSpec, Pipeline, PipelineSpec
from repro.recommenders.knn import ItemKNN
from repro.recommenders.popularity import MostPopular
from repro.recommenders.user_knn import UserKNN
from repro.simulate import PipelineSource, SimulationConfig, run_simulation

FAST = settings(max_examples=40, deadline=None)

N_USERS = 12
N_ITEMS = 20


def _tiny_dataset(seed: int = 3, n_ratings: int = 60) -> RatingDataset:
    rng = np.random.default_rng(seed)
    return RatingDataset(
        rng.integers(0, N_USERS, size=n_ratings),
        rng.integers(0, N_ITEMS, size=n_ratings),
        rng.uniform(1.0, 5.0, size=n_ratings),
        n_users=N_USERS,
        n_items=N_ITEMS,
    )


#: Arbitrary appended triples over a slightly larger universe than the base
#: dataset, so universe growth is exercised alongside plain appends.
DELTAS = st.lists(
    st.tuples(
        st.integers(0, N_USERS + 3),
        st.integers(0, N_ITEMS + 4),
        st.floats(1.0, 5.0, allow_nan=False),
    ),
    min_size=0,
    max_size=30,
)


def _delta_arrays(delta):
    users = np.asarray([u for u, _, _ in delta], dtype=np.int64)
    items = np.asarray([i for _, i, _ in delta], dtype=np.int64)
    ratings = np.asarray([r for _, _, r in delta], dtype=np.float64)
    return users, items, ratings


# --------------------------------------------------------------------------- #
# RatingDataset.extend
# --------------------------------------------------------------------------- #
class TestDatasetExtend:
    def test_appends_triples_and_preserves_prefix(self):
        base = _tiny_dataset()
        grown = base.extend([1, 2], [3, 4], [5.0, 4.0])
        assert grown.n_ratings == base.n_ratings + 2
        np.testing.assert_array_equal(
            grown.user_indices[: base.n_ratings], base.user_indices
        )
        np.testing.assert_array_equal(grown.user_indices[base.n_ratings:], [1, 2])
        np.testing.assert_array_equal(grown.item_indices[base.n_ratings:], [3, 4])
        np.testing.assert_array_equal(grown.ratings[base.n_ratings:], [5.0, 4.0])

    def test_does_not_mutate_the_original(self):
        base = _tiny_dataset()
        before = (
            base.user_indices.copy(),
            base.item_indices.copy(),
            base.ratings.copy(),
            base.n_users,
            base.n_items,
        )
        base.extend([N_USERS + 2], [N_ITEMS + 5], [1.0])
        np.testing.assert_array_equal(base.user_indices, before[0])
        np.testing.assert_array_equal(base.item_indices, before[1])
        np.testing.assert_array_equal(base.ratings, before[2])
        assert (base.n_users, base.n_items) == before[3:]

    def test_universe_grows_to_cover_new_indices(self):
        base = _tiny_dataset()
        grown = base.extend([N_USERS + 1], [N_ITEMS], [2.0])
        assert grown.n_users == N_USERS + 2
        assert grown.n_items == N_ITEMS + 1
        # Default raw ids of the appended entries are their dense indices.
        assert grown.user_ids[-1] == N_USERS + 1
        assert grown.item_ids[-1] == N_ITEMS

    def test_cannot_shrink_the_universe(self):
        base = _tiny_dataset()
        with pytest.raises(DataError, match="shrink"):
            base.extend([0], [0], [1.0], n_users=N_USERS - 1)

    def test_new_id_lists_must_match_growth(self):
        base = _tiny_dataset()
        with pytest.raises(DataError):
            base.extend([N_USERS], [0], [1.0], user_ids=["a", "b"])


# --------------------------------------------------------------------------- #
# extend_split bookkeeping
# --------------------------------------------------------------------------- #
class TestExtendSplit:
    @pytest.fixture()
    def split(self):
        return RatioSplitter(0.5, seed=11).split(_tiny_dataset())

    def test_delta_goes_to_train_and_test_is_reuniversed(self, split):
        ext = extend_split(split, [0, N_USERS], [0, N_ITEMS + 1], [1.0, 2.0])
        assert ext.split.train.n_ratings == split.train.n_ratings + 2
        assert ext.split.test.n_ratings == split.test.n_ratings
        assert ext.split.test.n_users == ext.split.train.n_users == N_USERS + 1
        assert ext.split.test.n_items == ext.split.train.n_items == N_ITEMS + 2

    def test_changed_and_new_bookkeeping(self, split):
        ext = extend_split(split, [3, 3, N_USERS], [0, 1, N_ITEMS], [1, 1, 1])
        np.testing.assert_array_equal(ext.changed_users, [3, N_USERS])
        np.testing.assert_array_equal(ext.new_users, [N_USERS])
        np.testing.assert_array_equal(ext.new_items, [N_ITEMS])
        assert ext.n_new_ratings == 3

    def test_empty_delta_is_a_noop_extension(self, split):
        ext = extend_split(
            split, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert ext.n_new_ratings == 0
        assert ext.changed_users.size == ext.new_users.size == ext.new_items.size == 0
        np.testing.assert_array_equal(
            ext.split.train.user_indices, split.train.user_indices
        )

    def test_raw_id_ingestion_grows_id_maps_deterministically(self, split):
        known_user = split.train.user_ids[2]
        known_item = split.train.item_ids[5]
        records = [
            (known_user, known_item, 4.0),
            ("fresh-user", known_item, 1.0),
            ("fresh-user", "fresh-item", 2.0),
        ]
        ext = extend_split_interactions(split, records)
        train = ext.split.train
        assert train.user_ids[-1] == "fresh-user"
        assert train.item_ids[-1] == "fresh-item"
        np.testing.assert_array_equal(train.user_indices[-3:], [2, N_USERS, N_USERS])
        np.testing.assert_array_equal(
            train.item_indices[-3:], [5, 5, N_ITEMS]
        )
        # Repeating the same records resolves through the same (grown) maps.
        again = extend_split_interactions(split, records)
        np.testing.assert_array_equal(
            again.split.train.user_indices, train.user_indices
        )


# --------------------------------------------------------------------------- #
# Exact delta refits
# --------------------------------------------------------------------------- #
class TestDeltaRefit:
    @pytest.fixture()
    def train(self):
        return _tiny_dataset()

    @FAST
    @given(delta=DELTAS)
    def test_popularity_delta_equals_scratch_bitwise(self, delta):
        train = _tiny_dataset()
        users, items, ratings = _delta_arrays(delta)
        grown = train.extend(users, items, ratings)

        incremental = MostPopular().fit(train).delta_refit(grown)
        scratch = MostPopular().fit(grown)
        np.testing.assert_array_equal(incremental._popularity, scratch._popularity)
        np.testing.assert_array_equal(incremental._scores, scratch._scores)
        np.testing.assert_array_equal(
            incremental.recommend_all(5).items, scratch.recommend_all(5).items
        )

    @FAST
    @given(delta=DELTAS)
    def test_coverage_counts_delta_equals_scratch_bitwise(self, delta):
        # The serving loop feeds consumed deltas into CoverageState.apply_batch;
        # mirror test_coverage_state.py's equivalence over ingestion deltas.
        users, items, _ = _delta_arrays(delta)
        per_user = [items[users == u] for u in np.unique(users)]
        state = CoverageState.zeros(N_ITEMS + 5)
        state.apply_batch(per_user)
        fresh = CoverageState.zeros(N_ITEMS + 5)
        fresh.apply_batch([items])
        np.testing.assert_array_equal(state.counts, fresh.counts)
        np.testing.assert_array_equal(state.scores, fresh.scores)

    @FAST
    @given(delta=DELTAS)
    def test_itemknn_delta_equals_scratch_bitwise(self, delta):
        train = _tiny_dataset()
        users, items, ratings = _delta_arrays(delta)
        grown = train.extend(users, items, ratings)

        incremental = ItemKNN(k=6).fit(train).delta_refit(grown)
        scratch = ItemKNN(k=6).fit(grown)
        np.testing.assert_array_equal(incremental._gram, scratch._gram)
        np.testing.assert_array_equal(incremental.similarity_, scratch.similarity_)
        np.testing.assert_array_equal(
            incremental.recommend_all(5).items, scratch.recommend_all(5).items
        )

    def test_cold_start_growth_without_ratings(self, train):
        grown = train.extend(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0),
            n_users=N_USERS + 4,
        )
        model = MostPopular().fit(train)
        before = model._popularity.copy()
        model.delta_refit(grown)
        np.testing.assert_array_equal(model._popularity, before)
        assert model.train_data is grown
        scratch = MostPopular().fit(grown)
        np.testing.assert_array_equal(
            model.recommend_all(5).items, scratch.recommend_all(5).items
        )

    def test_base_class_refuses_delta(self, train):
        model = UserKNN(k=4).fit(train)
        assert UserKNN.supports_delta_refit is False
        with pytest.raises(ConfigurationError, match="does not support delta"):
            model.delta_refit(train.extend([0], [0], [1.0]))

    def test_non_extension_is_rejected(self, train):
        model = MostPopular().fit(train)
        other = _tiny_dataset(seed=9)
        with pytest.raises(ConfigurationError, match="prefix"):
            model.delta_refit(other)
        shrunk = RatingDataset(
            train.user_indices[:-1],
            train.item_indices[:-1],
            train.ratings[:-1],
            n_users=N_USERS,
            n_items=N_ITEMS,
        )
        with pytest.raises(ConfigurationError, match="extension"):
            model.delta_refit(shrunk)

    def test_itemknn_without_cached_gram_refuses(self, train):
        model = ItemKNN(k=6).fit(train)
        model._gram = None  # a pipeline saved before delta support existed
        with pytest.raises(ConfigurationError, match="gram"):
            model.delta_refit(train.extend([0], [0], [1.0]))

    def test_itemknn_gram_survives_pipeline_persistence(self, tmp_path, train):
        split = RatioSplitter(0.5, seed=11).split(train)
        spec = PipelineSpec(
            recommender=ComponentSpec("itemknn", params={"k": 6}),
            evaluation=EvaluationSpec(n=5),
            seed=0,
        )
        Pipeline(spec).fit(split).save(tmp_path / "pipe")
        loaded = Pipeline.load(tmp_path / "pipe")
        assert loaded.recommender._gram is not None
        grown = split.train.extend([0, 1], [2, 3], [1.0, 1.0])
        loaded.recommender.delta_refit(grown)
        scratch = ItemKNN(k=6).fit(grown)
        np.testing.assert_array_equal(
            loaded.recommender.similarity_, scratch.similarity_
        )


# --------------------------------------------------------------------------- #
# Delta CSV wire format
# --------------------------------------------------------------------------- #
class TestReadDeltaCsv:
    def test_reads_triples_with_default_rating(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("# comment\n1,2,4.5\n\n3,4\nalice,widget,2\n")
        assert read_delta_csv(path) == [
            (1, 2, 4.5),
            (3, 4, 1.0),
            ("alice", "widget", 2.0),
        ]

    def test_header_line_is_skipped(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("user,item,rating\n1,2,3.0\n")
        assert read_delta_csv(path) == [(1, 2, 3.0)]

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("1,2,3.0\n1,2,3,4\n")
        with pytest.raises(DataFormatError, match=r"delta\.csv:2"):
            read_delta_csv(path)

    def test_bad_rating_past_the_header_raises(self, tmp_path):
        path = tmp_path / "delta.csv"
        path.write_text("1,2,3.0\n4,5,not-a-number\n")
        with pytest.raises(DataFormatError, match="not a number"):
            read_delta_csv(path)

    def test_empty_and_missing_files_raise(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("# nothing\n")
        with pytest.raises(DataFormatError, match="no interactions"):
            read_delta_csv(empty)
        with pytest.raises(DataFormatError, match="cannot read"):
            read_delta_csv(tmp_path / "missing.csv")


# --------------------------------------------------------------------------- #
# Closing the loop: simulated feedback → ingestible delta → exact refit
# --------------------------------------------------------------------------- #
class TestConsumedDelta:
    def test_repeats_users_per_consumed_item_preserving_duplicates(self):
        users, items, ratings = consumed_delta(
            np.asarray([4, 7, 4]),
            [np.asarray([1, 1]), np.asarray([], dtype=np.int64), np.asarray([2])],
            rating=2.5,
        )
        np.testing.assert_array_equal(users, [4, 4, 4])
        np.testing.assert_array_equal(items, [1, 1, 2])
        np.testing.assert_array_equal(ratings, [2.5, 2.5, 2.5])

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError, match="per event"):
            consumed_delta(np.asarray([1, 2]), [np.asarray([0])])

    def test_simulation_feedback_round_trips_into_an_exact_refit(self, small_split):
        spec = PipelineSpec(
            recommender=ComponentSpec("pop"), evaluation=EvaluationSpec(n=5), seed=0
        )
        pipeline = Pipeline(spec).fit(small_split)
        result = run_simulation(
            PipelineSource(pipeline),
            SimulationConfig(scenario="steady", n_events=40, n=5, window=20, seed=3),
        )
        assert len(result.consumed) == result.trace.n_events
        users, items, ratings = consumed_delta(result.trace.users, result.consumed)
        assert users.size == result.report["totals"]["consumed"]

        ext = extend_split(small_split, users, items, ratings)
        refit = MostPopular().fit(small_split.train).delta_refit(ext.split.train)
        scratch = MostPopular().fit(ext.split.train)
        np.testing.assert_array_equal(refit._popularity, scratch._popularity)
        np.testing.assert_array_equal(
            refit.recommend_all(5).items, scratch.recommend_all(5).items
        )
