"""Tests for the synthetic popularity-biased dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.popularity import PopularityStats
from repro.data.synthetic import (
    DATASET_PROFILES,
    SyntheticConfig,
    SyntheticDatasetFactory,
    make_dataset,
)
from repro.exceptions import ConfigurationError


def test_generator_respects_universe_size(small_config):
    data = SyntheticDatasetFactory(small_config).generate()
    assert data.n_users == small_config.n_users
    assert data.n_items == small_config.n_items


def test_generator_is_deterministic(small_config):
    a = SyntheticDatasetFactory(small_config).generate()
    b = SyntheticDatasetFactory(small_config).generate()
    np.testing.assert_array_equal(a.user_indices, b.user_indices)
    np.testing.assert_array_equal(a.item_indices, b.item_indices)
    np.testing.assert_array_equal(a.ratings, b.ratings)


def test_generator_seed_override_changes_data(small_config):
    a = SyntheticDatasetFactory(small_config).generate()
    b = SyntheticDatasetFactory(small_config).generate(seed=999)
    assert not np.array_equal(a.item_indices, b.item_indices)


def test_every_user_meets_minimum_activity(small_config, small_dataset):
    activity = small_dataset.user_activity()
    assert activity.min() >= small_config.min_user_ratings


def test_no_duplicate_user_item_pairs(small_dataset):
    pairs = set(zip(small_dataset.user_indices.tolist(), small_dataset.item_indices.tolist()))
    assert len(pairs) == small_dataset.n_ratings


def test_ratings_use_allowed_levels(small_config, small_dataset):
    allowed = set(small_config.rating_levels)
    assert set(np.unique(small_dataset.ratings).tolist()).issubset(allowed)


def test_total_ratings_close_to_target(small_config, small_dataset):
    assert small_dataset.n_ratings <= small_config.target_ratings
    assert small_dataset.n_ratings >= 0.8 * small_config.target_ratings


def test_popularity_distribution_is_heavy_tailed(small_dataset):
    popularity = np.sort(small_dataset.item_popularity())[::-1]
    top_decile = popularity[: max(1, popularity.size // 10)].sum()
    assert top_decile / popularity.sum() > 0.2


def test_popular_items_receive_higher_ratings_on_average(small_dataset):
    """The generator injects the 'missing not at random' popularity bias."""
    stats = PopularityStats.from_dataset(small_dataset)
    tail_mask = stats.long_tail_mask[small_dataset.item_indices]
    head_ratings = small_dataset.ratings[~tail_mask]
    tail_ratings = small_dataset.ratings[tail_mask]
    assert head_ratings.mean() > tail_ratings.mean()


def test_config_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        SyntheticConfig(n_users=1, n_items=10, target_ratings=5, min_user_ratings=1)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(n_users=10, n_items=10, target_ratings=5, min_user_ratings=1)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(n_users=10, n_items=10, target_ratings=1000, min_user_ratings=1)
    with pytest.raises(ConfigurationError):
        SyntheticConfig(n_users=10, n_items=5, target_ratings=60, min_user_ratings=8)


def test_config_scaled_shrinks_consistently(small_config):
    scaled = small_config.scaled(0.5)
    assert scaled.n_users < small_config.n_users
    assert scaled.n_items < small_config.n_items
    assert scaled.target_ratings <= scaled.n_users * scaled.n_items
    assert scaled.min_user_ratings == small_config.min_user_ratings


def test_config_scaled_rejects_non_positive_factor(small_config):
    with pytest.raises(ConfigurationError):
        small_config.scaled(0.0)


def test_dataset_profiles_cover_all_table2_datasets():
    assert set(DATASET_PROFILES) == {"ml100k", "ml1m", "ml10m", "mt200k", "netflix"}


def test_profiles_have_distinct_density_ordering():
    """The dense/sparse ordering of Table II is preserved by the surrogates."""
    densities = {}
    for key in ("ml100k", "mt200k"):
        config = DATASET_PROFILES[key]
        densities[key] = config.target_ratings / (config.n_users * config.n_items)
    assert densities["ml100k"] > 10 * densities["mt200k"]


def test_make_dataset_with_scale():
    data = make_dataset("ml100k", scale=0.25)
    full = DATASET_PROFILES["ml100k"]
    assert data.n_users < full.n_users
    assert data.n_ratings > 0


def test_make_dataset_rejects_unknown_profile():
    with pytest.raises(ConfigurationError):
        make_dataset("unknown-profile")
