"""Exception hierarchy contracts."""

from __future__ import annotations

import pytest

from repro import exceptions


def test_all_errors_derive_from_repro_error():
    for name in (
        "DataError",
        "DataFormatError",
        "SplitError",
        "NotFittedError",
        "ConfigurationError",
        "OptimizationError",
        "EvaluationError",
    ):
        assert issubclass(getattr(exceptions, name), exceptions.ReproError)


def test_data_format_and_split_errors_are_data_errors():
    assert issubclass(exceptions.DataFormatError, exceptions.DataError)
    assert issubclass(exceptions.SplitError, exceptions.DataError)


def test_repro_error_is_an_exception():
    assert issubclass(exceptions.ReproError, Exception)
    with pytest.raises(exceptions.ReproError):
        raise exceptions.ConfigurationError("bad configuration")
