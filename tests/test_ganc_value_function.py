"""Tests for the GANC user value function (Eq. III.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ganc.value_function import UserValueFunction, combined_item_scores


def test_combined_scores_interpolate_between_components():
    acc = np.array([1.0, 0.0, 0.5])
    cov = np.array([0.0, 1.0, 0.5])
    np.testing.assert_allclose(combined_item_scores(acc, cov, 0.0), acc)
    np.testing.assert_allclose(combined_item_scores(acc, cov, 1.0), cov)
    np.testing.assert_allclose(combined_item_scores(acc, cov, 0.5), [0.5, 0.5, 0.5])


def test_combined_scores_validation():
    with pytest.raises(ConfigurationError):
        combined_item_scores(np.array([1.0]), np.array([1.0]), 1.5)
    with pytest.raises(ConfigurationError):
        combined_item_scores(np.array([1.0, 2.0]), np.array([1.0]), 0.5)


def test_value_function_value_of_is_additive():
    vf = UserValueFunction(
        theta=0.3,
        accuracy_scores=np.array([0.9, 0.1, 0.5, 0.0]),
        coverage_scores=np.array([0.2, 1.0, 0.5, 0.3]),
    )
    v_single = vf.value_of(np.array([0])) + vf.value_of(np.array([1]))
    v_pair = vf.value_of(np.array([0, 1]))
    assert v_pair == pytest.approx(v_single)
    assert vf.value_of(np.array([], dtype=int)) == 0.0


def test_value_function_matches_formula():
    vf = UserValueFunction(
        theta=0.25,
        accuracy_scores=np.array([0.8, 0.2]),
        coverage_scores=np.array([0.1, 0.9]),
    )
    expected = 0.75 * (0.8 + 0.2) + 0.25 * (0.1 + 0.9)
    assert vf.value_of(np.array([0, 1])) == pytest.approx(expected)


def test_greedy_top_n_selects_best_combined_items():
    vf = UserValueFunction(
        theta=0.5,
        accuracy_scores=np.array([1.0, 0.0, 0.6, 0.2]),
        coverage_scores=np.array([0.0, 1.0, 0.6, 0.1]),
    )
    top = vf.greedy_top_n(2)
    # Items 0, 1 and 2 all have combined score around 0.5/0.6; item 2 wins (0.6)
    # and the tie between 0 and 1 resolves to the lower index.
    assert top[0] == 2
    assert top[1] in (0, 1)


def test_greedy_top_n_is_optimal_for_additive_scores():
    rng = np.random.default_rng(0)
    acc = rng.random(12)
    cov = rng.random(12)
    theta = 0.4
    vf = UserValueFunction(theta=theta, accuracy_scores=acc, coverage_scores=cov)
    greedy = vf.greedy_top_n(4)
    from itertools import combinations

    best = max(
        (vf.value_of(np.array(combo)) for combo in combinations(range(12), 4))
    )
    assert vf.value_of(greedy) == pytest.approx(best)


def test_greedy_top_n_respects_exclusions():
    vf = UserValueFunction(
        theta=0.0,
        accuracy_scores=np.array([1.0, 0.9, 0.8, 0.7]),
        coverage_scores=np.zeros(4),
    )
    top = vf.greedy_top_n(2, exclude=np.array([0, 1]))
    assert set(top.tolist()) == {2, 3}


def test_greedy_top_n_with_all_items_excluded_returns_empty():
    vf = UserValueFunction(
        theta=0.0,
        accuracy_scores=np.array([1.0, 0.5]),
        coverage_scores=np.zeros(2),
    )
    assert vf.greedy_top_n(2, exclude=np.array([0, 1])).size == 0


def test_value_function_validation():
    with pytest.raises(ConfigurationError):
        UserValueFunction(theta=1.5, accuracy_scores=np.zeros(2), coverage_scores=np.zeros(2))
    with pytest.raises(ConfigurationError):
        UserValueFunction(theta=0.5, accuracy_scores=np.zeros(2), coverage_scores=np.zeros(3))
    vf = UserValueFunction(theta=0.5, accuracy_scores=np.zeros(2), coverage_scores=np.zeros(2))
    with pytest.raises(ConfigurationError):
        vf.greedy_top_n(0)
