"""Tests for the recommender registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.recommenders import (
    CofiRank,
    ItemKNN,
    MostPopular,
    PureSVD,
    RandomRecommender,
    RSVD,
    RECOMMENDER_REGISTRY,
    make_recommender,
)


@pytest.mark.parametrize(
    "name, expected_type",
    [
        ("pop", MostPopular),
        ("rand", RandomRecommender),
        ("rsvd", RSVD),
        ("rsvdn", RSVD),
        ("psvd10", PureSVD),
        ("psvd100", PureSVD),
        ("cofir100", CofiRank),
        ("itemknn", ItemKNN),
    ],
)
def test_registry_builds_expected_types(name, expected_type):
    assert isinstance(make_recommender(name), expected_type)


def test_registry_is_case_insensitive():
    assert isinstance(make_recommender("PSVD100"), PureSVD)
    assert isinstance(make_recommender(" Pop "), MostPopular)


def test_registry_configures_variants():
    assert make_recommender("psvd10").n_factors == 10
    assert make_recommender("psvd100").n_factors == 100
    assert make_recommender("rsvdn").non_negative is True
    assert make_recommender("rsvd").non_negative is False


def test_registry_forwards_kwargs():
    model = make_recommender("rsvd", n_factors=7, n_epochs=3)
    assert model.n_factors == 7
    assert model.n_epochs == 3


def test_registry_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        make_recommender("definitely-not-a-model")


def test_registry_exposes_all_names():
    assert {"pop", "rand", "rsvd", "psvd10", "psvd100", "cofir100"} <= set(RECOMMENDER_REGISTRY)


def test_unknown_hyperparameters_are_rejected():
    """Typos like n_factor= must fail loudly instead of being swallowed."""
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        make_recommender("rsvd", n_factor=7)
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        make_recommender("psvd100", factors=10)


def test_scale_hint_scales_svd_family_ranks():
    assert make_recommender("psvd100", scale_hint=0.2).n_factors == 20
    assert make_recommender("psvd10", scale_hint=0.01).n_factors == 3
    assert make_recommender("cofir100", scale_hint=0.01).n_factors == 5
