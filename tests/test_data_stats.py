"""Tests for the descriptive dataset statistics module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stats import (
    DistributionSummary,
    average_rated_popularity_per_user,
    popularity_concentration,
    summarize_dataset,
)
from repro.exceptions import ConfigurationError


def test_distribution_summary_basic():
    summary = DistributionSummary.from_values(np.array([1, 2, 3, 4, 5]))
    assert summary.minimum == 1 and summary.maximum == 5
    assert summary.median == 3
    assert summary.mean == pytest.approx(3.0)


def test_distribution_summary_rejects_empty():
    with pytest.raises(ConfigurationError):
        DistributionSummary.from_values(np.array([]))


def test_summarize_dataset_core_fields(tiny_dataset):
    summary = summarize_dataset(tiny_dataset)
    assert summary.n_users == 4
    assert summary.n_items == 6
    assert summary.n_ratings == 12
    assert summary.density == pytest.approx(0.5)
    assert 0.0 <= summary.long_tail_share <= 1.0
    assert summary.mean_rating == pytest.approx(tiny_dataset.mean_rating())


def test_summarize_dataset_infrequent_share(tiny_dataset):
    # Every user in the tiny dataset has 3 ratings -> all are "infrequent" at
    # the default threshold of 10, none at a threshold of 2.
    assert summarize_dataset(tiny_dataset).infrequent_user_share == pytest.approx(1.0)
    assert summarize_dataset(tiny_dataset, infrequent_threshold=2).infrequent_user_share == 0.0


def test_summarize_dataset_rating_histogram(tiny_dataset):
    summary = summarize_dataset(tiny_dataset)
    assert sum(summary.rating_values.values()) == tiny_dataset.n_ratings
    assert summary.rating_values[5.0] == 4


def test_summarize_dataset_rejects_bad_threshold(tiny_dataset):
    with pytest.raises(ConfigurationError):
        summarize_dataset(tiny_dataset, infrequent_threshold=0)


def test_summary_as_rows_is_renderable(small_dataset):
    rows = summarize_dataset(small_dataset).as_rows()
    assert len(rows) >= 10
    assert all(len(row) == 2 for row in rows)


def test_average_rated_popularity_matches_manual(tiny_dataset):
    values = average_rated_popularity_per_user(tiny_dataset)
    popularity = tiny_dataset.item_popularity()
    expected_user0 = popularity[[0, 1, 2]].mean()
    assert values[0] == pytest.approx(expected_user0)
    # The explorer (user 3) rated the blockbuster plus two singletons.
    assert values[3] == pytest.approx(popularity[[0, 4, 5]].mean())
    assert values[3] < values[0]


def test_popularity_concentration_monotone_in_fraction(small_dataset):
    top10 = popularity_concentration(small_dataset, top_fraction=0.1)
    top50 = popularity_concentration(small_dataset, top_fraction=0.5)
    assert 0.0 < top10 <= top50 <= 1.0
    # With popularity bias, the top decile holds clearly more than a tenth of
    # the rating mass.
    assert top10 > 0.1


def test_popularity_concentration_validation(small_dataset):
    with pytest.raises(ConfigurationError):
        popularity_concentration(small_dataset, top_fraction=0.0)
    with pytest.raises(ConfigurationError):
        popularity_concentration(small_dataset, top_fraction=1.5)
