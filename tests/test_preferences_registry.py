"""Tests for the preference model registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.preferences import (
    ActivityPreference,
    ConstantPreference,
    GeneralizedPreference,
    NormalizedLongTailPreference,
    RandomPreference,
    TfidfPreference,
    make_preference_model,
)


@pytest.mark.parametrize(
    "name, expected_type",
    [
        ("thetaA", ActivityPreference),
        ("thetaN", NormalizedLongTailPreference),
        ("thetaT", TfidfPreference),
        ("thetaG", GeneralizedPreference),
        ("thetaR", RandomPreference),
        ("thetaC", ConstantPreference),
        ("activity", ActivityPreference),
        ("generalized", GeneralizedPreference),
    ],
)
def test_registry_builds_expected_types(name, expected_type):
    assert isinstance(make_preference_model(name), expected_type)


def test_registry_accepts_unicode_theta():
    assert isinstance(make_preference_model("θG"), GeneralizedPreference)


def test_registry_forwards_kwargs():
    model = make_preference_model("thetaC", value=0.8)
    assert model.value == pytest.approx(0.8)
    generalized = make_preference_model("thetaG", max_iterations=7)
    assert generalized.max_iterations == 7


def test_registry_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        make_preference_model("thetaX")


def test_unknown_hyperparameters_are_rejected():
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        make_preference_model("thetaG", max_iteration=7)
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        make_preference_model("thetaC", values=0.8)


def test_seed_is_dropped_for_seedless_models():
    assert isinstance(make_preference_model("thetaT", seed=3), TfidfPreference)
