"""Equivalence tests for the incremental sequential assignment engine.

The engine must be bit-for-bit indistinguishable from the historical
per-user loop (fresh coverage recompute + ``combined_item_scores`` +
canonical ``top_n_indices``) for every input shape the optimizers can feed
it — including heavy exact-tie score distributions, exclusion masks, θ at
the endpoints, and non-finite accuracy rows (which must route to the
canonical fallback, not crash or drift).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.state import CoverageState
from repro.exceptions import ConfigurationError
from repro.ganc.incremental import (
    SequentialAssigner,
    _select_top_n,
    iter_order_chunks,
    supports_incremental,
)
from repro.ganc.value_function import combined_item_scores
from repro.utils.topn import top_n_indices

FAST = settings(max_examples=60, deadline=None)

N_ITEMS = 12


def _fit_coverage(n_items: int) -> DynamicCoverage:
    coverage = DynamicCoverage()
    coverage._state = CoverageState.zeros(n_items)
    coverage._n_items = n_items
    return coverage


def reference_sequential(order, theta, acc, exclusions, n, n_users, n_items):
    """The historical per-user loop, operation for operation."""
    coverage = _fit_coverage(n_items)
    out = np.full((n_users, n), -1, dtype=np.int64)
    for user in order:
        values = combined_item_scores(
            acc[user], coverage.scores(user), float(theta[user])
        )
        exclude = exclusions[user]
        if exclude.size:
            values = values.copy()
            values[exclude] = -np.inf
        items = top_n_indices(values, n)
        out[user, : items.size] = items
        coverage.update(items)
    return out


def run_engine(order, theta, acc, exclusions, n, n_users, n_items, block_size=None):
    coverage = _fit_coverage(n_items)
    out = np.full((n_users, n), -1, dtype=np.int64)

    def accuracy_matrix(users):
        return acc[users]

    def exclusion_pairs(users):
        per_user = [exclusions[int(u)] for u in users]
        counts = np.array([e.size for e in per_user], dtype=np.int64)
        if counts.sum() == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.repeat(np.arange(len(per_user), dtype=np.int64), counts)
        return rows, np.concatenate(per_user)

    assigner = SequentialAssigner(coverage, n, block_size=block_size)
    assigner.run(out, order, theta, accuracy_matrix, exclusion_pairs)
    return out, coverage


# --------------------------------------------------------------------------- #
# Fuzzed engine-vs-reference equivalence
# --------------------------------------------------------------------------- #
@FAST
@given(data=st.data())
def test_engine_matches_per_user_reference(data):
    n_users = data.draw(st.integers(1, 10))
    n = data.draw(st.integers(1, 6))
    # Quantized scores make exact ties the norm — the regime that exercises
    # the boundary-tie handling of the fast selection.
    acc = np.asarray(
        data.draw(
            st.lists(
                st.lists(st.integers(0, 3).map(lambda v: v / 3.0),
                         min_size=N_ITEMS, max_size=N_ITEMS),
                min_size=n_users, max_size=n_users,
            )
        )
    )
    theta = np.asarray(
        data.draw(st.lists(st.sampled_from([0.0, 0.25, 0.5, 1.0]),
                           min_size=n_users, max_size=n_users))
    )
    exclusions = {
        user: np.unique(
            np.asarray(
                data.draw(st.lists(st.integers(0, N_ITEMS - 1), max_size=N_ITEMS)),
                dtype=np.int64,
            )
        )
        for user in range(n_users)
    }
    order = data.draw(st.permutations(list(range(n_users))))
    block_size = data.draw(st.sampled_from([None, 1, 2, 3, 64]))

    expected = reference_sequential(
        order, theta, acc, exclusions, n, n_users, N_ITEMS
    )
    got, coverage = run_engine(
        order, theta, acc, exclusions, n, n_users, N_ITEMS, block_size
    )
    np.testing.assert_array_equal(got, expected)
    # The coverage state must equal a replay of the reference assignments.
    counts = np.zeros(N_ITEMS)
    for user in range(n_users):
        items = expected[user][expected[user] >= 0]
        np.add.at(counts, items, 1.0)
    np.testing.assert_array_equal(coverage.frequencies, counts)


def test_engine_handles_non_finite_accuracy_rows():
    """NaN/inf accuracy rows must take the canonical path, identically."""
    n_users, n = 4, 3
    rng = np.random.default_rng(0)
    acc = rng.random((n_users, N_ITEMS))
    acc[1, 0] = np.nan
    acc[2, 5] = np.inf
    theta = rng.random(n_users)
    exclusions = {u: np.empty(0, dtype=np.int64) for u in range(n_users)}
    order = list(range(n_users))
    expected = reference_sequential(order, theta, acc, exclusions, n, n_users, N_ITEMS)
    got, _ = run_engine(order, theta, acc, exclusions, n, n_users, N_ITEMS)
    np.testing.assert_array_equal(got, expected)


def test_engine_handles_n_larger_than_item_count():
    n_users, n = 3, N_ITEMS + 4
    rng = np.random.default_rng(1)
    acc = rng.random((n_users, N_ITEMS))
    theta = rng.random(n_users)
    exclusions = {u: np.array([0, 1], dtype=np.int64) for u in range(n_users)}
    order = list(range(n_users))
    expected = reference_sequential(order, theta, acc, exclusions, n, n_users, N_ITEMS)
    got, _ = run_engine(order, theta, acc, exclusions, n, n_users, N_ITEMS)
    np.testing.assert_array_equal(got, expected)


def test_engine_rejects_bad_theta_with_canonical_message():
    n_users = 2
    acc = np.zeros((n_users, N_ITEMS))
    exclusions = {u: np.empty(0, dtype=np.int64) for u in range(n_users)}
    with pytest.raises(ConfigurationError, match=r"theta must be in \[0, 1\]"):
        run_engine([0, 1], np.array([0.5, 1.5]), acc, exclusions, 2, n_users, N_ITEMS)


def test_engine_rejects_misshapen_accuracy_block():
    coverage = _fit_coverage(N_ITEMS)
    out = np.full((2, 2), -1, dtype=np.int64)
    with pytest.raises(ConfigurationError, match="accuracy block"):
        SequentialAssigner(coverage, 2).run(
            out,
            [0, 1],
            np.array([0.5, 0.5]),
            lambda users: np.zeros((users.size, N_ITEMS + 1)),
            lambda users: (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
        )


def test_assigner_requires_stock_dynamic_coverage():
    class CustomDynamic(DynamicCoverage):
        pass

    custom = CustomDynamic()
    custom._state = CoverageState.zeros(N_ITEMS)
    custom._n_items = N_ITEMS
    assert not supports_incremental(custom)
    with pytest.raises(ConfigurationError):
        SequentialAssigner(custom, 2)


# --------------------------------------------------------------------------- #
# The fast selection primitive
# --------------------------------------------------------------------------- #
@FAST
@given(data=st.data())
def test_fast_select_matches_canonical_top_n(data):
    size = data.draw(st.integers(2, 30))
    n = data.draw(st.integers(1, size - 1))
    # Finite quantized values plus -inf exclusion masks (the only non-finite
    # value the engine ever feeds the selection).
    values = np.asarray(
        data.draw(
            st.lists(
                st.one_of(st.integers(-2, 2).map(float), st.just(-np.inf)),
                min_size=size, max_size=size,
            )
        )
    )
    work = -values
    got = _select_top_n(work, n)
    expected = top_n_indices(values, n)
    if got is None:
        # Declined rows (fewer than n selectable) route to the canonical
        # implementation in the engine, so no equivalence obligation here.
        assert np.count_nonzero(np.isfinite(values)) < n
    else:
        np.testing.assert_array_equal(got, expected)


def test_iter_order_chunks_preserves_order():
    chunks = list(iter_order_chunks([5, 3, 8, 1, 2], 2))
    assert [c.tolist() for c in chunks] == [[5, 3], [8, 1], [2]]
    with pytest.raises(ConfigurationError):
        list(iter_order_chunks([1], 0))
