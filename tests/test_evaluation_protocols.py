"""Tests for the test ranking protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.protocols import (
    AllUnratedItemsProtocol,
    RatedTestItemsProtocol,
    make_protocol,
)
from repro.exceptions import ConfigurationError
from repro.metrics.report import evaluate_top_n
from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender


def test_make_protocol_names():
    assert isinstance(make_protocol("all_unrated_items"), AllUnratedItemsProtocol)
    assert isinstance(make_protocol("rated_test_items"), RatedTestItemsProtocol)
    assert isinstance(make_protocol("all"), AllUnratedItemsProtocol)
    with pytest.raises(ConfigurationError):
        make_protocol("something-else")


def test_all_unrated_protocol_excludes_train_items(small_split):
    model = MostPopular().fit(small_split.train)
    recs = AllUnratedItemsProtocol().top_n(model, small_split.train, small_split.test, 5)
    for user, items in recs.items():
        seen = set(small_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(items.tolist()))


def test_rated_test_protocol_only_ranks_test_items(small_split):
    model = MostPopular().fit(small_split.train)
    recs = RatedTestItemsProtocol().top_n(model, small_split.train, small_split.test, 5)
    for user, items in recs.items():
        test_items = set(small_split.test.user_items(user).tolist())
        assert set(items.tolist()).issubset(test_items)
        assert items.size <= 5


def test_rated_test_protocol_orders_by_model_score(small_split):
    model = MostPopular().fit(small_split.train)
    recs = RatedTestItemsProtocol().top_n(model, small_split.train, small_split.test, 3)
    for user in range(0, small_split.train.n_users, 9):
        items = recs[user]
        if items.size < 2:
            continue
        scores = model.predict_scores(user, items)
        assert np.all(np.diff(scores) <= 1e-9)


def test_rated_test_protocol_handles_users_without_test_items(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    # Use the train set as "test": every user has items, then empty test user.
    recs = RatedTestItemsProtocol().top_n(model, tiny_dataset, tiny_dataset, 2)
    assert set(recs) == set(range(tiny_dataset.n_users))


def test_rated_protocol_inflates_accuracy_even_for_random(small_split):
    """The appendix's bias argument: random suggestions look accurate when the
    candidate pool is restricted to the user's own test items."""
    model = RandomRecommender(seed=0).fit(small_split.train)
    all_unrated = AllUnratedItemsProtocol().top_n(model, small_split.train, small_split.test, 5)
    rated_only = RatedTestItemsProtocol().top_n(model, small_split.train, small_split.test, 5)
    report_all = evaluate_top_n(all_unrated, small_split.train, small_split.test, 5, algorithm="rand")
    report_rated = evaluate_top_n(rated_only, small_split.train, small_split.test, 5, algorithm="rand")
    assert report_rated.precision >= report_all.precision
    assert report_rated.recall >= report_all.recall
