"""Tests for the shared Recommender interface and FittedTopN container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.recommenders.base import FittedTopN
from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender


def test_unfitted_recommender_raises(tiny_dataset):
    model = MostPopular()
    with pytest.raises(NotFittedError):
        model.recommend(0, 3)
    with pytest.raises(NotFittedError):
        model.score_all_items(0)
    assert not model.is_fitted


def test_fit_returns_self(tiny_dataset):
    model = MostPopular()
    assert model.fit(tiny_dataset) is model
    assert model.is_fitted
    assert model.train_data is tiny_dataset


def test_recommend_excludes_train_items(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    for user in range(tiny_dataset.n_users):
        recs = model.recommend(user, 3)
        seen = set(tiny_dataset.user_items(user).tolist())
        assert seen.isdisjoint(set(recs.tolist()))


def test_recommend_respects_n(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    assert model.recommend(0, 2).size == 2
    # User 0 has rated 3 of 6 items, so at most 3 candidates remain.
    assert model.recommend(0, 10).size == 3


def test_recommend_rejects_bad_n(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    with pytest.raises(ConfigurationError):
        model.recommend(0, 0)


def test_recommend_with_custom_exclusions(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    recs = model.recommend(0, 6, exclude_items=np.array([], dtype=np.int64))
    assert recs.size == 6  # nothing excluded


def test_recommend_all_shape_and_content(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    top = model.recommend_all(2)
    assert top.items.shape == (4, 2)
    assert top.n_users == 4
    assert top.n == 2
    for user in range(4):
        row = top.for_user(user)
        assert row.size == 2
        assert len(set(row.tolist())) == row.size


def test_recommendations_have_no_duplicates(small_split):
    model = RandomRecommender(seed=0).fit(small_split.train)
    top = model.recommend_all(10)
    for user in range(top.n_users):
        row = top.for_user(user)
        assert len(set(row.tolist())) == row.size


def test_unit_scores_are_in_unit_interval(tiny_dataset):
    model = RandomRecommender(seed=0).fit(tiny_dataset)
    scores = model.unit_scores(0, 3)
    assert scores.shape == (tiny_dataset.n_items,)
    assert scores.min() >= 0.0 and scores.max() <= 1.0


def test_fitted_topn_as_dict_drops_padding():
    top = FittedTopN(items=np.array([[1, 2, -1], [3, -1, -1]]))
    mapping = top.as_dict()
    np.testing.assert_array_equal(mapping[0], [1, 2])
    np.testing.assert_array_equal(mapping[1], [3])


def test_fitted_topn_rejects_1d_array():
    with pytest.raises(ConfigurationError):
        FittedTopN(items=np.array([1, 2, 3]))
