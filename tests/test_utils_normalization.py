"""Tests for normalization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.normalization import clip_unit_interval, min_max_normalize, normalize_rows


def test_min_max_normalize_maps_to_unit_interval():
    out = min_max_normalize(np.array([2.0, 4.0, 6.0]))
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0])


def test_min_max_normalize_constant_vector_is_zero():
    out = min_max_normalize(np.array([3.0, 3.0, 3.0]))
    np.testing.assert_allclose(out, [0.0, 0.0, 0.0])


def test_min_max_normalize_empty_vector():
    assert min_max_normalize(np.array([])).size == 0


def test_min_max_normalize_does_not_mutate_input():
    arr = np.array([1.0, 2.0, 3.0])
    min_max_normalize(arr)
    np.testing.assert_allclose(arr, [1.0, 2.0, 3.0])


def test_min_max_normalize_handles_negative_values():
    out = min_max_normalize(np.array([-2.0, 0.0, 2.0]))
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0])


def test_normalize_rows_each_row_spans_unit_interval():
    matrix = np.array([[1.0, 2.0, 3.0], [10.0, 10.0, 20.0]])
    out = normalize_rows(matrix)
    np.testing.assert_allclose(out[0], [0.0, 0.5, 1.0])
    np.testing.assert_allclose(out[1], [0.0, 0.0, 1.0])


def test_normalize_rows_constant_row_becomes_zero():
    out = normalize_rows(np.array([[5.0, 5.0, 5.0]]))
    np.testing.assert_allclose(out, [[0.0, 0.0, 0.0]])


def test_normalize_rows_rejects_1d_input():
    with pytest.raises(ValueError):
        normalize_rows(np.array([1.0, 2.0]))


def test_clip_unit_interval_bounds_values():
    out = clip_unit_interval(np.array([-0.5, 0.25, 1.5]))
    np.testing.assert_allclose(out, [0.0, 0.25, 1.0])
