"""Tests for declarative pipeline specs (repro.pipeline.spec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
    ganc_spec,
)


def _full_spec() -> PipelineSpec:
    return PipelineSpec(
        dataset=DatasetSpec(key="ml100k", scale=0.2, seed=None),
        recommender=ComponentSpec("psvd100", params={"n_factors": 20}),
        preference=ComponentSpec("thetaG"),
        coverage=ComponentSpec("rand", params={"seed": 5}),
        ganc=GANCSpec(sample_size=40, optimizer="oslg", theta_order="increasing"),
        evaluation=EvaluationSpec(n=5, block_size=16),
        seed=0,
    )


# --------------------------------------------------------------------------- #
# Round-trips
# --------------------------------------------------------------------------- #
def test_config_round_trip_is_identity():
    spec = _full_spec()
    assert PipelineSpec.from_config(spec.to_config()) == spec


def test_json_round_trip_is_identity():
    spec = _full_spec()
    assert PipelineSpec.from_json(spec.to_json()) == spec


def test_json_file_round_trip(tmp_path):
    spec = _full_spec()
    path = spec.to_json_file(tmp_path / "spec.json")
    assert PipelineSpec.from_json_file(path) == spec


def test_bare_recommender_spec_round_trips():
    spec = PipelineSpec(recommender=ComponentSpec("pop"), dataset=DatasetSpec(key="ml1m"))
    restored = PipelineSpec.from_config(spec.to_config())
    assert restored == spec
    assert not restored.is_ganc


def test_defaults_fill_missing_sections():
    spec = PipelineSpec.from_config({"recommender": {"name": "pop"}})
    assert spec.dataset == DatasetSpec()
    assert spec.ganc == GANCSpec()
    assert spec.evaluation == EvaluationSpec()
    assert spec.seed == 0


def test_component_spec_accepts_bare_string():
    spec = PipelineSpec.from_config(
        {"recommender": "pop", "preference": "thetaG", "coverage": "dyn"}
    )
    assert spec.recommender == ComponentSpec("pop")
    assert spec.is_ganc


def test_round_trip_reproduces_identical_recommendations(small_split):
    spec = ganc_spec(
        dataset="ml100k", arec="psvd10", theta="thetaN", coverage="dyn",
        n=5, sample_size=20, optimizer="oslg", scale=0.2, seed=0,
    )
    original = Pipeline(spec).fit(small_split).recommend_all()
    restored_spec = PipelineSpec.from_json(spec.to_json())
    restored = Pipeline(restored_spec).fit(small_split).recommend_all()
    assert np.array_equal(original.items, restored.items)


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
def test_unknown_top_level_key_rejected():
    with pytest.raises(ConfigurationError, match="unknown key"):
        PipelineSpec.from_config({"recommender": {"name": "pop"}, "recomender": {}})


def test_unknown_section_key_rejected():
    with pytest.raises(ConfigurationError, match="unknown key"):
        PipelineSpec.from_config(
            {"recommender": {"name": "pop"}, "ganc": {"sample_sizes": 3}}
        )


def test_missing_recommender_rejected():
    with pytest.raises(ConfigurationError, match="recommender"):
        PipelineSpec.from_config({"dataset": {"key": "ml100k"}})


def test_preference_requires_coverage_and_vice_versa():
    with pytest.raises(ConfigurationError, match="together"):
        PipelineSpec(recommender=ComponentSpec("pop"), preference=ComponentSpec("thetaG"))
    with pytest.raises(ConfigurationError, match="together"):
        PipelineSpec(recommender=ComponentSpec("pop"), coverage=ComponentSpec("dyn"))


def test_invalid_section_values_rejected():
    with pytest.raises(ConfigurationError):
        GANCSpec(sample_size=0)
    with pytest.raises(ConfigurationError):
        GANCSpec(optimizer="newton")
    with pytest.raises(ConfigurationError):
        GANCSpec(theta_order="sideways")
    with pytest.raises(ConfigurationError):
        EvaluationSpec(n=0)
    with pytest.raises(ConfigurationError):
        DatasetSpec(scale=0.0)
    with pytest.raises(ConfigurationError):
        ComponentSpec("")


def test_invalid_json_rejected():
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        PipelineSpec.from_json("{not json")


def test_section_seeds_inherit_spec_seed():
    spec = _full_spec()
    assert spec.resolved_seed(spec.ganc.seed) == 0
    assert spec.resolved_seed(7) == 7


# --------------------------------------------------------------------------- #
# GANC bandwidth field
# --------------------------------------------------------------------------- #
def test_ganc_spec_bandwidth_round_trips():
    for bandwidth in ("scott", 0.25):
        spec = GANCSpec(bandwidth=bandwidth)
        rebuilt = GANCSpec.from_config(spec.to_config())
        assert rebuilt.bandwidth == bandwidth


def test_ganc_spec_rejects_bad_bandwidth():
    with pytest.raises(ConfigurationError, match="bandwidth"):
        GANCSpec(bandwidth="silvermann")
    with pytest.raises(ConfigurationError, match="bandwidth"):
        GANCSpec(bandwidth=-1.0)


def test_ganc_spec_without_bandwidth_key_defaults():
    """Spec files written before the field existed still load."""
    spec = GANCSpec.from_config({"sample_size": 10})
    assert spec.bandwidth == "silverman"


def test_full_spec_json_round_trip_keeps_bandwidth():
    spec = _full_spec()
    spec = PipelineSpec.from_json(spec.to_json())
    assert spec.ganc.bandwidth == "silverman"
