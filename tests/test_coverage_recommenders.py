"""Tests for the Rand / Stat / Dyn coverage recommenders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage import (
    COVERAGE_REGISTRY,
    DynamicCoverage,
    RandomCoverage,
    StaticCoverage,
    make_coverage,
)
from repro.exceptions import ConfigurationError, NotFittedError


def test_unfitted_coverage_raises():
    with pytest.raises(NotFittedError):
        _ = StaticCoverage().n_items


def test_random_coverage_scores_in_unit_interval(tiny_dataset):
    cov = RandomCoverage(seed=0).fit(tiny_dataset)
    scores = cov.scores(0)
    assert scores.shape == (tiny_dataset.n_items,)
    assert scores.min() >= 0.0 and scores.max() <= 1.0


def test_random_coverage_is_deterministic_per_seed(tiny_dataset):
    a = RandomCoverage(seed=1).fit(tiny_dataset).scores(2)
    b = RandomCoverage(seed=1).fit(tiny_dataset).scores(2)
    np.testing.assert_allclose(a, b)


def test_random_coverage_differs_between_users(tiny_dataset):
    cov = RandomCoverage(seed=0).fit(tiny_dataset)
    assert not np.allclose(cov.scores(0), cov.scores(1))


def test_random_coverage_is_not_dynamic(tiny_dataset):
    cov = RandomCoverage(seed=0).fit(tiny_dataset)
    assert not cov.is_dynamic
    before = cov.scores(0).copy()
    cov.update(np.array([0, 1]))
    np.testing.assert_allclose(cov.scores(0), before)


def test_static_coverage_formula(tiny_dataset):
    cov = StaticCoverage().fit(tiny_dataset)
    popularity = tiny_dataset.item_popularity()
    expected = 1.0 / np.sqrt(popularity + 1.0)
    np.testing.assert_allclose(cov.scores(0), expected)
    np.testing.assert_allclose(cov.scores(3), expected)  # same for every user


def test_static_coverage_prefers_unpopular_items(tiny_dataset):
    scores = StaticCoverage().fit(tiny_dataset).scores(0)
    assert scores[4] > scores[0]  # single-rating item beats the blockbuster


def test_dynamic_coverage_initial_scores_are_one(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    np.testing.assert_allclose(cov.scores(0), 1.0)


def test_dynamic_coverage_update_reduces_scores(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    cov.update(np.array([2, 2, 5]))
    scores = cov.scores(0)
    assert scores[2] == pytest.approx(1.0 / np.sqrt(3.0))
    assert scores[5] == pytest.approx(1.0 / np.sqrt(2.0))
    assert scores[0] == pytest.approx(1.0)


def test_dynamic_coverage_gain_has_diminishing_returns():
    gains = [DynamicCoverage.gain(f) for f in range(5)]
    assert all(a > b for a, b in zip(gains, gains[1:]))
    assert gains[0] == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        DynamicCoverage.gain(-1)


def test_dynamic_coverage_reset(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    cov.update(np.array([0, 1, 2]))
    cov.reset()
    np.testing.assert_allclose(cov.frequencies, 0.0)
    np.testing.assert_allclose(cov.scores(0), 1.0)


def test_dynamic_coverage_snapshot_roundtrip(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    cov.update(np.array([0, 0, 3]))
    snapshot = cov.frequencies
    cov.reset()
    cov.set_frequencies(snapshot)
    np.testing.assert_allclose(cov.frequencies, snapshot)


def test_dynamic_coverage_set_frequencies_validation(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    with pytest.raises(ConfigurationError):
        cov.set_frequencies(np.zeros(3))
    with pytest.raises(ConfigurationError):
        cov.set_frequencies(-np.ones(tiny_dataset.n_items))


def test_dynamic_coverage_is_dynamic(tiny_dataset):
    assert DynamicCoverage().fit(tiny_dataset).is_dynamic


def test_frequencies_returns_a_copy(tiny_dataset):
    cov = DynamicCoverage().fit(tiny_dataset)
    freq = cov.frequencies
    freq[0] = 100.0
    assert cov.frequencies[0] == 0.0


@pytest.mark.parametrize(
    "name, expected_type",
    [
        ("rand", RandomCoverage),
        ("random", RandomCoverage),
        ("stat", StaticCoverage),
        ("dyn", DynamicCoverage),
        ("Dynamic", DynamicCoverage),
    ],
)
def test_coverage_registry(name, expected_type):
    assert isinstance(make_coverage(name), expected_type)


def test_coverage_registry_rejects_unknown():
    with pytest.raises(ConfigurationError):
        make_coverage("nope")
    assert {"rand", "stat", "dyn"} <= set(COVERAGE_REGISTRY)


def test_registry_rejects_unknown_hyperparameters():
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        make_coverage("rand", sead=3)


def test_registry_drops_seed_for_seedless_models():
    assert isinstance(make_coverage("dyn", seed=3), DynamicCoverage)
    assert isinstance(make_coverage("stat", seed=3), StaticCoverage)
