"""Tests of the sharded parallel execution backend (:mod:`repro.parallel`).

The load-bearing property is *equivalence*: every backend (serial, thread,
process — including spawn-started workers that rehydrate fitted state from
handles) must produce byte-identical outputs for every registered
recommender, both GANC optimizers, the evaluator and persisted pipelines,
for any block size and worker count.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.static import StaticCoverage
from repro.evaluation.evaluator import Evaluator
from repro.exceptions import ConfigurationError
from repro.ganc.framework import GANC, GANCConfig
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.parallel import (
    ComponentHandle,
    DatasetHandle,
    ExclusionPairsProvider,
    ProcessExecutor,
    RecommendBlockTask,
    SerialExecutor,
    ThreadExecutor,
    UnitScoresProvider,
    effective_n_jobs,
    get_executor,
    resolve_executor,
)
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    ExecutionSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
    ganc_spec,
)
from repro.preferences.generalized import GeneralizedPreference
from repro.recommenders.registry import make_recommender
from repro.registry import available
from repro.utils.rng import spawn_seed_sequences

N = 5

#: Worker configurations every equivalence test sweeps.  The process backend
#: uses fork where available (cheap) — one dedicated test exercises spawn,
#: which rebuilds workers from scratch and therefore proves handle
#: rehydration on every platform.
PARALLEL_VARIANTS = (
    ("thread", 3),
    ("process", 2),
)


def _executor(backend: str, n_jobs: int):
    return get_executor(backend, n_jobs)


# --------------------------------------------------------------------------- #
# Executor mechanics
# --------------------------------------------------------------------------- #
class _MarkerTask:
    """Returns (first user, size) so ordering mistakes are visible."""

    def __call__(self, users):
        return np.array([users[0], users.size], dtype=np.int64)


class _ExplodingTask:
    def __call__(self, users):
        raise RuntimeError(f"boom at {users[0]}")


class _SeededTask:
    needs_rng = True

    def __call__(self, users, rng):
        return rng.integers(0, 1_000_000, size=users.size)


def test_effective_n_jobs_resolves_minus_one_to_cpu_count():
    assert effective_n_jobs(-1) >= 1
    assert effective_n_jobs(4) == 4


@pytest.mark.parametrize("bad", [0, -2, 1.5, True, "4"])
def test_effective_n_jobs_rejects_non_positive_and_non_int(bad):
    with pytest.raises(ConfigurationError):
        effective_n_jobs(bad)


def test_get_executor_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        get_executor("gpu", 2)


def test_resolve_executor_explicit_instance_wins():
    executor = ThreadExecutor(2)
    assert resolve_executor(executor, 8, "process") is executor


def test_resolve_executor_defaults_to_serial():
    assert resolve_executor(None, None, None).backend == "serial"
    assert resolve_executor(None, 1, "process").backend == "serial"


def test_resolve_executor_builds_requested_backend():
    executor = resolve_executor(None, 3, "process")
    assert isinstance(executor, ProcessExecutor)
    assert executor.n_jobs == 3


def test_resolve_executor_rejects_non_executor():
    with pytest.raises(ConfigurationError):
        resolve_executor(object())


@pytest.mark.parametrize("backend,n_jobs", [("serial", 1), *PARALLEL_VARIANTS])
def test_map_blocks_preserves_block_order(backend, n_jobs):
    blocks = [np.arange(start, start + 3) for start in range(0, 30, 3)]
    results = _executor(backend, n_jobs).map_blocks(_MarkerTask(), blocks)
    assert [int(r[0]) for r in results] == [int(b[0]) for b in blocks]


@pytest.mark.parametrize("backend,n_jobs", [("serial", 1), *PARALLEL_VARIANTS])
def test_map_blocks_propagates_worker_exceptions(backend, n_jobs):
    blocks = [np.arange(3), np.arange(3, 6)]
    with pytest.raises(RuntimeError, match="boom"):
        _executor(backend, n_jobs).map_blocks(_ExplodingTask(), blocks)


@pytest.mark.parametrize("backend,n_jobs", PARALLEL_VARIANTS)
def test_seeded_tasks_draw_identical_streams_on_every_backend(backend, n_jobs):
    blocks = [np.arange(start, start + 4) for start in range(0, 20, 4)]
    serial = SerialExecutor().map_blocks(_SeededTask(), blocks, seed=123)
    parallel = _executor(backend, n_jobs).map_blocks(_SeededTask(), blocks, seed=123)
    for expected, got in zip(serial, parallel):
        np.testing.assert_array_equal(expected, got)


def test_spawn_seed_sequences_children_depend_only_on_seed_and_position():
    short = spawn_seed_sequences(7, 3)
    long = spawn_seed_sequences(7, 10)
    for left, right in zip(short, long):
        assert (
            np.random.default_rng(left).integers(0, 2**32, 8).tolist()
            == np.random.default_rng(right).integers(0, 2**32, 8).tolist()
        )
    # Different positions and different roots give different streams.
    draws = {
        tuple(np.random.default_rng(seq).integers(0, 2**32, 8).tolist())
        for seq in spawn_seed_sequences(7, 10) + spawn_seed_sequences(8, 10)
    }
    assert len(draws) == 20


def test_spawn_seed_sequences_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_seed_sequences(0, -1)


# --------------------------------------------------------------------------- #
# Handles
# --------------------------------------------------------------------------- #
def test_dataset_handle_round_trips_and_caches(small_split):
    handle = DatasetHandle.capture(small_split.train)
    restored = pickle.loads(pickle.dumps(handle))
    dataset = restored.restore()
    assert dataset.n_users == small_split.train.n_users
    assert dataset.n_items == small_split.train.n_items
    np.testing.assert_array_equal(dataset.ratings, small_split.train.ratings)
    assert restored.restore() is dataset  # process-level cache


def test_component_handle_rehydrates_byte_identical_scores(small_split):
    model = make_recommender("psvd10").fit(small_split.train)
    handle = pickle.loads(pickle.dumps(ComponentHandle.capture(model)))
    clone = handle.restore()
    assert clone is not model
    np.testing.assert_array_equal(clone.predict_matrix(), model.predict_matrix())
    np.testing.assert_array_equal(
        clone.recommend_all(N).items, model.recommend_all(N).items
    )


def test_component_handle_works_for_coverage_components(small_split):
    coverage = StaticCoverage().fit(small_split.train)
    handle = pickle.loads(pickle.dumps(ComponentHandle.capture(coverage)))
    clone = handle.restore()
    np.testing.assert_array_equal(clone.scores(0), coverage.scores(0))


def test_recommend_block_task_pickle_round_trip(small_split):
    model = make_recommender("itemknn").fit(small_split.train)
    task = RecommendBlockTask(model, N)
    users = np.arange(small_split.train.n_users)
    rehydrated = pickle.loads(pickle.dumps(task))
    np.testing.assert_array_equal(rehydrated(users), task(users))


def test_providers_share_one_dataset_handle_across_the_fan_out(small_split):
    """GANC ships the train data once, not once per provider."""
    model = make_recommender("pop").fit(small_split.train)
    shared = DatasetHandle.capture(small_split.train)
    scores = UnitScoresProvider(model, N, train_handle=shared)
    pairs = ExclusionPairsProvider(small_split.train, handle=shared)
    restored_scores, restored_pairs = pickle.loads(pickle.dumps((scores, pairs)))
    restored_scores(np.arange(4))
    restored_pairs(np.arange(4))
    assert restored_scores._component().train_data is restored_pairs._dataset()


def test_providers_pickle_round_trip(small_split):
    model = make_recommender("pop").fit(small_split.train)
    users = np.arange(0, small_split.train.n_users, 2)
    scores = pickle.loads(pickle.dumps(UnitScoresProvider(model, N)))
    np.testing.assert_array_equal(scores(users), model.unit_scores_batch(users, N))
    pairs = pickle.loads(pickle.dumps(ExclusionPairsProvider(small_split.train)))
    expected_rows, expected_cols = small_split.train.user_items_batch(users)
    rows, cols = pairs(users)
    np.testing.assert_array_equal(rows, expected_rows)
    np.testing.assert_array_equal(cols, expected_cols)


# --------------------------------------------------------------------------- #
# recommend_all equivalence: every registered recommender, every backend
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(available("recommender")))
def test_recommend_all_parallel_backends_match_serial(name, small_split):
    model = make_recommender(name, seed=0).fit(small_split.train)
    serial = model.recommend_all(N, block_size=7).items
    for backend, n_jobs in PARALLEL_VARIANTS:
        parallel = model.recommend_all(
            N, block_size=7, executor=_executor(backend, n_jobs)
        ).items
        np.testing.assert_array_equal(parallel, serial, err_msg=f"{name} via {backend}")


def test_recommend_all_n_jobs_shorthand_matches_serial(small_split):
    model = make_recommender("psvd10").fit(small_split.train)
    serial = model.recommend_all(N).items
    np.testing.assert_array_equal(model.recommend_all(N, n_jobs=3).items, serial)


def test_recommend_all_results_invariant_to_block_size(small_split):
    model = make_recommender("rsvd", n_epochs=2, seed=0).fit(small_split.train)
    reference = model.recommend_all(N).items
    for block_size in (1, 3, 16, 1000):
        for backend, n_jobs in PARALLEL_VARIANTS:
            got = model.recommend_all(
                N, block_size=block_size, executor=_executor(backend, n_jobs)
            ).items
            np.testing.assert_array_equal(got, reference)


def test_process_spawn_workers_rehydrate_from_handles(small_split):
    """The spawn start method proves workers rebuild state from the handle."""
    model = make_recommender("psvd10").fit(small_split.train)
    serial = model.recommend_all(N, block_size=16).items
    executor = ProcessExecutor(2, start_method="spawn")
    parallel = model.recommend_all(N, block_size=16, executor=executor).items
    np.testing.assert_array_equal(parallel, serial)


# --------------------------------------------------------------------------- #
# GANC equivalence: both optimizers, all coverage types
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("coverage_cls", [StaticCoverage, DynamicCoverage])
@pytest.mark.parametrize("optimizer", ["locally_greedy", "oslg"])
def test_ganc_parallel_backends_match_serial(coverage_cls, optimizer, medium_split):
    if optimizer == "oslg" and coverage_cls is StaticCoverage:
        pytest.skip("OSLG requires dynamic coverage")

    def build(n_jobs: int, backend: str) -> np.ndarray:
        model = GANC(
            make_recommender("psvd10"),
            GeneralizedPreference(),
            coverage_cls(),
            config=GANCConfig(
                sample_size=40, optimizer=optimizer, seed=0, block_size=13,
                n_jobs=n_jobs, backend=backend,
            ),
        )
        model.fit(medium_split.train)
        return model.recommend_all(N).items

    serial = build(1, "thread")
    for backend, n_jobs in PARALLEL_VARIANTS:
        np.testing.assert_array_equal(
            build(n_jobs, backend), serial, err_msg=f"{optimizer} via {backend}"
        )


def test_run_independent_executor_matches_sequential_run(small_split):
    coverage = StaticCoverage().fit(small_split.train)
    model = make_recommender("pop").fit(small_split.train)
    theta = GeneralizedPreference().estimate(small_split.train).theta
    optimizer = LocallyGreedyOptimizer(coverage, N)
    sequential = optimizer.run(
        theta,
        lambda u: model.unit_scores(u, N),
        small_split.train.user_items,
    ).items
    for backend, n_jobs in PARALLEL_VARIANTS:
        parallel = optimizer.run_independent(
            theta,
            UnitScoresProvider(model, N),
            ExclusionPairsProvider(small_split.train),
            block_size=9,
            executor=_executor(backend, n_jobs),
        ).items
        np.testing.assert_array_equal(parallel, sequential)


# --------------------------------------------------------------------------- #
# Evaluator
# --------------------------------------------------------------------------- #
def test_evaluator_parallel_backends_reproduce_serial_metrics(small_split):
    serial_run = Evaluator(small_split, n=N).evaluate_recommender(
        make_recommender("psvd10"), algorithm="psvd10"
    )
    for backend, n_jobs in PARALLEL_VARIANTS:
        run = Evaluator(
            small_split, n=N, block_size=11, n_jobs=n_jobs, backend=backend
        ).evaluate_recommender(make_recommender("psvd10"), algorithm="psvd10")
        assert run.report.as_dict() == serial_run.report.as_dict()
        for user, items in serial_run.recommendations.items():
            np.testing.assert_array_equal(run.recommendations[user], items)


def test_evaluator_validates_n_jobs_and_backend(small_split):
    with pytest.raises(ConfigurationError):
        Evaluator(small_split, n_jobs=0)
    with pytest.raises(ConfigurationError):
        Evaluator(small_split, n_jobs=2, backend="gpu")


def test_evaluate_pipeline_hands_executor_to_accepting_builders(small_split):
    captured = {}

    def builder(split, n, executor=None):
        captured["executor"] = executor
        model = make_recommender("pop").fit(split.train)
        return model.recommend_all(n, executor=executor)

    evaluator = Evaluator(small_split, n=N, n_jobs=2, backend="thread")
    run = evaluator.evaluate_pipeline(builder, algorithm="pop-parallel")
    assert isinstance(captured["executor"], ThreadExecutor)

    def plain_builder(split, n):
        model = make_recommender("pop").fit(split.train)
        return model.recommend_all(n)

    plain = Evaluator(small_split, n=N).evaluate_pipeline(plain_builder, algorithm="pop")
    assert run.report.as_dict() == plain.report.as_dict()


# --------------------------------------------------------------------------- #
# Pipeline: execution section, persistence under non-default settings
# --------------------------------------------------------------------------- #
def test_execution_spec_round_trips_and_validates():
    spec = ExecutionSpec(backend="process", n_jobs=4)
    assert ExecutionSpec.from_config(spec.to_config()) == spec
    assert ExecutionSpec.from_config({}) == ExecutionSpec()
    with pytest.raises(ConfigurationError):
        ExecutionSpec(backend="gpu")
    with pytest.raises(ConfigurationError):
        ExecutionSpec(n_jobs=0)
    with pytest.raises(ConfigurationError):
        ExecutionSpec.from_config({"n_jobs": "two"})
    with pytest.raises(ConfigurationError):
        ExecutionSpec.from_config({"workers": 2})


def test_pipeline_spec_round_trips_execution_section():
    spec = ganc_spec(
        dataset="ml100k", arec="pop", theta="thetaG",
        n_jobs=2, backend="process", scale=0.1,
    )
    assert spec.execution == ExecutionSpec(backend="process", n_jobs=2)
    rebuilt = PipelineSpec.from_json(spec.to_json())
    assert rebuilt == spec
    # Pre-execution-section configs (older spec files) still load.
    config = spec.to_config()
    del config["execution"]
    assert PipelineSpec.from_config(config).execution == ExecutionSpec()


def _parallel_spec(backend: str, n_jobs: int, block_size: int | None) -> PipelineSpec:
    return PipelineSpec(
        dataset=DatasetSpec(key="ml100k", scale=0.12),
        recommender=ComponentSpec("psvd10"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=25, optimizer="oslg", block_size=block_size),
        evaluation=EvaluationSpec(n=N, block_size=block_size),
        execution=ExecutionSpec(backend=backend, n_jobs=n_jobs),
        seed=0,
    )


def test_pipeline_execution_section_reproduces_serial_output():
    serial = Pipeline(_parallel_spec("thread", 1, None)).fit()
    reference = serial.recommend_all().items
    for backend, n_jobs in PARALLEL_VARIANTS:
        pipeline = Pipeline(_parallel_spec(backend, n_jobs, 17)).fit(serial.split)
        np.testing.assert_array_equal(pipeline.recommend_all().items, reference)


def test_pipeline_save_load_under_non_default_block_size_and_n_jobs(tmp_path):
    """A persisted pipeline must serve byte-identical top-N from worker processes."""
    pipeline = Pipeline(_parallel_spec("process", 2, 7)).fit()
    reference = pipeline.recommend_all().items

    saved = pipeline.save(tmp_path / "artifact")
    loaded = Pipeline.load(saved)
    assert loaded.spec.execution == ExecutionSpec(backend="process", n_jobs=2)
    assert loaded.spec.ganc.block_size == 7
    np.testing.assert_array_equal(loaded.recommend_all().items, reference)

    # The spawn start method serves the same bytes purely from rehydrated
    # worker state (nothing inherited from the parent's memory).
    spawn_served = loaded.recommender.recommend_all(
        N, block_size=7, executor=ProcessExecutor(2, start_method="spawn")
    ).items
    np.testing.assert_array_equal(
        spawn_served, loaded.recommender.recommend_all(N, block_size=7).items
    )


def test_pipeline_set_execution_propagates_to_fitted_model():
    pipeline = Pipeline(_parallel_spec("thread", 1, None)).fit()
    reference = pipeline.recommend_all().items
    pipeline.set_execution(ExecutionSpec(backend="process", n_jobs=2))
    assert pipeline.model is not None
    assert pipeline.model.config.n_jobs == 2
    assert pipeline.model.config.backend == "process"
    np.testing.assert_array_equal(pipeline.recommend_all().items, reference)
