"""Documentation-site integrity checks runnable without mkdocs installed.

CI builds the site with ``mkdocs build --strict`` (which fails on broken
nav entries and intra-doc links); these tests enforce the same invariants
with the stdlib + PyYAML so a broken docs change fails fast in the tier-1
suite too:

* every page listed in ``mkdocs.yml``'s nav exists under ``docs/``;
* every relative markdown link in ``docs/**/*.md`` (and the README's links
  into ``docs/``) resolves to a real file;
* every mkdocstrings ``::: module`` directive names an importable module;
* every docs page is reachable from the nav (no orphans).
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_FILE = REPO_ROOT / "mkdocs.yml"

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
_AUTODOC_PATTERN = re.compile(r"^:::\s+([\w.]+)\s*$", re.MULTILINE)


def _nav_pages(node) -> list[str]:
    """Flatten mkdocs nav (nested lists/dicts) into page paths."""
    pages: list[str] = []
    if isinstance(node, str):
        pages.append(node)
    elif isinstance(node, list):
        for child in node:
            pages.extend(_nav_pages(child))
    elif isinstance(node, dict):
        for child in node.values():
            pages.extend(_nav_pages(child))
    return pages


@pytest.fixture(scope="module")
def mkdocs_config() -> dict:
    """The parsed mkdocs.yml."""
    return yaml.safe_load(MKDOCS_FILE.read_text(encoding="utf-8"))


def _doc_pages() -> list[Path]:
    return sorted(DOCS_DIR.rglob("*.md"))


def test_docs_tree_exists():
    assert MKDOCS_FILE.exists()
    assert (DOCS_DIR / "index.md").exists()
    assert len(_doc_pages()) >= 6


def test_strict_mode_is_enabled(mkdocs_config):
    """CI relies on --strict; the config should agree so local builds match."""
    assert mkdocs_config.get("strict") is True


def test_every_nav_entry_resolves_to_a_page(mkdocs_config):
    for page in _nav_pages(mkdocs_config["nav"]):
        assert (DOCS_DIR / page).is_file(), f"mkdocs.yml nav lists missing page {page}"


def test_every_docs_page_is_in_the_nav(mkdocs_config):
    nav = set(_nav_pages(mkdocs_config["nav"]))
    for path in _doc_pages():
        relative = path.relative_to(DOCS_DIR).as_posix()
        assert relative in nav, f"docs/{relative} exists but is not linked from the nav"


def _relative_links(markdown: str):
    for match in _LINK_PATTERN.finditer(markdown):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.relative_to(DOCS_DIR).as_posix())
def test_intra_doc_links_resolve(page: Path):
    for target in _relative_links(page.read_text(encoding="utf-8")):
        resolved = (page.parent / target).resolve()
        assert resolved.exists(), f"{page.relative_to(REPO_ROOT)} links to missing {target}"


def test_readme_links_into_docs_resolve():
    readme = REPO_ROOT / "README.md"
    for target in _relative_links(readme.read_text(encoding="utf-8")):
        resolved = (REPO_ROOT / target).resolve()
        assert resolved.exists(), f"README.md links to missing {target}"


def test_mkdocstrings_targets_import():
    directives = []
    for page in _doc_pages():
        directives.extend(_AUTODOC_PATTERN.findall(page.read_text(encoding="utf-8")))
    assert directives, "expected at least one mkdocstrings ::: directive under docs/api/"
    for dotted in directives:
        assert importlib.import_module(dotted) is not None, f"::: {dotted} does not import"
