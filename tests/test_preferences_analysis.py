"""Tests for the preference-model comparison utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.preferences.analysis import (
    PreferenceComparison,
    compare_preference_models,
    default_estimators,
    dispersion_summary,
    preference_shift_users,
)
from repro.preferences.base import PreferenceResult
from repro.preferences.simple import ConstantPreference, TfidfPreference


def test_default_estimators_cover_figure2_models():
    assert set(default_estimators()) == {"thetaA", "thetaN", "thetaT", "thetaG"}


@pytest.fixture(scope="module")
def comparison(small_split) -> PreferenceComparison:
    return compare_preference_models(small_split.train)


def test_comparison_contains_all_pairs(comparison):
    names = set(comparison.estimates)
    expected_pairs = len(names) * (len(names) - 1) // 2
    assert len(comparison.spearman) == expected_pairs
    assert len(comparison.top_user_overlap) == expected_pairs


def test_correlations_are_valid(comparison):
    for value in comparison.spearman.values():
        assert -1.0 <= value <= 1.0
    for value in comparison.top_user_overlap.values():
        assert 0.0 <= value <= 1.0


def test_tfidf_and_generalized_are_strongly_related(comparison):
    """θG refines θT, so the two must be highly rank-correlated (Section II-C)."""
    assert comparison.correlation("thetaT", "thetaG") > 0.7


def test_correlation_lookup_is_order_insensitive(comparison):
    assert comparison.correlation("thetaT", "thetaG") == comparison.correlation("thetaG", "thetaT")
    with pytest.raises(ConfigurationError):
        comparison.correlation("thetaT", "missing")


def test_most_correlated_pair_is_a_real_pair(comparison):
    pair = comparison.most_correlated_pair()
    assert pair in comparison.spearman


def test_compare_requires_at_least_two_models(small_split):
    with pytest.raises(ConfigurationError):
        compare_preference_models(small_split.train, estimators={"only": TfidfPreference()})


def test_constant_estimator_has_zero_correlation(small_split):
    comparison = compare_preference_models(
        small_split.train,
        estimators={"thetaT": TfidfPreference(), "thetaC": ConstantPreference(0.5)},
    )
    assert comparison.correlation("thetaT", "thetaC") == 0.0


def test_dispersion_summary_structure(comparison):
    summary = dispersion_summary(comparison.estimates)
    assert set(summary) == set(comparison.estimates)
    for stats in summary.values():
        assert set(stats) == {"mean", "std", "iqr"}
        assert stats["std"] >= 0.0


def test_preference_shift_users_orders_by_change():
    baseline = PreferenceResult(theta=np.array([0.1, 0.5, 0.9, 0.3]), model_name="a")
    refined = PreferenceResult(theta=np.array([0.1, 0.9, 0.0, 0.35]), model_name="b")
    shifted = preference_shift_users(baseline, refined, top_k=2)
    assert list(shifted) == [2, 1]


def test_preference_shift_users_validation():
    a = PreferenceResult(theta=np.array([0.1, 0.2]), model_name="a")
    b = PreferenceResult(theta=np.array([0.1, 0.2, 0.3]), model_name="b")
    with pytest.raises(ConfigurationError):
        preference_shift_users(a, b)
    with pytest.raises(ConfigurationError):
        preference_shift_users(a, a, top_k=0)
