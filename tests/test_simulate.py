"""Tests for the traffic-replay simulator (``repro.simulate``).

The two load-bearing guarantees:

* **Determinism** — a fixed seed yields byte-identical traces and run
  reports across serial/thread/process backends and any worker count.
* **The online invariant** — the delta-updated coverage state equals a
  from-scratch recompute over the consumed-event history, bitwise, at every
  window boundary (asserted by ``verify=True`` inside the engine).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError, SimulationError
from repro.parallel.executor import get_executor
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.spec import (
    ComponentSpec,
    EvaluationSpec,
    GANCSpec,
    PipelineSpec,
)
from repro.serving.artifact import compile_artifact
from repro.simulate import (
    KIND_COLD,
    KIND_EXISTING,
    KIND_RETURNING,
    AcceptAll,
    PipelineSource,
    SimulationConfig,
    StoreSource,
    Trace,
    build_trace,
    canonical_bytes,
    create_feedback,
    create_source,
    label_kinds,
    load_report,
    run_simulation,
    validate_report,
    write_report,
)
from repro.simulate.scenarios import _pools

N = 5
N_EVENTS = 180
WINDOW = 60


def _pop_spec() -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("pop"), evaluation=EvaluationSpec(n=N), seed=0
    )


def _ganc_spec() -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("pop"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=16, optimizer="oslg"),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )


@pytest.fixture(scope="module")
def sim_pipeline_dir(tmp_path_factory, small_split) -> Path:
    directory = tmp_path_factory.mktemp("sim-pipeline")
    Pipeline(_pop_spec()).fit(small_split).save(directory)
    return directory


@pytest.fixture(scope="module")
def sim_artifact_dir(tmp_path_factory, sim_pipeline_dir) -> Path:
    directory = tmp_path_factory.mktemp("sim-artifact")
    compile_artifact(sim_pipeline_dir, directory, shard_size=16)
    return directory


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #
class TestTrace:
    def test_label_kinds_first_vs_repeat_vs_cold(self):
        users = np.array([3, 9, 3, 9, 4], dtype=np.int64)
        kinds = label_kinds(users, cold_pool=np.array([9]))
        assert kinds.tolist() == [
            KIND_EXISTING, KIND_COLD, KIND_RETURNING, KIND_RETURNING, KIND_EXISTING,
        ]

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(SimulationError, match="non-decreasing"):
            Trace(
                scenario="steady", seed=0, n_users=4, n_items=10,
                timestamps=np.array([2.0, 1.0]),
                users=np.array([0, 1]),
                kinds=np.array([0, 0], dtype=np.uint8),
            )

    def test_out_of_range_user_rejected(self):
        with pytest.raises(SimulationError, match=r"\[0, 4\)"):
            Trace(
                scenario="steady", seed=0, n_users=4, n_items=10,
                timestamps=np.array([1.0, 2.0]),
                users=np.array([0, 4]),
                kinds=np.array([0, 0], dtype=np.uint8),
            )

    def test_shard_layout_is_a_pure_function_of_the_event_count(self):
        trace = build_trace("steady", n_users=20, n_items=30, n_events=11, seed=1)
        blocks = trace.shard(4)
        assert [b.tolist() for b in blocks] == [
            [0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10],
        ]
        # More shards than events: empty shards are dropped.
        assert sum(b.size for b in trace.shard(50)) == 11

    def test_digest_separates_seeds_and_scenarios(self):
        kwargs = dict(n_users=20, n_items=30, n_events=40)
        a = build_trace("steady", seed=0, **kwargs)
        b = build_trace("steady", seed=1, **kwargs)
        c = build_trace("burst", seed=0, **kwargs)
        assert a.digest() != b.digest()
        assert a.digest() != c.digest()
        assert a.digest() == build_trace("steady", seed=0, **kwargs).digest()

    def test_columns_are_immutable(self):
        trace = build_trace("steady", n_users=20, n_items=30, n_events=5, seed=0)
        with pytest.raises(ValueError):
            trace.users[0] = 1


# --------------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------------- #
class TestScenarios:
    def test_same_arguments_give_byte_identical_traces(self):
        for scenario in ("steady", "burst", "coldstart"):
            a = build_trace(scenario, n_users=40, n_items=60, n_events=90, seed=5)
            b = build_trace(scenario, n_users=40, n_items=60, n_events=90, seed=5)
            assert a.tobytes() == b.tobytes(), scenario

    def test_burst_concentrates_middle_third_on_the_hot_pool(self):
        trace = build_trace("burst", n_users=100, n_items=60, n_events=90, seed=2)
        _, _, hot = _pools(100)
        middle = trace.users[30:60]
        assert np.isin(middle, hot).all()
        # The spike arrives ~10x faster than the steady thirds.
        gaps = np.diff(trace.timestamps)
        assert gaps[30:59].mean() < gaps[:29].mean() / 2

    def test_coldstart_wave_draws_from_the_cold_pool(self):
        trace = build_trace("coldstart", n_users=100, n_items=60, n_events=100, seed=3)
        _, cold, _ = _pools(100)
        wave = trace.users[60:85]
        assert np.isin(wave, cold).all()
        assert (trace.kinds == KIND_COLD).sum() > 0

    def test_steady_never_touches_the_cold_pool(self):
        trace = build_trace("steady", n_users=100, n_items=60, n_events=200, seed=4)
        _, cold, _ = _pools(100)
        assert not np.isin(trace.users, cold).any()
        assert (trace.kinds == KIND_COLD).sum() == 0

    def test_replay_uses_test_interactions(self, small_split):
        n_users = small_split.test.n_users
        trace = build_trace(
            "replay", n_users=n_users, n_items=small_split.test.n_items,
            n_events=50, seed=6, split=small_split,
        )
        assert trace.n_events == min(50, small_split.test.n_ratings)
        assert np.isin(trace.users, np.unique(small_split.test.user_indices)).all()

    def test_replay_without_split_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="replay"):
            build_trace("replay", n_users=10, n_items=10, n_events=5, seed=0)

    def test_replay_user_universe_mismatch_raises(self, small_split):
        with pytest.raises(SimulationError, match="users"):
            build_trace(
                "replay", n_users=small_split.test.n_users + 7,
                n_items=small_split.test.n_items, n_events=5, seed=0,
                split=small_split,
            )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            build_trace("tsunami", n_users=10, n_items=10, n_events=5, seed=0)


# --------------------------------------------------------------------------- #
# Feedback models
# --------------------------------------------------------------------------- #
class TestFeedback:
    def test_accept_all_consumes_every_valid_slot(self):
        model = AcceptAll()
        row = np.array([4, 2, 9, -1, -1])
        out = model.consume(row, None, np.random.default_rng(0))
        assert out.tolist() == [4, 2, 9]

    def test_position_biased_is_a_rank_ordered_subset(self):
        model = create_feedback("position-biased", attraction=0.9, decay=0.6)
        row = np.arange(10, dtype=np.int64)
        out = model.consume(row, None, np.random.default_rng(1))
        assert np.isin(out, row).all()
        assert (np.diff(np.searchsorted(row, out)) > 0).all()
        # Same rng state, same draws.
        again = model.consume(row, None, np.random.default_rng(1))
        np.testing.assert_array_equal(out, again)

    def test_position_biased_head_gets_more_feedback_than_tail(self):
        model = create_feedback("position-biased")
        rng = np.random.default_rng(7)
        row = np.arange(10, dtype=np.int64)
        counts = np.zeros(10)
        for _ in range(500):
            np.add.at(counts, model.consume(row, None, rng), 1)
        assert counts[0] > counts[-1] * 2

    def test_threshold_keeps_scores_above_the_fraction(self):
        model = create_feedback("threshold", fraction=0.5)
        row = np.array([10, 11, 12, 13])
        scores = np.array([8.0, 4.1, 3.9, np.nan])
        assert model.consume(row, scores, np.random.default_rng(0)).tolist() == [10, 11]

    def test_threshold_without_scores_takes_the_top_slot(self):
        model = create_feedback("threshold")
        row = np.array([10, 11, 12])
        assert model.consume(row, None, np.random.default_rng(0)).tolist() == [10]
        all_nan = np.full(3, np.nan)
        assert model.consume(row, all_nan, np.random.default_rng(0)).tolist() == [10]

    def test_create_feedback_validates_names_and_params(self):
        with pytest.raises(ConfigurationError, match="unknown feedback"):
            create_feedback("clickbait")
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            create_feedback("accept-all", attraction=0.5)
        with pytest.raises(ConfigurationError, match="attraction"):
            create_feedback("position-biased", attraction=1.5)


# --------------------------------------------------------------------------- #
# Determinism: backends and worker counts
# --------------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize(
        "backend,jobs",
        [("serial", 1), ("thread", 2), ("thread", 5), ("process", 2)],
    )
    def test_store_replay_bytes_match_serial_reference(
        self, sim_artifact_dir, backend, jobs
    ):
        config = SimulationConfig(
            scenario="burst", n_events=N_EVENTS, n=N, window=WINDOW,
            seed=42, shards=4, verify=True,
        )
        reference = run_simulation(
            StoreSource(sim_artifact_dir), config, executor=get_executor("serial", 1)
        )
        result = run_simulation(
            StoreSource(sim_artifact_dir), config, executor=get_executor(backend, jobs)
        )
        assert result.trace.tobytes() == reference.trace.tobytes()
        assert canonical_bytes(result.report) == canonical_bytes(reference.report)
        assert validate_report(result.report) == []

    def test_seed_changes_the_report(self, sim_artifact_dir):
        source = StoreSource(sim_artifact_dir)
        runs = [
            run_simulation(
                source,
                SimulationConfig(
                    scenario="steady", n_events=120, n=N, window=WINDOW, seed=seed
                ),
            )
            for seed in (0, 1)
        ]
        assert runs[0].report["trace_digest"] != runs[1].report["trace_digest"]

    def test_shards_are_configuration_not_mechanism(self, sim_artifact_dir):
        """Different shard counts are different runs (documented contract)."""
        source = StoreSource(sim_artifact_dir)
        base = dict(scenario="steady", n_events=120, n=N, window=WINDOW, seed=9)
        two = run_simulation(source, SimulationConfig(shards=2, **base))
        four = run_simulation(source, SimulationConfig(shards=4, **base))
        # Same trace (sharding never changes what is replayed)...
        assert two.trace.tobytes() == four.trace.tobytes()
        # ...but distinct feedback randomness layouts, recorded in the config.
        assert two.report["config"]["shards"] == 2
        assert four.report["config"]["shards"] == 4


# --------------------------------------------------------------------------- #
# The online loop and its invariant
# --------------------------------------------------------------------------- #
class TestOnlineFeedback:
    def test_online_runs_are_reproducible_and_verified(self, small_split):
        reports = []
        for _ in range(2):  # two independent fits, byte-identical runs
            source = PipelineSource(Pipeline(_ganc_spec()).fit(small_split))
            assert source.online
            result = run_simulation(
                source,
                SimulationConfig(
                    scenario="coldstart", n_events=120, n=N, window=40,
                    seed=9, verify=True,
                ),
            )
            reports.append(canonical_bytes(result.report))
        assert reports[0] == reports[1]

    def test_online_feedback_advances_the_live_coverage_state(self, small_split):
        source = PipelineSource(Pipeline(_ganc_spec()).fit(small_split))
        before = source.coverage_counts()
        result = run_simulation(
            source,
            SimulationConfig(
                scenario="steady", n_events=60, n=N, window=30, seed=1, verify=True,
            ),
        )
        after = source.coverage_counts()
        # verify=True already asserted bitwise equality with the recompute;
        # here we pin the externally visible effect.
        assert int((after - before).sum()) == result.report["totals"]["consumed"]
        assert result.report["config"]["online"] is True
        assert result.report["config"]["verified"] is True

    def test_offline_pipeline_source_is_not_online(self, small_split):
        source = PipelineSource(Pipeline(_pop_spec()).fit(small_split))
        assert not source.online
        assert source.coverage_counts() is None

    def test_accuracy_metrics_present_with_a_split(self, small_split):
        source = PipelineSource(Pipeline(_pop_spec()).fit(small_split))
        result = run_simulation(
            source,
            SimulationConfig(scenario="replay", n_events=80, n=N, window=40, seed=3),
        )
        for window in result.report["windows"]:
            assert window["precision"] is not None
            assert 0.0 <= window["precision"] <= 1.0
            assert window["epc"] is not None

    def test_store_without_split_reports_none_accuracy(self, sim_artifact_dir):
        result = run_simulation(
            StoreSource(sim_artifact_dir),
            SimulationConfig(scenario="steady", n_events=60, n=N, window=30, seed=0),
        )
        assert all(w["precision"] is None for w in result.report["windows"])


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
class TestReport:
    @pytest.fixture(scope="class")
    def report(self, sim_artifact_dir):
        return run_simulation(
            StoreSource(sim_artifact_dir),
            SimulationConfig(scenario="burst", n_events=120, n=N, window=40, seed=5),
        ).report

    def test_engine_reports_validate_cleanly(self, report):
        assert validate_report(report) == []

    def test_window_schema_violations_are_caught(self, report):
        import copy

        broken = copy.deepcopy(report)
        del broken["windows"][0]["window_gini"]
        assert any("windows[0]" in e for e in validate_report(broken))

        broken = copy.deepcopy(report)
        broken["windows"][1]["window_coverage"] = float("nan")
        assert any("finite" in e for e in validate_report(broken))

        broken = copy.deepcopy(report)
        broken["schema"] = 99
        assert any("schema" in e for e in validate_report(broken))

    def test_write_load_round_trip_is_canonical(self, report, tmp_path):
        path = write_report(report, tmp_path / "run.json")
        assert path.read_bytes() == canonical_bytes(report)
        assert load_report(path) == report

    def test_invalid_report_refused_at_write_time(self, tmp_path):
        with pytest.raises(SimulationError, match="invalid simulation report"):
            write_report({"schema": 1}, tmp_path / "bad.json")


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_simulate_cli_writes_a_deterministic_report(
        self, sim_artifact_dir, sim_pipeline_dir, tmp_path, capsys
    ):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = [
            "simulate", "--source", "store",
            "--artifact", str(sim_artifact_dir),
            "--pipeline", str(sim_pipeline_dir),
            "--scenario", "coldstart", "--events", "120", "--n", str(N),
            "--window", "40", "--seed", "13", "--verify",
        ]
        assert main([*base, "--out", str(out_a)]) == 0
        assert main([*base, "--jobs", "3", "--backend", "thread", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        report = load_report(out_a)
        assert report["scenario"] == "coldstart"
        assert report["config"]["verified"] is True
        # The split wired via --pipeline enables the accuracy proxies.
        assert report["windows"][0]["precision"] is not None
        captured = capsys.readouterr().out
        assert "online invariant verified" in captured

    @pytest.mark.parametrize(
        "argv,flag",
        [
            (["simulate", "--events", "0"], "--events"),
            (["simulate", "--events", "abc"], "--events"),
            (["simulate", "--scenario", "tsunami"], "--scenario"),
            (["simulate", "--feedback", "clickbait"], "--feedback"),
            (["simulate", "--source", "carrier-pigeon"], "--source"),
            (["simulate", "--window", "0"], "--window"),
            (["simulate", "--shards", "0"], "--shards"),
        ],
    )
    def test_parse_time_errors_name_the_flag(self, argv, flag):
        with pytest.raises(ConfigurationError, match=flag.replace("-", "[-]")):
            main(argv)

    def test_missing_source_flags_are_named(self):
        with pytest.raises(ConfigurationError, match="--pipeline"):
            main(["simulate", "--source", "pipeline"])
        with pytest.raises(ConfigurationError, match="--artifact"):
            main(["simulate", "--source", "store"])
        with pytest.raises(ConfigurationError, match="--url"):
            main(["simulate", "--source", "http"])

    def test_create_source_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown source"):
            create_source("oracle", artifact_dir=None, pipeline_dir=None, url=None)
