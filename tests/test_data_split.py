"""Tests for the train/test splitters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import RatingDataset
from repro.data.split import LeaveKOutSplitter, RatioSplitter, TrainTestSplit, split_ratings
from repro.exceptions import SplitError


def _pairs(dataset: RatingDataset) -> set[tuple[int, int]]:
    return set(zip(dataset.user_indices.tolist(), dataset.item_indices.tolist()))


def test_ratio_split_partitions_interactions(small_dataset):
    split = RatioSplitter(0.7, seed=0).split(small_dataset)
    assert split.n_ratings == small_dataset.n_ratings
    assert _pairs(split.train).isdisjoint(_pairs(split.test))
    assert _pairs(split.train) | _pairs(split.test) == _pairs(small_dataset)


def test_ratio_split_preserves_universe(small_dataset):
    split = RatioSplitter(0.7, seed=0).split(small_dataset)
    assert split.train.n_users == small_dataset.n_users
    assert split.train.n_items == small_dataset.n_items
    assert split.test.n_users == small_dataset.n_users


def test_ratio_split_every_user_keeps_train_ratings(small_dataset):
    split = RatioSplitter(0.5, seed=1).split(small_dataset)
    original_activity = small_dataset.user_activity()
    train_activity = split.train.user_activity()
    assert np.all(train_activity[original_activity > 0] >= 1)


def test_ratio_split_respects_ratio_approximately(small_dataset):
    split = RatioSplitter(0.8, seed=2).split(small_dataset)
    ratio = split.train.n_ratings / small_dataset.n_ratings
    assert 0.7 < ratio < 0.9


def test_ratio_split_small_users_behave_like_the_paper():
    """A 5-rating user with kappa=0.8 keeps 4 ratings in train and 1 in test."""
    triples = [(0, i, 3.0) for i in range(5)] + [(1, i, 4.0) for i in range(100)]
    data = RatingDataset.from_interactions(triples)
    split = RatioSplitter(0.8, seed=0).split(data)
    assert split.train.user_activity()[0] == 4
    assert split.test.user_activity()[0] == 1
    assert split.train.user_activity()[1] == 80


def test_ratio_split_is_deterministic_per_seed(small_dataset):
    a = RatioSplitter(0.6, seed=5).split(small_dataset)
    b = RatioSplitter(0.6, seed=5).split(small_dataset)
    assert _pairs(a.train) == _pairs(b.train)
    c = RatioSplitter(0.6, seed=6).split(small_dataset)
    assert _pairs(a.train) != _pairs(c.train)


def test_ratio_splitter_rejects_bad_ratio():
    with pytest.raises(SplitError):
        RatioSplitter(0.0)
    with pytest.raises(SplitError):
        RatioSplitter(1.0)


def test_split_ratings_convenience(small_dataset):
    split = split_ratings(small_dataset, train_ratio=0.5, seed=0)
    assert isinstance(split, TrainTestSplit)
    assert split.train.n_ratings > 0 and split.test.n_ratings > 0


def test_leave_k_out_holds_out_k_per_user(small_dataset):
    split = LeaveKOutSplitter(k=2, seed=0).split(small_dataset)
    test_activity = split.test.user_activity()
    original = small_dataset.user_activity()
    for user in range(small_dataset.n_users):
        if original[user] > 2:
            assert test_activity[user] == 2
        else:
            assert test_activity[user] == 0


def test_leave_k_out_rejects_bad_k():
    with pytest.raises(SplitError):
        LeaveKOutSplitter(k=0)


def test_train_test_split_requires_matching_universe(tiny_dataset, small_dataset):
    tiny_split = RatioSplitter(0.6, seed=0).split(tiny_dataset)
    with pytest.raises(SplitError):
        TrainTestSplit(train=tiny_split.train, test=small_dataset)
