"""Tests for the unified component registry (repro.registry)."""

from __future__ import annotations

import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.random import RandomCoverage
from repro.exceptions import ConfigurationError
from repro.preferences.generalized import GeneralizedPreference
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.popularity import MostPopular
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.rsvd import RSVD
from repro.registry import (
    ComponentEntry,
    ParamsMixin,
    available,
    component_entry,
    create,
    register,
)
from repro.rerankers.pra import PersonalizedRankingAdaptation


# --------------------------------------------------------------------------- #
# Kinds and lookup
# --------------------------------------------------------------------------- #
def test_every_kind_is_populated():
    assert {"pop", "rand", "rsvd", "psvd10", "psvd100", "cofir100"} <= set(available("recommender"))
    assert {"thetaa", "thetan", "thetat", "thetag", "thetar", "thetac"} <= set(available("preference"))
    assert {"rand", "stat", "dyn"} <= set(available("coverage"))
    assert {"rbt", "5d", "pra"} <= set(available("reranker"))


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown component kind"):
        create("optimizer", "oslg")
    with pytest.raises(ConfigurationError, match="unknown component kind"):
        available("optimizer")


def test_unknown_name_lists_alternatives():
    with pytest.raises(ConfigurationError, match="available"):
        create("recommender", "definitely-not-a-model")


def test_lookup_is_case_insensitive_and_stripped():
    assert isinstance(create("recommender", " PSVD100 "), PureSVD)
    assert isinstance(create("coverage", "DYN"), DynamicCoverage)


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register("coverage", "dyn")(DynamicCoverage)


# --------------------------------------------------------------------------- #
# Strict keyword validation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    ("kind", "name", "bad_kwargs"),
    [
        ("recommender", "rsvd", {"n_factor": 7}),  # the classic typo
        ("recommender", "pop", {"n_factors": 10}),
        ("preference", "thetag", {"max_iteration": 5}),
        ("preference", "thetac", {"values": 0.3}),
        ("coverage", "dyn", {"sample_size": 10}),
        ("reranker", "pra", {"base": MostPopular(), "exchangable_size": 10}),
    ],
)
def test_unknown_kwargs_raise_configuration_error(kind, name, bad_kwargs):
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        create(kind, name, **bad_kwargs)


def test_error_message_names_valid_parameters():
    with pytest.raises(ConfigurationError, match="n_factors"):
        create("recommender", "rsvd", n_factor=7)


def test_seed_is_threaded_when_accepted_and_dropped_otherwise():
    rand = create("recommender", "rand", seed=7)
    assert rand.get_params()["seed"] == 7
    # Pop takes no seed: uniform seed threading must not explode.
    assert isinstance(create("recommender", "pop", seed=7), MostPopular)
    assert isinstance(create("preference", "thetat", seed=7).get_params(), dict)
    assert isinstance(create("coverage", "stat", seed=7).get_params(), dict)


# --------------------------------------------------------------------------- #
# Defaults, scaling and dynamic names
# --------------------------------------------------------------------------- #
def test_paper_defaults_are_entry_defaults():
    rsvd = create("recommender", "rsvd")
    assert (rsvd.n_factors, rsvd.n_epochs, rsvd.learning_rate, rsvd.reg) == (20, 30, 0.02, 0.05)
    assert create("recommender", "rsvdn").non_negative is True
    assert create("recommender", "psvd10").n_factors == 10
    assert create("recommender", "cofir100").n_factors == 100


def test_scale_hint_scales_rank_defaults_with_minimums():
    assert create("recommender", "psvd100", scale_hint=0.2).n_factors == 20
    assert create("recommender", "psvd100", scale_hint=1.0).n_factors == 100
    # Clamped below at 0.05 and floored at the family minimum.
    assert create("recommender", "psvd10", scale_hint=0.01).n_factors == 3
    assert create("recommender", "cofir100", scale_hint=0.01).n_factors == 5
    # scale_hint > 1 never inflates the rank.
    assert create("recommender", "psvd100", scale_hint=3.0).n_factors == 100


def test_scale_hint_never_rescales_explicit_values():
    model = create("recommender", "psvd100", n_factors=64, scale_hint=0.1)
    assert model.n_factors == 64


def test_scale_hint_ignored_by_unscaled_entries():
    model = create("recommender", "rsvd", scale_hint=0.1)
    assert model.n_factors == 20


def test_dynamic_factor_family_names_resolve():
    assert create("recommender", "psvd37").n_factors == 37
    cofi = create("recommender", "cofir40", scale_hint=0.5)
    assert isinstance(cofi, CofiRank)
    assert cofi.n_factors == 20
    entry = component_entry("recommender", "psvd8")
    assert isinstance(entry, ComponentEntry)
    with pytest.raises(ConfigurationError):
        create("recommender", "psvd0")


def test_reranker_creation_takes_base_keyword():
    reranker = create("reranker", "pra", base=MostPopular(), exchangeable_size=5, seed=0)
    assert isinstance(reranker, PersonalizedRankingAdaptation)


# --------------------------------------------------------------------------- #
# get_params / from_params
# --------------------------------------------------------------------------- #
def test_get_params_reports_constructor_configuration():
    model = create("recommender", "rsvd", n_factors=12, seed=3)
    params = model.get_params()
    assert params["n_factors"] == 12
    assert params["seed"] == 3
    clone = RSVD.from_params(params)
    assert clone.get_params() == params


def test_get_params_on_parameterless_components():
    assert MostPopular().get_params() == {}
    assert DynamicCoverage().get_params() == {}


def test_get_params_covers_underscore_storage():
    assert RandomCoverage(seed=11).get_params() == {"seed": 11}


def test_from_params_rejects_unknown_names():
    with pytest.raises(ConfigurationError, match="unexpected parameter"):
        GeneralizedPreference.from_params({"max_iterations": 5, "tolerence": 1e-3})


def test_every_registered_component_round_trips_params():
    for kind in ("recommender", "preference", "coverage"):
        for name in available(kind):
            component = create(kind, name)
            params = component.get_params()
            clone = type(component).from_params(params)
            assert clone.get_params() == params, f"{kind}:{name}"


def test_params_mixin_is_on_every_base():
    from repro.coverage.base import CoverageRecommender
    from repro.preferences.base import PreferenceModel
    from repro.recommenders.base import Recommender
    from repro.rerankers.base import Reranker

    for base in (Recommender, PreferenceModel, CoverageRecommender, Reranker):
        assert issubclass(base, ParamsMixin)


def test_theta_spelling_resolves_through_every_entry_point():
    """The paper's θ spelling works in create(), specs and the CLI alike."""
    assert isinstance(create("preference", "θG"), GeneralizedPreference)
    assert component_entry("preference", "ΘG").name == "thetag"
