"""Tests for the submodular objective helpers and approximation bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.submodular import (
    brute_force_best_collection,
    collection_value,
    dynamic_coverage_value,
)


def _tiny_problem():
    """A 3-user, 4-item instance small enough for brute force."""
    rng = np.random.default_rng(0)
    theta = np.array([0.2, 0.5, 0.9])
    accuracy = {u: rng.random(4) for u in range(3)}
    return theta, accuracy


def test_collection_value_static_scores():
    theta = np.array([0.5, 0.0])
    accuracy = {0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])}
    coverage = {0: np.array([0.0, 1.0]), 1: np.array([1.0, 0.0])}
    assignments = {0: np.array([0]), 1: np.array([1])}
    value = collection_value(assignments, theta, accuracy, coverage)
    # user 0: 0.5*1.0 + 0.5*0.0 ; user 1: 1.0*1.0 + 0.0
    assert value == pytest.approx(0.5 + 1.0)


def test_dynamic_coverage_value_diminishing_returns():
    theta = np.array([1.0, 1.0])
    accuracy = {0: np.zeros(3), 1: np.zeros(3)}
    same_item = {0: np.array([0]), 1: np.array([0])}
    different_items = {0: np.array([0]), 1: np.array([1])}
    value_same = dynamic_coverage_value(same_item, theta, accuracy)
    value_diff = dynamic_coverage_value(different_items, theta, accuracy)
    assert value_same == pytest.approx(1.0 + 1.0 / np.sqrt(2.0))
    assert value_diff == pytest.approx(2.0)
    assert value_diff > value_same


def test_dynamic_value_respects_user_order_weights():
    theta = np.array([0.0, 1.0])
    accuracy = {0: np.array([1.0, 0.0]), 1: np.array([0.0, 0.0])}
    assignments = {0: np.array([0]), 1: np.array([0])}
    # user 0 first: gets accuracy 1.0; user 1 second: coverage 1/sqrt(2).
    first_then_second = dynamic_coverage_value(assignments, theta, accuracy, user_order=[0, 1])
    # Reversed order: user 1 takes the full coverage gain of item 0.
    second_then_first = dynamic_coverage_value(assignments, theta, accuracy, user_order=[1, 0])
    assert first_then_second == pytest.approx(1.0 + 1.0 / np.sqrt(2.0))
    assert second_then_first == pytest.approx(1.0 + 1.0)


def test_marginal_gains_are_non_increasing():
    """Empirical submodularity check of the Dyn coverage contribution."""
    theta = np.array([1.0])
    accuracy = {0: np.zeros(1)}
    gains = []
    for copies in range(1, 5):
        assignment = {0: np.zeros(copies, dtype=int)}
        # value of recommending the same item `copies` times (conceptually to
        # different slots); marginal gain = value(k) - value(k-1).
        value = dynamic_coverage_value(assignment, theta, accuracy)
        gains.append(value)
    marginals = np.diff([0.0] + gains)
    assert np.all(np.diff(marginals) < 0)


def test_brute_force_matches_manual_optimum():
    theta = np.array([0.0, 1.0])
    accuracy = {0: np.array([0.9, 0.1, 0.0]), 1: np.array([0.0, 0.0, 0.0])}
    best, value = brute_force_best_collection(2, 3, 1, theta, accuracy)
    # User 0 (pure accuracy) must take item 0; user 1 (pure coverage) is then
    # indifferent but any fresh item gives gain 1.0.
    assert best[0].tolist() == [0]
    assert value == pytest.approx(0.9 + 1.0)


def test_brute_force_validation():
    with pytest.raises(ConfigurationError):
        brute_force_best_collection(0, 3, 1, np.array([]), {})


def test_locally_greedy_achieves_half_of_optimum():
    """Fisher et al.'s 1/2 bound, checked exhaustively on tiny instances."""
    theta, accuracy = _tiny_problem()
    n_users, n_items, n = 3, 4, 2

    data = RatingDataset(
        np.array([0, 1, 2]),
        np.array([0, 1, 2]),
        np.array([3.0, 3.0, 3.0]),
        n_users=n_users,
        n_items=n_items,
    )
    coverage = DynamicCoverage().fit(data)
    optimizer = LocallyGreedyOptimizer(coverage, n)
    greedy = optimizer.run(
        theta,
        lambda u: accuracy[u],
        lambda u: np.empty(0, dtype=np.int64),
        n_users=n_users,
    )
    greedy_assignment = {u: greedy.for_user(u) for u in range(n_users)}
    greedy_value = dynamic_coverage_value(greedy_assignment, theta, accuracy)

    _, optimal_value = brute_force_best_collection(n_users, n_items, n, theta, accuracy)
    assert greedy_value >= 0.5 * optimal_value - 1e-9
    assert greedy_value <= optimal_value + 1e-9


def test_locally_greedy_half_bound_across_random_instances():
    rng = np.random.default_rng(42)
    for trial in range(5):
        n_users, n_items, n = 3, 4, 1
        theta = rng.random(n_users)
        accuracy = {u: rng.random(n_items) for u in range(n_users)}
        data = RatingDataset(
            np.arange(n_users),
            np.zeros(n_users, dtype=int),
            np.full(n_users, 3.0),
            n_users=n_users,
            n_items=n_items,
        )
        coverage = DynamicCoverage().fit(data)
        greedy = LocallyGreedyOptimizer(coverage, n).run(
            theta,
            lambda u: accuracy[u],
            lambda u: np.empty(0, dtype=np.int64),
            n_users=n_users,
        )
        greedy_value = dynamic_coverage_value(
            {u: greedy.for_user(u) for u in range(n_users)}, theta, accuracy
        )
        _, optimal = brute_force_best_collection(n_users, n_items, n, theta, accuracy)
        assert greedy_value >= 0.5 * optimal - 1e-9


def test_dynamic_coverage_value_padding_does_not_alias_real_items():
    """-1 padding entries must count in their own bucket, not alias the last
    item's frequency (regression: an array-indexed replay did exactly that)."""
    theta = np.array([0.5, 0.5])
    accuracy = {0: np.array([0.0, 0.0, 1.0]), 1: np.array([0.0, 0.0, 1.0])}
    padded = dynamic_coverage_value(
        {0: np.array([2]), 1: np.array([2, -1])}, theta, accuracy
    )
    # item 2 assigned twice (gains 1 + 1/sqrt(2)), the -1 sentinel once
    # (gain 1, plus it reads accuracy[-1] == accuracy[2] — dict semantics).
    expected = (
        0.5 * 1.0 + 0.5 * 1.0            # user 0: acc + first assignment of item 2
        + 0.5 * 2.0                       # user 1 accuracy: items 2 and -1 both read 1.0
        + 0.5 / np.sqrt(2.0)              # second assignment of item 2
        + 0.5 * 1.0                       # first assignment of the -1 bucket
    )
    assert padded == pytest.approx(expected)
