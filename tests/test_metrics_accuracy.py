"""Tests for the ranking accuracy and error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.metrics.accuracy import (
    f_measure_at_n,
    mae,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    rmse,
)


@pytest.fixture()
def simple_case():
    recommendations = {
        0: np.array([1, 2, 3, 4, 5]),
        1: np.array([10, 11, 12, 13, 14]),
        2: np.array([20, 21, 22, 23, 24]),
    }
    relevant = {
        0: np.array([1, 2]),        # 2 hits out of 2 relevant
        1: np.array([10, 99, 98]),  # 1 hit out of 3 relevant
        2: np.array([], dtype=int), # skipped (no relevant items)
    }
    return recommendations, relevant


def test_precision_at_n(simple_case):
    recommendations, relevant = simple_case
    expected = ((2 / 5) + (1 / 5)) / 2
    assert precision_at_n(recommendations, relevant, 5) == pytest.approx(expected)


def test_recall_at_n(simple_case):
    recommendations, relevant = simple_case
    expected = ((2 / 2) + (1 / 3)) / 2
    assert recall_at_n(recommendations, relevant, 5) == pytest.approx(expected)


def test_f_measure_is_harmonic_style_combination(simple_case):
    recommendations, relevant = simple_case
    p = precision_at_n(recommendations, relevant, 5)
    r = recall_at_n(recommendations, relevant, 5)
    assert f_measure_at_n(recommendations, relevant, 5) == pytest.approx(p * r / (p + r))


def test_f_measure_zero_when_no_hits():
    recs = {0: np.array([1, 2])}
    relevant = {0: np.array([9])}
    assert f_measure_at_n(recs, relevant, 2) == 0.0


def test_metrics_with_no_relevant_users_are_zero():
    recs = {0: np.array([1, 2])}
    relevant = {0: np.array([], dtype=int)}
    assert precision_at_n(recs, relevant, 2) == 0.0
    assert recall_at_n(recs, relevant, 2) == 0.0


def test_perfect_recommendations():
    recs = {0: np.array([1, 2, 3])}
    relevant = {0: np.array([1, 2, 3])}
    assert precision_at_n(recs, relevant, 3) == pytest.approx(1.0)
    assert recall_at_n(recs, relevant, 3) == pytest.approx(1.0)
    assert ndcg_at_n(recs, relevant, 3) == pytest.approx(1.0)


def test_metrics_reject_bad_n(simple_case):
    recommendations, relevant = simple_case
    with pytest.raises(EvaluationError):
        precision_at_n(recommendations, relevant, 0)
    with pytest.raises(EvaluationError):
        recall_at_n(recommendations, relevant, 0)
    with pytest.raises(EvaluationError):
        ndcg_at_n(recommendations, relevant, 0)


def test_precision_handles_missing_users(simple_case):
    _, relevant = simple_case
    # A user with relevant items but no recommendations contributes 0.
    value = precision_at_n({}, relevant, 5)
    assert value == 0.0


def test_ndcg_rank_position_matters():
    relevant = {0: np.array([7])}
    early = {0: np.array([7, 1, 2])}
    late = {0: np.array([1, 2, 7])}
    assert ndcg_at_n(early, relevant, 3) > ndcg_at_n(late, relevant, 3)


def test_rmse_and_mae_basic():
    preds = np.array([3.0, 4.0, 5.0])
    truth = np.array([3.0, 3.0, 3.0])
    assert rmse(preds, truth) == pytest.approx(np.sqrt((0 + 1 + 4) / 3))
    assert mae(preds, truth) == pytest.approx(1.0)


def test_rmse_mae_validation():
    with pytest.raises(EvaluationError):
        rmse(np.array([1.0]), np.array([1.0, 2.0]))
    with pytest.raises(EvaluationError):
        mae(np.array([1.0]), np.array([1.0, 2.0]))
    assert np.isnan(rmse(np.array([]), np.array([])))
    assert np.isnan(mae(np.array([]), np.array([])))
