"""Golden-master regression tests: committed outputs future PRs must not drift.

Each fixture under ``tests/golden/`` is the byte-exact output of one fixed,
fast experiment configuration:

* ``table4_ml100k.json`` — the Table IV re-ranking comparison rows
  (all nine algorithms, metrics + ranks) on the ML-100K surrogate,
* ``figure6_ml100k.json`` — the Figure 6 accuracy/coverage/novelty points,
* ``ml100k_tiny_metrics.json`` / ``ml100k_tiny_top5.csv`` — the metric
  report and full top-5 CSV of the ``examples/specs/ml100k_tiny.json``
  pipeline spec (the same spec the CI smoke jobs execute).

The tests regenerate each output and byte-compare it against the committed
fixture, so any change to scoring, tie-breaking, sampling, ranking or
serialization — however subtle — fails loudly.  After an *intentional*
behaviour change, refresh the fixtures with::

    PYTHONPATH=src python tests/test_golden_master.py --regenerate

and commit the diff alongside the change that caused it.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import numpy
import pytest
import scipy

from repro.data.io import save_recommendations_csv
from repro.experiments.figure6 import run_figure6_for_dataset
from repro.experiments.table4 import run_table4_for_dataset
from repro.pipeline import Pipeline

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
TINY_SPEC = Path(__file__).resolve().parents[1] / "examples" / "specs" / "ml100k_tiny.json"

#: One fixed configuration per fixture; changing these invalidates the goldens.
SCALE = 0.15
SAMPLE_SIZE = 30
SEED = 0


def _as_json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def generate_table4() -> bytes:
    """Table IV rows on ML-100K: metrics, per-metric ranks, average rank."""
    rows = run_table4_for_dataset(
        "ml100k", scale=SCALE, sample_size=SAMPLE_SIZE, seed=SEED
    )
    return _as_json_bytes(
        [
            {
                "dataset": row.dataset,
                "algorithm": row.algorithm,
                "metrics": row.report.as_dict(),
                "ranks": dict(row.ranks),
                "average_rank": row.average_rank,
            }
            for row in rows
        ]
    )


def generate_figure6() -> bytes:
    """Figure 6 points on ML-100K: one metric dict per algorithm."""
    points = run_figure6_for_dataset(
        "ml100k", scale=SCALE, sample_size=SAMPLE_SIZE, seed=SEED
    )
    return _as_json_bytes(
        [
            {
                "dataset": point.dataset,
                "algorithm": point.algorithm,
                "metrics": point.report.as_dict(),
            }
            for point in points
        ]
    )


def _tiny_pipeline_outputs() -> tuple[bytes, bytes]:
    pipeline = Pipeline.from_json_file(TINY_SPEC).fit()
    recommendations = pipeline.recommend_all()
    metrics = pipeline.evaluate(recommendations).report.as_dict()
    metrics_bytes = _as_json_bytes({"algorithm": pipeline.algorithm, "metrics": metrics})
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = save_recommendations_csv(recommendations.as_dict(), Path(tmp) / "top5.csv")
        csv_bytes = csv_path.read_bytes()
    return metrics_bytes, csv_bytes


def generate_tiny_metrics() -> bytes:
    """Metric report of the ml100k_tiny pipeline spec."""
    return _tiny_pipeline_outputs()[0]


def generate_tiny_top5() -> bytes:
    """Full top-5 CSV of the ml100k_tiny pipeline spec."""
    return _tiny_pipeline_outputs()[1]


def generate_oslg_tiny() -> bytes:
    """One fixed tiny OSLG run: collection, sample, final coverage counts.

    Pins the whole Algorithm 1 surface — KDE sampling, the incremental
    sequential pass, delta-snapshot reconstruction and the blocked snapshot
    assignment phase — at a scale small enough to regenerate in well under a
    second.  Uses the Pop accuracy recommender, so no BLAS floats are
    involved beyond the environment-gated numpy line.
    """
    import numpy as np

    from repro.coverage.dynamic import DynamicCoverage
    from repro.data.split import RatioSplitter
    from repro.data.synthetic import make_dataset
    from repro.ganc.oslg import OSLGOptimizer
    from repro.preferences.generalized import GeneralizedPreference
    from repro.recommenders.popularity import MostPopular

    train = RatioSplitter(0.8, seed=SEED).split(
        make_dataset("ml100k", scale=0.1, seed=SEED)
    ).train
    model = MostPopular().fit(train)
    theta = GeneralizedPreference().estimate(train).theta
    optimizer = OSLGOptimizer(
        DynamicCoverage().fit(train), 5, sample_size=12, seed=SEED
    )
    result = optimizer.run(
        theta,
        lambda user: model.unit_scores(user, 5),
        train.user_items,
        accuracy_matrix=lambda users: model.unit_scores_batch(users, 5),
        exclusion_pairs=train.user_items_batch,
    )
    final_counts = result.snapshot_log.counts_at(result.snapshot_log.n_steps - 1)
    return _as_json_bytes(
        {
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
            "sampled_users": result.sampled_users.tolist(),
            "top_n": result.top_n.items.tolist(),
            "final_snapshot_counts": final_counts.tolist(),
            "snapshot_totals": result.snapshots.sum(axis=1).tolist(),
        }
    )


def generate_sparse_knn_tiny() -> bytes:
    """One fixed tiny sparse-KNN fit: the exact=False neighbour graph.

    Pins the blocked gram scan (``ItemKNN(exact=False)``) — similarity
    values, CSR structure and the top-5 lists it serves — on a small
    synthetic split.  The scan is contractually bit-identical to the exact
    dense path (asserted in ``tests/test_scale.py``), so this fixture also
    freezes the historical exact numbers in sparse form: drift in either
    representation fails here.
    """
    from repro.data.split import RatioSplitter
    from repro.data.synthetic import make_dataset
    from repro.recommenders.knn import ItemKNN

    train = RatioSplitter(0.8, seed=SEED).split(
        make_dataset("ml100k", scale=0.1, seed=SEED)
    ).train
    model = ItemKNN(10, exact=False).fit(train)
    graph = model.similarity_
    users = train.users_with_ratings()[:20]
    return _as_json_bytes(
        {
            "n_items": int(train.n_items),
            "nnz": int(graph.nnz),
            "indptr": graph.indptr.tolist(),
            "indices": graph.indices.tolist(),
            "data": graph.data.tolist(),
            "top5": model.recommend_block(users, 5).tolist(),
        }
    )


FIXTURES = {
    "table4_ml100k.json": generate_table4,
    "figure6_ml100k.json": generate_figure6,
    "ml100k_tiny_metrics.json": generate_tiny_metrics,
    "ml100k_tiny_top5.csv": generate_tiny_top5,
    "oslg_tiny.json": generate_oslg_tiny,
    "sparse_knn_tiny.json": generate_sparse_knn_tiny,
}

ENVIRONMENT_FILE = "environment.json"


def _major_minor(version: str) -> str:
    return ".".join(version.split(".")[:2])


def _environment() -> dict[str, str]:
    """The float-determinism-relevant environment the fixtures were built in.

    Byte-exact float output is only guaranteed against the same numpy/scipy
    line (SVD results can differ in the last ulp across BLAS/LAPACK builds),
    so drift is enforced per ``major.minor`` of both libraries.
    """
    return {
        "numpy": _major_minor(numpy.__version__),
        "scipy": _major_minor(scipy.__version__),
    }


def _check(name: str) -> None:
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        "`PYTHONPATH=src python tests/test_golden_master.py --regenerate`"
    )
    recorded = json.loads((GOLDEN_DIR / ENVIRONMENT_FILE).read_text(encoding="utf-8"))
    current = _environment()
    if recorded != current:
        pytest.skip(
            f"golden fixtures were generated under {recorded} but this "
            f"environment runs {current}; byte equality of float outputs is "
            "only guaranteed within one numpy/scipy line — regenerate the "
            "fixtures here to re-arm the gate for this environment"
        )
    regenerated = FIXTURES[name]()
    committed = path.read_bytes()
    assert regenerated == committed, (
        f"{name} drifted from its committed golden master. If this change is "
        "intentional, refresh the fixtures with `PYTHONPATH=src python "
        "tests/test_golden_master.py --regenerate` and commit the diff."
    )


def test_table4_golden_master():
    _check("table4_ml100k.json")


def test_figure6_golden_master():
    _check("figure6_ml100k.json")


def test_ml100k_tiny_metrics_golden_master():
    _check("ml100k_tiny_metrics.json")


def test_ml100k_tiny_top5_golden_master():
    _check("ml100k_tiny_top5.csv")


def test_oslg_tiny_golden_master():
    _check("oslg_tiny.json")


def test_sparse_knn_tiny_golden_master():
    _check("sparse_knn_tiny.json")


def regenerate() -> None:
    """Rewrite every fixture from the current code (reviewable via git diff)."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, generate in FIXTURES.items():
        (GOLDEN_DIR / name).write_bytes(generate())
        print(f"wrote {GOLDEN_DIR / name}")
    (GOLDEN_DIR / ENVIRONMENT_FILE).write_bytes(_as_json_bytes(_environment()))
    print(f"wrote {GOLDEN_DIR / ENVIRONMENT_FILE}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        print("pass --regenerate to rewrite the fixtures")
