"""Tests for the plain-text table renderer."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_float, format_table


def test_format_float_digits():
    assert format_float(0.123456, 3) == "0.123"
    assert format_float(2.0, 2) == "2.00"


def test_format_table_contains_headers_and_rows():
    text = format_table(["name", "value"], [["a", 1], ["b", 2]])
    assert "name" in text and "value" in text
    assert "a" in text and "b" in text
    lines = text.splitlines()
    assert len(lines) == 4  # header + separator + 2 rows


def test_format_table_includes_title():
    text = format_table(["x"], [[1]], title="My title")
    assert text.splitlines()[0] == "My title"


def test_format_table_formats_floats():
    text = format_table(["v"], [[0.123456789]], float_digits=3)
    assert "0.123" in text
    assert "0.1234" not in text


def test_format_table_rejects_mismatched_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_alignment_is_consistent():
    text = format_table(["col", "metric"], [["x", 1.0], ["longer", 2.0]])
    lines = text.splitlines()
    # All data lines have the same width because of the padding.
    assert len(lines[0]) == len(lines[2]) == len(lines[3])
