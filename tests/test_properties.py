"""Hypothesis property tests: top-N tie-break invariants and sharded equivalence.

Two families of properties back the batched/parallel engine:

* the canonical tie-breaking contract of :mod:`repro.utils.topn`
  (decreasing score, increasing index on ties, non-finite never selected,
  ``-1`` right-padding) checked against a brute-force reference ordering;
* batch-vs-serial-vs-parallel equivalence — splitting any score matrix into
  arbitrary user blocks and fanning the blocks out to any number of workers
  reassembles the exact serial result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.dataset import RatingDataset
from repro.parallel import SerialExecutor, ThreadExecutor
from repro.recommenders.popularity import MostPopular
from repro.utils.rng import spawn_seed_sequences
from repro.utils.topn import iter_user_blocks, top_n_indices, top_n_matrix

FAST = settings(max_examples=40, deadline=None)
SLOWER = settings(max_examples=15, deadline=None)

#: Scores drawn from a tiny value pool so exact ties are the norm, plus the
#: non-finite values the selection must never pick.
TIED_SCORES = st.one_of(
    st.integers(-3, 3).map(float),
    st.sampled_from([np.inf, -np.inf, np.nan]),
)


def reference_top_n(scores: np.ndarray, n: int) -> np.ndarray:
    """Brute-force canonical ordering: (-score, index) over finite entries."""
    finite = np.flatnonzero(np.isfinite(scores))
    order = finite[np.lexsort((finite, -scores[finite]))]
    return order[:n].astype(np.int64)


# --------------------------------------------------------------------------- #
# top_n_indices / top_n_matrix tie-break invariants
# --------------------------------------------------------------------------- #
@FAST
@given(
    scores=hnp.arrays(dtype=np.float64, shape=st.integers(0, 60), elements=TIED_SCORES),
    n=st.integers(1, 70),
)
def test_top_n_indices_matches_reference_ordering(scores, n):
    got = top_n_indices(scores, n)
    np.testing.assert_array_equal(got, reference_top_n(scores, n))


@FAST
@given(
    scores=hnp.arrays(dtype=np.float64, shape=st.integers(1, 60), elements=TIED_SCORES),
    n=st.integers(1, 70),
)
def test_top_n_indices_stability_and_exclusion_invariants(scores, n):
    got = top_n_indices(scores, n)
    # Never a non-finite entry, never a duplicate, never more than n.
    assert got.size <= n
    assert np.isfinite(scores[got]).all()
    assert len(set(got.tolist())) == got.size
    # Decreasing score; exact ties ordered by increasing index.
    picked = scores[got]
    assert (np.diff(picked) <= 0).all()
    for left, right in zip(got[:-1], got[1:]):
        if scores[left] == scores[right]:
            assert left < right


@FAST
@given(
    scores=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(0, 12), st.integers(1, 40)),
        elements=TIED_SCORES,
    ),
    n=st.integers(1, 45),
)
def test_top_n_matrix_rows_equal_per_vector_selection_with_padding(scores, n):
    got = top_n_matrix(scores, n)
    assert got.shape == (scores.shape[0], n)
    for row in range(scores.shape[0]):
        expected = reference_top_n(scores[row], n)
        np.testing.assert_array_equal(got[row, : expected.size], expected)
        # Right-padding is -1 and nothing but -1.
        assert (got[row, expected.size:] == -1).all()


@FAST
@given(n_users=st.integers(0, 200), block_size=st.integers(1, 50))
def test_iter_user_blocks_partitions_the_user_range(n_users, block_size):
    blocks = list(iter_user_blocks(n_users, block_size))
    assert all(1 <= b.size <= block_size for b in blocks)
    if blocks:
        np.testing.assert_array_equal(np.concatenate(blocks), np.arange(n_users))
    else:
        assert n_users == 0


# --------------------------------------------------------------------------- #
# Batch vs serial vs parallel equivalence
# --------------------------------------------------------------------------- #
class _BlockTopN:
    """Block task over a fixed score matrix (the sharded engine in miniature)."""

    def __init__(self, scores: np.ndarray, n: int) -> None:
        self.scores = scores
        self.n = n

    def __call__(self, users: np.ndarray) -> np.ndarray:
        return top_n_matrix(self.scores[users], self.n)


@SLOWER
@given(
    scores=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 25), st.integers(1, 30)),
        elements=TIED_SCORES,
    ),
    n=st.integers(1, 8),
    block_size=st.integers(1, 30),
    n_jobs=st.sampled_from([1, 2, 4]),
)
def test_blocked_parallel_selection_reassembles_serial_result(
    scores, n, block_size, n_jobs
):
    n_users = scores.shape[0]
    full = top_n_matrix(scores, n)
    blocks = list(iter_user_blocks(n_users, block_size))
    task = _BlockTopN(scores, n)
    for executor in (SerialExecutor(), ThreadExecutor(n_jobs)):
        out = np.empty_like(full)
        for users, rows in zip(blocks, executor.map_blocks(task, blocks)):
            out[users] = rows
        np.testing.assert_array_equal(out, full)


@st.composite
def small_interaction_sets(draw):
    n_users = draw(st.integers(2, 12))
    n_items = draw(st.integers(3, 15))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n_users - 1), st.integers(0, n_items - 1)),
            min_size=n_users,  # at least ~one rating somewhere per user
            max_size=n_users * n_items // 2,
        )
    )
    triples = [(u, i, float(draw(st.integers(1, 5)))) for u, i in sorted(pairs)]
    return n_users, n_items, triples


@SLOWER
@given(
    data=small_interaction_sets(),
    n=st.integers(1, 6),
    block_size=st.integers(1, 16),
    n_jobs=st.sampled_from([1, 2, 3]),
)
def test_recommender_batch_serial_parallel_equivalence(data, n, block_size, n_jobs):
    n_users, n_items, triples = data
    dataset = RatingDataset(
        np.array([u for u, _, _ in triples], dtype=np.int64),
        np.array([i for _, i, _ in triples], dtype=np.int64),
        np.array([r for _, _, r in triples], dtype=np.float64),
        n_users=n_users,
        n_items=n_items,
        name="fuzz",
    )
    model = MostPopular().fit(dataset)

    # Reference: the historical one-user-at-a-time loop.
    loop = np.full((n_users, n), -1, dtype=np.int64)
    for user in range(n_users):
        items = model.recommend(user, n)
        loop[user, : items.size] = items

    batched = model.recommend_all(n, block_size=block_size).items
    np.testing.assert_array_equal(batched, loop)
    parallel = model.recommend_all(
        n, block_size=block_size, executor=ThreadExecutor(n_jobs)
    ).items
    np.testing.assert_array_equal(parallel, loop)


@FAST
@given(seed=st.integers(0, 2**32 - 1), count=st.integers(0, 20))
def test_spawn_seed_sequences_are_prefix_stable(seed, count):
    longer = spawn_seed_sequences(seed, count + 5)
    for position, seq in enumerate(spawn_seed_sequences(seed, count)):
        assert (
            np.random.default_rng(seq).integers(0, 2**32, 4).tolist()
            == np.random.default_rng(longer[position]).integers(0, 2**32, 4).tolist()
        )


# --------------------------------------------------------------------------- #
# Scale layer: chunked ingestion and sparse KNN equivalence
# --------------------------------------------------------------------------- #
def _random_interactions(rng: np.random.Generator, n_rows: int):
    """Raw (user, item, rating) triples with repeats and mixed id types."""
    rows = []
    for _ in range(n_rows):
        user = int(rng.integers(0, 8))
        item = int(rng.integers(0, 10))
        rows.append(
            (
                f"u{user}" if user % 2 else user,
                f"i{item}" if item % 3 == 0 else item,
                float(rng.integers(1, 6)),
            )
        )
    return rows


@SLOWER
@given(
    seed=st.integers(0, 2**16),
    n_rows=st.integers(1, 60),
    chunk_size=st.integers(1, 24),
    split_point=st.integers(0, 60),
)
def test_chunked_ingestion_bit_identical_to_in_memory(seed, n_rows, chunk_size, split_point):
    """Any shard size — and any one-append split — rebuilds the same dataset."""
    import tempfile
    from pathlib import Path

    from repro.data.outofcore import ingest_csv, load_outofcore

    rows = _random_interactions(np.random.default_rng(seed), n_rows)
    reference = RatingDataset.from_interactions(rows)
    split_point = min(split_point, n_rows)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        first = tmp_path / "first.csv"
        first.write_text(
            "".join(f"{u},{i},{r}\n" for u, i, r in rows[:split_point]), encoding="utf-8"
        )
        second = tmp_path / "second.csv"
        second.write_text(
            "".join(f"{u},{i},{r}\n" for u, i, r in rows[split_point:]), encoding="utf-8"
        )
        store = tmp_path / "store"
        if split_point:
            ingest_csv(first, store, chunk_size=chunk_size)
        if split_point < n_rows:
            ingest_csv(second, store, chunk_size=chunk_size, append=bool(split_point))
        loaded = load_outofcore(store)

    assert loaded.user_ids == reference.user_ids
    assert loaded.item_ids == reference.item_ids
    np.testing.assert_array_equal(loaded.user_indices, reference.user_indices)
    np.testing.assert_array_equal(loaded.item_indices, reference.item_indices)
    np.testing.assert_array_equal(loaded.ratings, reference.ratings)


@SLOWER
@given(
    seed=st.integers(0, 2**16),
    n_users=st.integers(3, 12),
    n_items=st.integers(4, 16),
    n_rows=st.integers(8, 80),
    k=st.integers(1, 6),
)
def test_scan_mode_item_knn_matches_exact_on_random_data(seed, n_users, n_items, n_rows, k):
    """The blocked gram scan is the exact path in a sparse container."""
    from scipy import sparse

    from repro.recommenders.knn import ItemKNN

    rng = np.random.default_rng(seed)
    dataset = RatingDataset(
        rng.integers(0, n_users, size=n_rows),
        rng.integers(0, n_items, size=n_rows),
        rng.integers(1, 6, size=n_rows).astype(np.float64),
        n_users=n_users,
        n_items=n_items,
    )
    exact = ItemKNN(k).fit(dataset)
    scan = ItemKNN(k, exact=False).fit(dataset)
    assert sparse.issparse(scan.similarity_)
    np.testing.assert_array_equal(scan.similarity_.toarray(), exact.similarity_)
    users = dataset.users_with_ratings()
    np.testing.assert_array_equal(
        exact.recommend_block(users, 5), scan.recommend_block(users, 5)
    )


@SLOWER
@given(
    seed=st.integers(0, 2**16),
    n_users=st.integers(3, 12),
    n_items=st.integers(4, 16),
    n_rows=st.integers(8, 80),
)
def test_float32_scoring_stays_within_tolerance(seed, n_users, n_items, n_rows):
    """float32 scores track float64 within the documented FLOAT32_ATOL bound."""
    from repro.recommenders.knn import ItemKNN

    FLOAT32_ATOL = 1e-4  # the documented bound; see tests/test_scale.py

    rng = np.random.default_rng(seed)
    dataset = RatingDataset(
        rng.integers(0, n_users, size=n_rows),
        rng.integers(0, n_items, size=n_rows),
        rng.integers(1, 6, size=n_rows).astype(np.float64),
        n_users=n_users,
        n_items=n_items,
    )
    reference = ItemKNN(5).fit(dataset).predict_matrix()
    scores = ItemKNN(5, dtype="float32").fit(dataset).predict_matrix()
    assert np.max(np.abs(scores - reference)) < FLOAT32_ATOL


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
