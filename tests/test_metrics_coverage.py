"""Tests for the coverage metrics (Coverage@N and Gini@N)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.metrics.coverage import coverage_at_n, gini_at_n, recommendation_frequencies


def test_recommendation_frequencies_counts_occurrences():
    recs = {0: np.array([0, 1]), 1: np.array([1, 2]), 2: np.array([1])}
    np.testing.assert_array_equal(recommendation_frequencies(recs, 4), [1, 3, 1, 0])


def test_recommendation_frequencies_rejects_bad_n_items():
    with pytest.raises(EvaluationError):
        recommendation_frequencies({}, 0)


def test_coverage_fraction_of_distinct_items():
    recs = {0: np.array([0, 1]), 1: np.array([1, 2])}
    assert coverage_at_n(recs, 4) == pytest.approx(3 / 4)


def test_coverage_is_one_when_every_item_recommended():
    recs = {0: np.array([0, 1]), 1: np.array([2, 3])}
    assert coverage_at_n(recs, 4) == pytest.approx(1.0)


def test_coverage_zero_without_recommendations():
    assert coverage_at_n({}, 10) == 0.0


def test_gini_zero_for_perfectly_uniform_frequencies():
    recs = {u: np.array([u]) for u in range(6)}
    assert gini_at_n(recs, 6) == pytest.approx(0.0, abs=1e-12)


def test_gini_close_to_one_for_degenerate_distribution():
    recs = {u: np.array([0]) for u in range(100)}
    value = gini_at_n(recs, 200)
    assert value > 0.99


def test_gini_is_one_when_nothing_recommended():
    assert gini_at_n({}, 10) == 1.0


def test_gini_orders_concentration_levels():
    spread = {u: np.array([u % 10]) for u in range(20)}
    concentrated = {u: np.array([u % 2]) for u in range(20)}
    assert gini_at_n(concentrated, 10) > gini_at_n(spread, 10)


def test_gini_in_unit_interval_for_random_frequencies(rng):
    recs = {u: rng.choice(50, size=5, replace=False) for u in range(30)}
    value = gini_at_n(recs, 50)
    assert 0.0 <= value <= 1.0


def test_gini_matches_closed_form_small_example():
    # Frequencies: [0, 1, 3] over 3 items.
    recs = {0: np.array([1, 2]), 1: np.array([2]), 2: np.array([2])}
    freq_sorted = np.array([0.0, 1.0, 3.0])
    total = freq_sorted.sum()
    j = np.arange(1, 4)
    expected = (3 + 1 - 2 * ((3 + 1 - j) * freq_sorted).sum() / total) / 3
    assert gini_at_n(recs, 3) == pytest.approx(expected)
