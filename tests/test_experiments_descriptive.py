"""Tests for the descriptive experiments: Table II, Figure 1 and Figure 2."""

from __future__ import annotations


from repro.experiments.figure1 import popularity_vs_activity, run_figure1
from repro.experiments.figure2 import FIGURE2_MODELS, preference_histograms, run_figure2
from repro.experiments.table2 import dataset_statistics, run_table2

SCALE = 0.25


def test_run_table2_produces_one_row_per_dataset():
    table = run_table2(datasets=["ml100k", "mt200k"], scale=SCALE)
    assert len(table.rows) == 2
    assert table.headers[0] == "Dataset"
    titles = table.column("Dataset")
    assert titles == ["ML-100K", "MT-200K"]


def test_table2_density_ordering_matches_paper():
    """ML-100K is the densest dataset and MT-200K the sparsest (Table II)."""
    table = run_table2(datasets=["ml100k", "ml1m", "mt200k"], scale=SCALE)
    densities = dict(zip(table.column("Dataset"), table.column("d%")))
    assert densities["ML-100K"] > densities["ML-1M"] > densities["MT-200K"]


def test_table2_statistics_are_consistent(small_split, small_dataset):
    stats = dataset_statistics(
        small_dataset, small_split, title="small", train_ratio=0.5, min_user_ratings=10
    )
    assert stats.n_ratings == small_dataset.n_ratings
    assert 0.0 < stats.density_percent < 100.0
    assert 0.0 < stats.long_tail_percent <= 100.0


def test_figure1_curve_is_decreasing_on_surrogates(small_split):
    """The motivating Figure 1 trend: active users rate less popular items."""
    curve = popularity_vs_activity(small_split.train, n_bins=5, label="small")
    assert len(curve.series.x) >= 2
    assert curve.is_decreasing_overall()


def test_run_figure1_covers_requested_datasets():
    curves, table = run_figure1(datasets=["ml100k"], scale=SCALE, n_bins=5)
    assert len(curves) == 1
    assert curves[0].dataset == "ML-100K"
    assert len(table.rows) == len(curves[0].series.x)


def test_figure2_histograms_have_expected_models(small_split):
    histograms = preference_histograms(small_split.train, n_bins=10, label="small")
    assert set(histograms) == set(FIGURE2_MODELS)
    for hist in histograms.values():
        assert hist.counts.sum() == small_split.train.n_users
        assert 0.0 <= hist.mean <= 1.0


def test_figure2_activity_is_most_skewed(small_split):
    """Figure 2's claim: θA is right-skewed, θG is closer to symmetric."""
    histograms = preference_histograms(small_split.train, label="small")
    assert histograms["thetaA"].skewness > histograms["thetaG"].skewness


def test_figure2_generalized_mean_exceeds_longtail_fraction_mean(small_split):
    """θG has a larger mean than the sparsity-biased θN on every dataset."""
    histograms = preference_histograms(small_split.train, label="small")
    assert histograms["thetaG"].mean > histograms["thetaN"].mean


def test_run_figure2_table_rows():
    results, table = run_figure2(datasets=["ml100k"], scale=SCALE)
    assert set(results) == {"ml100k"}
    assert len(table.rows) == len(FIGURE2_MODELS)
