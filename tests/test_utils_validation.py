"""Tests for argument validation helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_choices,
    check_positive_int,
    check_probability,
    check_unit_interval,
)


def test_check_positive_int_accepts_positive_values():
    assert check_positive_int(5, "n") == 5


@pytest.mark.parametrize("value", [0, -1, 2.5, "3", True])
def test_check_positive_int_rejects_invalid_values(value):
    with pytest.raises(ConfigurationError):
        check_positive_int(value, "n")


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
def test_check_unit_interval_accepts_valid_values(value):
    assert check_unit_interval(value, "theta") == pytest.approx(float(value))


@pytest.mark.parametrize("value", [-0.1, 1.1, "abc", None])
def test_check_unit_interval_rejects_invalid_values(value):
    with pytest.raises(ConfigurationError):
        check_unit_interval(value, "theta")


def test_check_probability_rejects_boundaries():
    with pytest.raises(ConfigurationError):
        check_probability(0.0, "p")
    with pytest.raises(ConfigurationError):
        check_probability(1.0, "p")
    assert check_probability(0.3, "p") == pytest.approx(0.3)


def test_check_in_choices():
    assert check_in_choices("dyn", "coverage", ["dyn", "stat"]) == "dyn"
    with pytest.raises(ConfigurationError):
        check_in_choices("bogus", "coverage", ["dyn", "stat"])
