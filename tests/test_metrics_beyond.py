"""Tests for the beyond-accuracy metrics (EPC, ARP, personalization, ILD)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.metrics.beyond import (
    average_recommendation_popularity,
    expected_popularity_complement,
    intra_list_dissimilarity,
    personalization,
)
from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender


def test_epc_is_zero_for_the_most_popular_item_only():
    popularity = np.array([100, 10, 1])
    recs = {0: np.array([0])}
    assert expected_popularity_complement(recs, popularity) == pytest.approx(0.0)


def test_epc_increases_for_rare_items():
    popularity = np.array([100, 10, 1])
    rare = {0: np.array([2])}
    mid = {0: np.array([1])}
    assert expected_popularity_complement(rare, popularity) > expected_popularity_complement(
        mid, popularity
    )


def test_epc_rejects_empty_popularity():
    with pytest.raises(EvaluationError):
        expected_popularity_complement({0: np.array([0])}, np.array([]))


def test_epc_empty_recommendations_is_zero():
    assert expected_popularity_complement({}, np.array([5, 3])) == 0.0


def test_arp_is_the_mean_popularity():
    popularity = np.array([100, 10, 4])
    recs = {0: np.array([0, 1]), 1: np.array([2, 2])}
    expected = (100 + 10 + 4 + 4) / 4
    assert average_recommendation_popularity(recs, popularity) == pytest.approx(expected)


def test_arp_empty_is_zero():
    assert average_recommendation_popularity({}, np.array([1.0])) == 0.0


def test_personalization_zero_for_identical_lists():
    recs = {u: np.array([1, 2, 3]) for u in range(5)}
    assert personalization(recs) == pytest.approx(0.0)


def test_personalization_one_for_disjoint_lists():
    recs = {u: np.array([3 * u, 3 * u + 1, 3 * u + 2]) for u in range(4)}
    assert personalization(recs) == pytest.approx(1.0)


def test_personalization_intermediate_for_overlap():
    recs = {0: np.array([1, 2, 3]), 1: np.array([1, 2, 4])}
    value = personalization(recs)
    assert 0.0 < value < 1.0


def test_personalization_fewer_than_two_users_is_zero():
    assert personalization({0: np.array([1, 2])}) == 0.0


def test_personalization_sampling_is_deterministic():
    rng = np.random.default_rng(0)
    recs = {u: rng.choice(100, size=5, replace=False) for u in range(60)}
    a = personalization(recs, max_pairs=100, seed=1)
    b = personalization(recs, max_pairs=100, seed=1)
    assert a == b


def test_pop_is_less_personalized_than_random(small_split):
    pop = MostPopular().fit(small_split.train).recommend_all(5).as_dict()
    rand = RandomRecommender(seed=0).fit(small_split.train).recommend_all(5).as_dict()
    assert personalization(pop) < personalization(rand)


def test_intra_list_dissimilarity_bounds(small_split, tiny_dataset):
    recs = MostPopular().fit(small_split.train).recommend_all(5).as_dict()
    value = intra_list_dissimilarity(recs, small_split.train)
    assert 0.0 <= value <= 1.0


def test_intra_list_dissimilarity_single_item_lists_are_skipped(tiny_dataset):
    recs = {0: np.array([1]), 1: np.array([2])}
    assert intra_list_dissimilarity(recs, tiny_dataset) == 0.0


def test_intra_list_dissimilarity_higher_for_unrelated_items(tiny_dataset):
    # Items 1 and 2 are co-rated by user 0 only; items 4 and 5 are both rated
    # only by user 3 (perfectly co-rated); {4, 5} should look more similar.
    related = {0: np.array([4, 5])}
    unrelated = {0: np.array([1, 3])}
    assert intra_list_dissimilarity(unrelated, tiny_dataset) >= intra_list_dissimilarity(
        related, tiny_dataset
    )
