"""Tests for the long-tail promotion metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.metrics.longtail import lt_accuracy_at_n, stratified_recall_at_n


def test_lt_accuracy_counts_tail_fraction():
    mask = np.array([False, False, True, True, True])
    recs = {0: np.array([0, 2, 3]), 1: np.array([0, 1, 4])}
    # User 0: 2/3 tail items (over n=3); user 1: 1/3.
    assert lt_accuracy_at_n(recs, mask, 3) == pytest.approx((2 / 3 + 1 / 3) / 2)


def test_lt_accuracy_zero_when_only_head_items():
    mask = np.array([False, False, True])
    recs = {0: np.array([0, 1])}
    assert lt_accuracy_at_n(recs, mask, 2) == 0.0


def test_lt_accuracy_one_when_only_tail_items():
    mask = np.array([True, True, True])
    recs = {0: np.array([0, 1, 2])}
    assert lt_accuracy_at_n(recs, mask, 3) == pytest.approx(1.0)


def test_lt_accuracy_handles_empty_recommendations():
    mask = np.array([True, False])
    assert lt_accuracy_at_n({0: np.array([], dtype=int)}, mask, 5) == 0.0


def test_lt_accuracy_rejects_bad_n():
    with pytest.raises(EvaluationError):
        lt_accuracy_at_n({}, np.array([True]), 0)


def test_stratified_recall_weights_rare_hits_more():
    popularity = np.array([100, 1, 100, 1])
    relevant = {0: np.array([0, 1])}
    hit_popular = {0: np.array([0, 9, 9])}
    hit_rare = {0: np.array([1, 9, 9])}
    assert stratified_recall_at_n(hit_rare, relevant, popularity) > stratified_recall_at_n(
        hit_popular, relevant, popularity
    )


def test_stratified_recall_is_one_for_perfect_retrieval():
    popularity = np.array([5, 50, 500])
    relevant = {0: np.array([0, 1]), 1: np.array([2])}
    recs = {0: np.array([0, 1]), 1: np.array([2])}
    assert stratified_recall_at_n(recs, relevant, popularity) == pytest.approx(1.0)


def test_stratified_recall_is_zero_without_hits():
    popularity = np.array([5, 50])
    relevant = {0: np.array([0])}
    recs = {0: np.array([1])}
    assert stratified_recall_at_n(recs, relevant, popularity) == 0.0


def test_stratified_recall_beta_zero_reduces_to_plain_recall_aggregate():
    popularity = np.array([100, 1, 10])
    relevant = {0: np.array([0, 1]), 1: np.array([2])}
    recs = {0: np.array([0]), 1: np.array([2])}
    # With beta=0 every relevant item has weight 1 -> 2 hits / 3 relevant.
    assert stratified_recall_at_n(recs, relevant, popularity, beta=0.0) == pytest.approx(2 / 3)


def test_stratified_recall_handles_zero_popularity_items():
    popularity = np.array([0, 10])
    relevant = {0: np.array([0])}
    recs = {0: np.array([0])}
    value = stratified_recall_at_n(recs, relevant, popularity)
    assert np.isfinite(value)
    assert value == pytest.approx(1.0)


def test_stratified_recall_rejects_negative_beta():
    with pytest.raises(EvaluationError):
        stratified_recall_at_n({}, {}, np.array([1.0]), beta=-0.5)


def test_stratified_recall_empty_relevance_is_zero():
    assert stratified_recall_at_n({}, {0: np.array([], dtype=int)}, np.array([1.0])) == 0.0
