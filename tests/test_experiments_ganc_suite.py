"""Tests for the GANC-centric experiments: Figures 3-5 and the ablations."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_ordering_ablation, run_oslg_vs_greedy
from repro.experiments.figure3_4 import run_figure3, run_figure4, run_sample_size_sweep
from repro.experiments.figure5 import informed_vs_uninformed_gap, run_figure5

SCALE = 0.2


@pytest.fixture(scope="module")
def sweep_result():
    return run_sample_size_sweep(
        "ml1m",
        sample_sizes=(20, 120),
        accuracy_recommenders=("pop", "psvd10"),
        scale=SCALE,
        seed=0,
    )


def test_sample_size_sweep_produces_all_points(sweep_result):
    points, table = sweep_result
    assert len(points) == 4
    assert len(table.rows) == 4
    for point in points:
        assert 0.0 <= point.f_measure <= 1.0
        assert 0.0 <= point.coverage <= 1.0


def test_sample_size_sweep_coverage_increases_with_s(sweep_result):
    """The Figure 3 trend: larger S -> larger coverage, per accuracy model."""
    points, _ = sweep_result
    by_model: dict[str, dict[int, float]] = {}
    for point in points:
        by_model.setdefault(point.accuracy_recommender, {})[point.sample_size] = point.coverage
    for coverages in by_model.values():
        assert coverages[120] >= coverages[20] - 1e-9


def test_figure3_and_figure4_wrappers_run():
    points3, _ = run_figure3(sample_sizes=(20,), accuracy_recommenders=("pop",), scale=SCALE)
    points4, _ = run_figure4(sample_sizes=(20,), accuracy_recommenders=("pop",), scale=SCALE)
    assert len(points3) == 1 and len(points4) == 1


@pytest.fixture(scope="module")
def figure5_cells():
    cells, table = run_figure5(
        dataset_key="ml1m",
        accuracy_recommenders=("pop",),
        preference_models=("thetaT", "thetaG", "thetaR"),
        n_values=(5,),
        sample_size=60,
        scale=SCALE,
        seed=0,
    )
    return cells, table


def test_figure5_produces_reference_and_variant_rows(figure5_cells):
    cells, table = figure5_cells
    preferences = {cell.preference for cell in cells}
    assert "ARec" in preferences
    assert {"thetaT", "thetaG", "thetaR"} <= preferences
    assert len(table.rows) == len(cells)


def test_figure5_arec_alone_has_best_accuracy_and_worst_coverage(figure5_cells):
    cells, _ = figure5_cells
    reference = next(c for c in cells if c.preference == "ARec")
    variants = [c for c in cells if c.preference != "ARec"]
    assert all(reference.report.f_measure >= c.report.f_measure - 1e-9 for c in variants)
    assert all(reference.report.coverage <= c.report.coverage + 1e-9 for c in variants)


def test_figure5_gap_helper(figure5_cells):
    cells, _ = figure5_cells
    gap = informed_vs_uninformed_gap(cells, metric="coverage")
    assert isinstance(gap, float)
    assert informed_vs_uninformed_gap([], metric="f_measure") == 0.0


def test_oslg_vs_greedy_ablation_runs():
    rows, table = run_oslg_vs_greedy(
        dataset_key="ml100k", arec_name="pop", sample_sizes=(10, 40), scale=SCALE
    )
    assert len(rows) == 3  # exact + two sample sizes
    labels = [row.configuration for row in rows]
    assert labels[0].startswith("LocallyGreedy")
    assert all(row.seconds >= 0 for row in rows)
    # The exact pass covers at least as much of the item space as the most
    # aggressive sampling configuration.
    exact = rows[0].report.coverage
    sampled = min(row.report.coverage for row in rows[1:])
    assert exact >= sampled - 1e-9


def test_ordering_ablation_runs():
    rows, table = run_ordering_ablation(dataset_key="ml100k", arec_name="pop", scale=SCALE)
    assert [row.configuration for row in rows] == ["increasing", "arbitrary", "decreasing"]
    assert len(table.rows) == 3
    for row in rows:
        assert 0.0 <= row.report.coverage <= 1.0
