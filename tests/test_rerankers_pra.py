"""Tests for the PRA (personalized ranking adaptation) re-ranker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.recommenders.puresvd import PureSVD
from repro.rerankers.pra import PersonalizedRankingAdaptation


@pytest.fixture(scope="module")
def fitted_base(medium_split):
    return PureSVD(n_factors=12).fit(medium_split.train)


def test_constructor_validation(fitted_base):
    with pytest.raises(ConfigurationError):
        PersonalizedRankingAdaptation(fitted_base, exchangeable_size=0)
    with pytest.raises(ConfigurationError):
        PersonalizedRankingAdaptation(fitted_base, max_steps=-1)
    with pytest.raises(ConfigurationError):
        PersonalizedRankingAdaptation(fitted_base, sample_size=0)


def test_name_template(fitted_base, medium_split):
    reranker = PersonalizedRankingAdaptation(fitted_base, exchangeable_size=20)
    reranker.fit(medium_split.train)
    assert reranker.name == "PRA(PureSVD, 20)"


def test_tendencies_are_estimated_per_user(fitted_base, medium_split):
    reranker = PersonalizedRankingAdaptation(fitted_base, seed=0).fit(medium_split.train)
    assert reranker._targets.shape == (medium_split.train.n_users,)
    assert np.all((reranker._targets >= 0.0) & (reranker._targets <= 1.0))
    assert np.all(reranker._tolerances >= 0.0)


def test_recommendations_are_valid_sets(fitted_base, medium_split):
    reranker = PersonalizedRankingAdaptation(fitted_base, seed=0).fit(medium_split.train)
    top = reranker.recommend_all(5)
    for user in range(0, top.n_users, 7):
        row = top.for_user(user)
        assert row.size == 5
        assert len(set(row.tolist())) == 5
        seen = set(medium_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(row.tolist()))


def test_swaps_only_use_the_exchangeable_set(fitted_base, medium_split):
    reranker = PersonalizedRankingAdaptation(
        fitted_base, exchangeable_size=10, seed=0
    ).fit(medium_split.train)
    for user in (0, 11, 42):
        allowed = set(
            fitted_base.recommend(
                user, 5 + 10, exclude_items=medium_split.train.user_items(user)
            ).tolist()
        )
        recs = set(reranker.rerank_user(user, 5).tolist())
        assert recs.issubset(allowed)


def test_zero_steps_returns_base_ranking(fitted_base, medium_split):
    reranker = PersonalizedRankingAdaptation(
        fitted_base, exchangeable_size=10, max_steps=0, seed=0
    ).fit(medium_split.train)
    for user in (3, 19):
        base = fitted_base.recommend(user, 5)
        np.testing.assert_array_equal(np.sort(reranker.rerank_user(user, 5)), np.sort(base))


def test_adaptation_moves_lists_toward_user_tendency(fitted_base, medium_split):
    """After adaptation, the average list novelty is closer to the target."""
    reranker = PersonalizedRankingAdaptation(
        fitted_base, exchangeable_size=20, max_steps=20, seed=0
    ).fit(medium_split.train)
    novelty = reranker._novelty
    improved = 0
    total = 0
    for user in range(0, medium_split.train.n_users, 5):
        base = fitted_base.recommend(user, 5)
        adapted = reranker.rerank_user(user, 5)
        if base.size < 5 or adapted.size < 5:
            continue
        target = reranker._targets[user]
        before = abs(float(novelty[base].mean()) - target)
        after = abs(float(novelty[adapted].mean()) - target)
        improved += int(after <= before + 1e-9)
        total += 1
    assert improved / total > 0.9


def test_reranker_is_deterministic(fitted_base, medium_split):
    a = PersonalizedRankingAdaptation(fitted_base, seed=5).fit(medium_split.train).recommend_all(5)
    b = PersonalizedRankingAdaptation(fitted_base, seed=5).fit(medium_split.train).recommend_all(5)
    np.testing.assert_array_equal(a.items, b.items)
