"""Batch-vs-loop equivalence of the vectorized scoring engine.

The batched paths (``predict_matrix`` / ``unit_scores_batch`` /
``recommend_all`` / the GANC blocked phases) must reproduce the per-user
paths exactly: identical top-N item ids (including ``-1`` padding rows and
stable index tie-breaking) for every registered recommender and both GANC
optimizers.  Raw float score surfaces are additionally checked to BLAS
reproducibility (a batch-of-1 matrix product may differ from a batched one
by a few ulp, which never changes the selected items).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.random import RandomCoverage
from repro.coverage.static import StaticCoverage
from repro.data.dataset import RatingDataset
from repro.ganc.framework import GANC, GANCConfig
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.oslg import OSLGOptimizer
from repro.recommenders.base import Recommender
from repro.recommenders.registry import RECOMMENDER_REGISTRY, make_recommender
from repro.utils.topn import top_n_indices, top_n_matrix

ALL_RECOMMENDERS = sorted(RECOMMENDER_REGISTRY)
N = 5


@pytest.fixture(scope="module")
def fitted_models(small_split):
    """Every registered recommender fitted once on the shared small split."""
    return {
        name: make_recommender(name).fit(small_split.train)
        for name in ALL_RECOMMENDERS
    }


def _loop_recommend_all(model: Recommender, n: int) -> np.ndarray:
    out = np.full((model.train_data.n_users, n), -1, dtype=np.int64)
    for user in range(model.train_data.n_users):
        items = model.recommend(user, n)
        out[user, : items.size] = items
    return out


# --------------------------------------------------------------------- #
# Canonical selection helpers
# --------------------------------------------------------------------- #
def test_top_n_matrix_matches_top_n_indices_with_ties(rng):
    # Integer-valued scores force many exact ties; sprinkle exclusions in.
    scores = rng.integers(0, 4, size=(40, 60)).astype(np.float64)
    scores[rng.random(scores.shape) < 0.3] = -np.inf
    batch = top_n_matrix(scores, 7)
    for row in range(scores.shape[0]):
        expected = top_n_indices(scores[row], 7)
        np.testing.assert_array_equal(batch[row, : expected.size], expected)
        assert np.all(batch[row, expected.size :] == -1)


def test_top_n_matrix_pads_rows_without_candidates():
    scores = np.full((3, 4), -np.inf)
    scores[1, 2] = 1.0
    out = top_n_matrix(scores, 3)
    np.testing.assert_array_equal(out[0], [-1, -1, -1])
    np.testing.assert_array_equal(out[1], [2, -1, -1])


def test_top_n_matrix_n_larger_than_items():
    scores = np.array([[1.0, 3.0, 2.0]])
    np.testing.assert_array_equal(top_n_matrix(scores, 5), [[1, 2, 0, -1, -1]])


def test_user_items_batch_matches_per_user(small_split):
    train = small_split.train
    users = np.arange(train.n_users)
    rows, items = train.user_items_batch(users)
    for user in users:
        np.testing.assert_array_equal(items[rows == user], train.user_items(int(user)))


# --------------------------------------------------------------------- #
# Recommender batch paths
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_RECOMMENDERS)
def test_recommend_all_matches_per_user_loop(fitted_models, name):
    model = fitted_models[name]
    batch = model.recommend_all(N)
    np.testing.assert_array_equal(batch.items, _loop_recommend_all(model, N))


@pytest.mark.parametrize("name", ALL_RECOMMENDERS)
def test_recommend_all_is_block_size_invariant(fitted_models, name):
    model = fitted_models[name]
    reference = model.recommend_all(N).items
    for block_size in (1, 7, 64):
        np.testing.assert_array_equal(
            model.recommend_all(N, block_size=block_size).items, reference
        )


@pytest.mark.parametrize("name", ALL_RECOMMENDERS)
def test_unit_scores_batch_matches_per_user(fitted_models, name):
    model = fitted_models[name]
    users = np.arange(model.train_data.n_users)
    batch = model.unit_scores_batch(users, N)
    loop = np.stack([model.unit_scores(int(u), N) for u in users])
    assert batch.shape == loop.shape
    # Bit-exact except for BLAS batch-of-1 vs batched kernel differences.
    np.testing.assert_allclose(batch, loop, rtol=0.0, atol=1e-12)


@pytest.mark.parametrize("name", ["pop", "rand", "itemknn", "userknn"])
def test_unit_scores_batch_bit_exact_for_non_gemm_models(fitted_models, name):
    model = fitted_models[name]
    users = np.arange(model.train_data.n_users)
    batch = model.unit_scores_batch(users, N)
    loop = np.stack([model.unit_scores(int(u), N) for u in users])
    np.testing.assert_array_equal(batch, loop)


@pytest.mark.parametrize("name", ALL_RECOMMENDERS)
def test_predict_matrix_matches_base_fallback(fitted_models, name):
    model = fitted_models[name]
    users = np.arange(0, model.train_data.n_users, 3)
    vectorized = model.predict_matrix(users)
    fallback = Recommender.predict_matrix(model, users)
    np.testing.assert_allclose(vectorized, fallback, rtol=0.0, atol=1e-12)


def test_recommend_accepts_precomputed_scores(fitted_models):
    model = fitted_models["psvd10"]
    user = 4
    row = model.predict_matrix(np.asarray([user]))[0]
    np.testing.assert_array_equal(
        model.recommend(user, N, scores=row), model.recommend(user, N)
    )
    # The precomputed row is not mutated by the exclusion masking.
    assert np.all(np.isfinite(row))


def test_padding_rows_match_when_candidates_run_out():
    # User 0 rates 5 of 6 items: asking for n=4 leaves a single candidate
    # and three -1 padding slots on both paths.
    triples = [(0, i, 4.0) for i in range(5)] + [(1, 0, 3.0), (1, 5, 2.0)]
    data = RatingDataset.from_interactions(triples)
    model = make_recommender("pop").fit(data)
    batch = model.recommend_all(4)
    np.testing.assert_array_equal(batch.items, _loop_recommend_all(model, 4))
    assert np.array_equal(batch.items[0][1:], [-1, -1, -1])


def test_tie_breaking_prefers_lower_item_index(tiny_dataset):
    class ConstantScores(Recommender):
        def fit(self, train):
            self._mark_fitted(train)
            return self

        def predict_scores(self, user, items):
            return np.zeros(np.asarray(items).size, dtype=np.float64)

    model = ConstantScores().fit(tiny_dataset)
    batch = model.recommend_all(3)
    np.testing.assert_array_equal(batch.items, _loop_recommend_all(model, 3))
    # All scores equal: user 3 rated {0, 4, 5}, so the lowest unseen indices win.
    np.testing.assert_array_equal(batch.items[3], [1, 2, 3])


# --------------------------------------------------------------------- #
# GANC optimizers
# --------------------------------------------------------------------- #
def _unit_providers(model, train, n):
    def accuracy(user: int) -> np.ndarray:
        return model.unit_scores(user, n)

    def exclusions(user: int) -> np.ndarray:
        return train.user_items(user)

    return accuracy, exclusions


@pytest.mark.parametrize("coverage_factory", [StaticCoverage, RandomCoverage])
@pytest.mark.parametrize("name", ["pop", "psvd10", "rsvd"])
def test_independent_branch_matches_sequential_loop(small_split, fitted_models, name, coverage_factory):
    train = small_split.train
    model = fitted_models[name]
    coverage = coverage_factory().fit(train)
    rng = np.random.default_rng(5)
    theta = rng.random(train.n_users)
    accuracy, exclusions = _unit_providers(model, train, N)
    optimizer = LocallyGreedyOptimizer(coverage, N)

    batched = optimizer.run_independent(
        theta,
        lambda users: model.unit_scores_batch(users, N),
        train.user_items_batch,
        n_users=train.n_users,
        block_size=17,
    )
    sequential = optimizer.run(theta, accuracy, exclusions, n_users=train.n_users)
    np.testing.assert_array_equal(batched.items, sequential.items)


def test_run_independent_rejects_dynamic_coverage(small_split, fitted_models):
    train = small_split.train
    coverage = DynamicCoverage().fit(train)
    optimizer = LocallyGreedyOptimizer(coverage, N)
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        optimizer.run_independent(
            np.zeros(train.n_users),
            lambda users: np.zeros((users.size, train.n_items)),
            train.user_items_batch,
        )


@pytest.mark.parametrize("name", ["pop", "psvd10"])
def test_oslg_snapshot_phase_matches_per_user_reference(small_split, fitted_models, name):
    train = small_split.train
    model = fitted_models[name]
    rng = np.random.default_rng(9)
    theta = rng.random(train.n_users)
    accuracy, exclusions = _unit_providers(model, train, N)

    batched = OSLGOptimizer(DynamicCoverage().fit(train), N, sample_size=20, seed=3).run(
        theta,
        accuracy,
        exclusions,
        accuracy_matrix=lambda users: model.unit_scores_batch(users, N),
        exclusion_pairs=train.user_items_batch,
        block_size=13,
    )

    # Per-user reference: identical sequential pass (same seed), then the
    # historical one-user-at-a-time snapshot assignment.
    reference_optimizer = OSLGOptimizer(DynamicCoverage().fit(train), N, sample_size=20, seed=3)
    sampled = batched.sampled_users
    out = np.full((train.n_users, N), -1, dtype=np.int64)
    coverage = reference_optimizer.coverage
    greedy = LocallyGreedyOptimizer(coverage, N)
    for user in sampled:
        items = greedy.assign_user(
            int(user), float(theta[user]), accuracy(int(user)), exclusions(int(user))
        )
        out[user, : items.size] = items
        coverage.update(items)
    np.testing.assert_array_equal(out[sampled], batched.top_n.items[sampled])

    sampled_theta = theta[sampled]
    remaining = np.setdiff1d(np.arange(train.n_users), sampled)
    for user in remaining:
        nearest = int(np.argmin(np.abs(sampled_theta - theta[user])))
        items = reference_optimizer._assign_with_snapshot(
            int(user),
            float(theta[user]),
            accuracy(int(user)),
            exclusions(int(user)),
            batched.snapshots[nearest],
        )
        out[user, : items.size] = items
    np.testing.assert_array_equal(out, batched.top_n.items)


def test_oslg_batched_providers_match_stacked_fallback(small_split, fitted_models):
    train = small_split.train
    model = fitted_models["pop"]
    rng = np.random.default_rng(11)
    theta = rng.random(train.n_users)
    accuracy, exclusions = _unit_providers(model, train, N)

    with_batch = OSLGOptimizer(DynamicCoverage().fit(train), N, sample_size=15, seed=4).run(
        theta,
        accuracy,
        exclusions,
        accuracy_matrix=lambda users: model.unit_scores_batch(users, N),
        exclusion_pairs=train.user_items_batch,
    )
    fallback = OSLGOptimizer(DynamicCoverage().fit(train), N, sample_size=15, seed=4).run(
        theta, accuracy, exclusions
    )
    np.testing.assert_array_equal(with_batch.top_n.items, fallback.top_n.items)


@pytest.mark.parametrize("coverage_name", ["static", "dynamic"])
def test_ganc_facade_block_size_invariance(small_split, coverage_name):
    train = small_split.train
    theta = np.random.default_rng(2).random(train.n_users)

    def build(block_size):
        coverage = StaticCoverage() if coverage_name == "static" else DynamicCoverage()
        ganc = GANC(
            make_recommender("pop"),
            theta,
            coverage,
            config=GANCConfig(sample_size=25, seed=0, block_size=block_size),
        )
        return ganc.fit(train).recommend_all(N).items

    reference = build(None)
    np.testing.assert_array_equal(build(9), reference)
    np.testing.assert_array_equal(build(1), reference)
