"""Tests for the Pop and Rand recommenders."""

from __future__ import annotations

import numpy as np

from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender


def test_pop_ranks_by_train_popularity(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    # User 3 has not rated items 1, 2, 3 (popularity 2 each); items 4, 5 are theirs.
    recs = model.recommend(3, 3)
    assert set(recs.tolist()) == {1, 2, 3}
    # The most popular unseen item for user 0 is item 3 (popularity 2).
    assert model.recommend(0, 1)[0] == 3


def test_pop_scores_identical_for_all_users(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    items = np.arange(tiny_dataset.n_items)
    np.testing.assert_allclose(model.predict_scores(0, items), model.predict_scores(1, items))


def test_pop_tie_break_is_deterministic(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    first = model.recommend(3, 3)
    second = MostPopular().fit(tiny_dataset).recommend(3, 3)
    np.testing.assert_array_equal(first, second)
    # Ties (items 1, 2, 3 all have popularity 2) resolve to lower index first.
    assert first.tolist() == sorted(first.tolist())


def test_pop_unit_scores_are_binary_membership(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    scores = model.unit_scores(0, 2)
    assert set(np.unique(scores).tolist()) <= {0.0, 1.0}
    assert scores.sum() == 2
    top = model.recommend(0, 2)
    assert scores[top].min() == 1.0


def test_pop_popularity_property(tiny_dataset):
    model = MostPopular().fit(tiny_dataset)
    np.testing.assert_array_equal(model.popularity, [4, 2, 2, 2, 1, 1])


def test_pop_has_low_coverage_on_biased_data(small_split):
    """Pop recommends nearly the same items to everyone."""
    model = MostPopular().fit(small_split.train)
    top = model.recommend_all(5)
    distinct = {int(i) for user in range(top.n_users) for i in top.for_user(user)}
    assert len(distinct) < 0.2 * small_split.train.n_items


def test_random_recommender_is_deterministic_per_seed(tiny_dataset):
    a = RandomRecommender(seed=3).fit(tiny_dataset).recommend(0, 3)
    b = RandomRecommender(seed=3).fit(tiny_dataset).recommend(0, 3)
    np.testing.assert_array_equal(a, b)


def test_random_recommender_differs_across_seeds(small_split):
    a = RandomRecommender(seed=1).fit(small_split.train).recommend(0, 10)
    b = RandomRecommender(seed=2).fit(small_split.train).recommend(0, 10)
    assert not np.array_equal(a, b)


def test_random_recommender_query_order_does_not_matter(tiny_dataset):
    model = RandomRecommender(seed=5).fit(tiny_dataset)
    first_user0 = model.recommend(0, 3).copy()
    model.recommend(3, 3)
    np.testing.assert_array_equal(model.recommend(0, 3), first_user0)


def test_random_recommender_has_high_coverage(small_split):
    model = RandomRecommender(seed=0).fit(small_split.train)
    top = model.recommend_all(5)
    distinct = {int(i) for user in range(top.n_users) for i in top.for_user(user)}
    assert len(distinct) > 0.5 * small_split.train.n_items


def test_random_scores_lie_in_unit_interval(tiny_dataset):
    model = RandomRecommender(seed=0).fit(tiny_dataset)
    scores = model.predict_scores(0, np.arange(tiny_dataset.n_items))
    assert scores.min() >= 0.0 and scores.max() <= 1.0
