"""Tests for the RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


def test_ensure_rng_accepts_none():
    rng = ensure_rng(None)
    assert isinstance(rng, np.random.Generator)


def test_ensure_rng_accepts_int_and_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    np.testing.assert_allclose(a, b)


def test_ensure_rng_passes_through_generators():
    base = np.random.default_rng(0)
    assert ensure_rng(base) is base


def test_different_seeds_give_different_streams():
    a = ensure_rng(1).random(10)
    b = ensure_rng(2).random(10)
    assert not np.allclose(a, b)


def test_spawn_rng_produces_requested_count():
    children = spawn_rng(ensure_rng(0), 4)
    assert len(children) == 4
    assert all(isinstance(c, np.random.Generator) for c in children)


def test_spawn_rng_children_are_independent():
    children = spawn_rng(ensure_rng(0), 2)
    assert not np.allclose(children[0].random(5), children[1].random(5))


def test_spawn_rng_is_deterministic_given_parent_seed():
    first = [c.random(3) for c in spawn_rng(ensure_rng(7), 3)]
    second = [c.random(3) for c in spawn_rng(ensure_rng(7), 3)]
    for a, b in zip(first, second):
        np.testing.assert_allclose(a, b)


def test_spawn_rng_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rng(ensure_rng(0), -1)


def test_spawn_rng_zero_count_returns_empty_list():
    assert spawn_rng(ensure_rng(0), 0) == []
