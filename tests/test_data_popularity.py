"""Tests for popularity statistics and the Pareto long-tail definition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.popularity import PopularityStats, compute_popularity, long_tail_items
from repro.exceptions import ConfigurationError


def test_compute_popularity(tiny_dataset):
    np.testing.assert_array_equal(compute_popularity(tiny_dataset), [4, 2, 2, 2, 1, 1])


def test_long_tail_contains_least_popular_items(tiny_dataset):
    tail = long_tail_items(tiny_dataset)
    # Items 4 and 5 have a single rating each; they must be in the tail.
    assert {4, 5}.issubset(set(tail.tolist()))
    # The blockbuster item 0 must not be in the tail.
    assert 0 not in tail


def test_long_tail_respects_mass_threshold():
    # 10 items: one with 80 ratings, nine with ~2 ratings each.
    popularity = np.array([80, 3, 3, 2, 2, 2, 2, 2, 2, 2])
    tail = long_tail_items(popularity, tail_fraction=0.2)
    assert 0 not in tail
    # The tail should be most of the low-count items.
    assert len(tail) >= 7


def test_long_tail_with_zero_popularity_items():
    popularity = np.array([10, 0, 0, 5])
    tail = long_tail_items(popularity)
    assert 1 in tail and 2 in tail


def test_long_tail_all_zero_popularity():
    tail = long_tail_items(np.zeros(4, dtype=int))
    np.testing.assert_array_equal(tail, [0, 1, 2, 3])


def test_long_tail_rejects_bad_fraction(tiny_dataset):
    with pytest.raises(ConfigurationError):
        long_tail_items(tiny_dataset, tail_fraction=0.0)
    with pytest.raises(ConfigurationError):
        long_tail_items(tiny_dataset, tail_fraction=1.0)


def test_long_tail_rejects_negative_counts():
    with pytest.raises(ConfigurationError):
        long_tail_items(np.array([3, -1, 2]))


def test_popularity_stats_from_dataset(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    assert stats.n_items == 6
    assert stats.long_tail_mask.dtype == bool
    assert stats.long_tail_mask.sum() == stats.long_tail.size


def test_popularity_stats_membership(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    membership = stats.is_long_tail(np.array([0, 4]))
    assert membership[0] == False  # noqa: E712 - explicit boolean comparison
    assert membership[1] == True  # noqa: E712


def test_head_and_tail_partition_items(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    head = set(stats.head_items().tolist())
    tail = set(stats.long_tail.tolist())
    assert head | tail == set(range(6))
    assert head & tail == set()


def test_long_tail_percentage_bounds(small_split):
    stats = PopularityStats.from_dataset(small_split.train)
    assert 0.0 <= stats.long_tail_percentage <= 100.0
    # With a Zipf-like popularity profile the long tail should cover a
    # substantial share of the rated items.
    assert stats.long_tail_percentage > 20.0


def test_average_popularity_of(tiny_dataset):
    stats = PopularityStats.from_dataset(tiny_dataset)
    assert stats.average_popularity_of(np.array([0])) == pytest.approx(4.0)
    assert stats.average_popularity_of(np.array([4, 5])) == pytest.approx(1.0)
    assert stats.average_popularity_of(np.array([], dtype=int)) == 0.0


def test_synthetic_long_tail_is_a_large_item_share(small_split):
    """With popularity bias, the Pareto tail spans far more items than the head's 20%.

    On the small synthetic surrogate the tail holds ~40% of the rated items
    (the paper's full-size datasets reach 67-88%; the gap is a scale effect of
    the surrogate, documented in EXPERIMENTS.md).
    """
    stats = PopularityStats.from_dataset(small_split.train)
    rated = int(np.count_nonzero(stats.popularity))
    tail_rated = int(np.count_nonzero(stats.popularity[stats.long_tail]))
    assert tail_rated / rated > 0.3
