"""Async serving tier: coalescing, batch endpoint, workers, byte-identity.

The contract under test extends the legacy tier's: for every request the
asyncio tier (`repro serve --async`) must answer with *byte-identical*
bodies to the legacy ``http.server`` tier — success responses and error
responses alike, for every registered recommender family and for GANC
pipelines — while routing covered lookups through the coalesced batched
store path.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    ComponentSpec,
    EvaluationSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
)
from repro.registry import available
from repro.serving import (
    CoalescingBatcher,
    RecommendationStore,
    build_async_service,
    build_server,
    compile_artifact,
    start_async_in_thread,
    start_in_thread,
)
from repro.serving.service import json_body, recommend_body, recommend_payload

N = 5


def _bare_spec(name: str, **overrides) -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec(name),
        evaluation=EvaluationSpec(n=N),
        seed=0,
        **overrides,
    )


def _ganc_spec() -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("pop"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=16, optimizer="oslg"),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )


@pytest.fixture(scope="module")
def pop_pipeline_dir(tmp_path_factory, small_split) -> Path:
    """A saved bare-Pop pipeline shared by the async-tier tests."""
    directory = tmp_path_factory.mktemp("pipeline-pop-async")
    Pipeline(_bare_spec("pop")).fit(small_split).save(directory)
    return directory


@pytest.fixture(scope="module")
def pop_artifact_dir(tmp_path_factory, pop_pipeline_dir) -> Path:
    """A compiled artifact of the shared Pop pipeline (small shards)."""
    directory = tmp_path_factory.mktemp("artifact-pop-async")
    compile_artifact(pop_pipeline_dir, directory, shard_size=16)
    return directory


@pytest.fixture()
def async_handle(pop_pipeline_dir, pop_artifact_dir):
    """A running async service on an ephemeral port, torn down after the test."""
    service = build_async_service(pop_artifact_dir, pipeline=pop_pipeline_dir)
    handle = start_async_in_thread(service)
    try:
        yield handle
    finally:
        handle.stop()


def _request(
    address: tuple[str, int],
    path: str,
    *,
    method: str = "GET",
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes]:
    """One request over a fresh connection; returns (status, body bytes)."""
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _both_tiers(artifact_dir, pipeline_dir):
    """Start the legacy and async tiers over the same artifact."""
    server = build_server(artifact_dir, pipeline=pipeline_dir, port=0)
    start_in_thread(server)
    service = build_async_service(artifact_dir, pipeline=pipeline_dir)
    handle = start_async_in_thread(service)

    def stop() -> None:
        handle.stop()
        server.shutdown()
        server.server_close()

    return server.server_address[:2], handle.address, stop


#: Request paths every tier-equality sweep compares: covered lookups,
#: default n, prefix n, live fallback n, and the whole error surface.
def _equality_paths(n_users: int) -> list[str]:
    return [
        f"/recommend?user=0&n={N}",
        f"/recommend?user=7&n={N}",
        f"/recommend?user={n_users - 1}&n={N}",
        "/recommend?user=3",            # n defaults to the artifact's n
        "/recommend?user=4&n=3",        # prefix slice when consistent, else live
        f"/recommend?user=2&n={N + 2}",  # beyond the compiled n -> live fallback
        "/recommend",                   # 400 missing user
        "/recommend?user=abc",          # 400 not an integer
        "/recommend?user=0&n=zz",       # 400 not an integer
        "/recommend?user=999999",       # 404 out of range
        "/recommend?user=-1",           # 404 out of range
        "/recommend?user=0&n=0",        # 400 invalid n
        "/recommend?user=%30&n=5",      # percent-escaped: parse_qs fallback path
        "/nope",                        # 404 unknown path
    ]


# --------------------------------------------------------------------------- #
# Byte-identity across tiers: every recommender family + GANC
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(available("recommender")))
def test_async_tier_bytes_match_legacy_for_every_family(name, small_split, tmp_path):
    pipeline = Pipeline(_bare_spec(name)).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=13)
    legacy_addr, async_addr, stop = _both_tiers(tmp_path / "art", tmp_path / "pipe")
    try:
        for path in _equality_paths(small_split.train.n_users):
            legacy_status, legacy_body = _request(legacy_addr, path)
            async_status, async_body = _request(async_addr, path)
            assert async_status == legacy_status, (name, path)
            assert async_body == legacy_body, (name, path)
    finally:
        stop()


def test_async_tier_bytes_match_legacy_for_ganc(small_split, tmp_path):
    pipeline = Pipeline(_ganc_spec()).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=9)
    legacy_addr, async_addr, stop = _both_tiers(tmp_path / "art", tmp_path / "pipe")
    try:
        # GANC artifacts are not prefix-consistent, so n=3 exercises the
        # live-fallback route through the async tier's individual path.
        for path in _equality_paths(small_split.train.n_users):
            legacy_status, legacy_body = _request(legacy_addr, path)
            async_status, async_body = _request(async_addr, path)
            assert async_status == legacy_status, path
            assert async_body == legacy_body, path
    finally:
        stop()


def test_async_responses_match_store_computed_bytes(small_split, async_handle, pop_artifact_dir):
    """The served bytes are exactly what the payload helpers produce."""
    store = RecommendationStore(pop_artifact_dir)
    for user in (0, 3, small_split.train.n_users - 1):
        status, body = _request(async_handle.address, f"/recommend?user={user}&n={N}")
        assert status == 200
        expected = recommend_body(
            recommend_payload(store, user, N, *store.lookup(user, N))
        )
        assert body == expected


# --------------------------------------------------------------------------- #
# POST /recommend/batch
# --------------------------------------------------------------------------- #
def test_batch_endpoint_matches_single_gets(async_handle):
    users = [0, 5, 11, 2]
    status, body = _request(
        async_handle.address,
        "/recommend/batch",
        method="POST",
        body=json.dumps({"users": users, "n": N}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["count"] == len(users)
    for user, result in zip(users, payload["results"]):
        single_status, single_body = _request(
            async_handle.address, f"/recommend?user={user}&n={N}"
        )
        assert single_status == 200
        # Each batch element is the same payload a single GET returns,
        # re-encodable to the same bytes.
        assert json.loads(single_body) == result
        assert json_body(result) == single_body


def test_batch_endpoint_default_n_and_fallback(async_handle):
    status, body = _request(
        async_handle.address,
        "/recommend/batch",
        method="POST",
        body=json.dumps({"users": [1, 4]}).encode(),
    )
    assert status == 200
    assert all(r["n"] == N for r in json.loads(body)["results"])
    status, body = _request(
        async_handle.address,
        "/recommend/batch",
        method="POST",
        body=json.dumps({"users": [1], "n": N + 2}).encode(),
    )
    assert status == 200
    (result,) = json.loads(body)["results"]
    assert result["source"] == "live" and result["scores"] is None


def test_batch_endpoint_validation_errors(async_handle):
    cases = [
        (b"{not json", 400, "not valid JSON"),
        (b"[1, 2]", 400, "JSON object"),
        (json.dumps({"users": [0], "extra": 1}).encode(), 400, "unknown key"),
        (json.dumps({"users": []}).encode(), 400, "non-empty array"),
        (json.dumps({"users": [0, "x"]}).encode(), 400, "array of integers"),
        (json.dumps({"users": [True]}).encode(), 400, "array of integers"),
        (json.dumps({"n": N}).encode(), 400, "non-empty array"),
        (json.dumps({"users": [0], "n": "5"}).encode(), 400, "'n' must be an integer"),
    ]
    for body, status, fragment in cases:
        got_status, got_body = _request(
            async_handle.address, "/recommend/batch", method="POST", body=body
        )
        assert got_status == status, body
        assert fragment in json.loads(got_body)["error"], body


def test_method_mismatches_are_405(async_handle):
    status, body = _request(async_handle.address, "/recommend/batch", method="GET")
    assert status == 405 and "not allowed" in json.loads(body)["error"]
    status, body = _request(
        async_handle.address, "/recommend?user=0", method="POST", body=b"{}"
    )
    assert status == 405 and "not allowed" in json.loads(body)["error"]


def test_post_without_content_length_is_411(async_handle):
    import socket as socket_module

    sock = socket_module.create_connection(async_handle.address, timeout=30)
    try:
        sock.sendall(b"POST /recommend/batch HTTP/1.1\r\nHost: t\r\n\r\n")
        response = sock.recv(65536)
    finally:
        sock.close()
    assert b"411" in response.split(b"\r\n", 1)[0]


# --------------------------------------------------------------------------- #
# The coalescing batcher itself
# --------------------------------------------------------------------------- #
def test_coalescing_batcher_flushes_at_max_and_window(pop_artifact_dir):
    import asyncio

    store = RecommendationStore(pop_artifact_dir)
    stats = {"batches": 0, "batched_rows": 0, "largest_batch": 0, "single_rows": 0}

    async def scenario() -> None:
        batcher = CoalescingBatcher(store, stats, max_batch=4, window_us=20_000)
        # Four submissions hit max_batch: flushed synchronously as one call.
        futures = [batcher.submit(user, N) for user in (0, 1, 2, 3)]
        assert stats["batches"] == 1 and stats["batched_rows"] == 4
        assert stats["largest_batch"] == 4
        for user, future in zip((0, 1, 2, 3), futures):
            items, scores, source = await future
            expected_items, expected_scores, expected_source = store.lookup(user, N)
            np.testing.assert_array_equal(items, expected_items)
            np.testing.assert_array_equal(scores, expected_scores)
            assert source == expected_source == "artifact"
        # Two submissions stay below max_batch: the window timer flushes them.
        futures = [batcher.submit(user, N) for user in (4, 5)]
        assert stats["batches"] == 1  # not yet
        await asyncio.wait_for(asyncio.gather(*futures), timeout=10)
        assert stats["batches"] == 2 and stats["batched_rows"] == 6

    asyncio.run(scenario())


def test_coalescing_batcher_window_zero_flushes_next_tick(pop_artifact_dir):
    import asyncio

    store = RecommendationStore(pop_artifact_dir)
    stats = {"batches": 0, "batched_rows": 0, "largest_batch": 0, "single_rows": 0}

    async def scenario() -> None:
        batcher = CoalescingBatcher(store, stats, max_batch=64, window_us=0)
        futures = [batcher.submit(user, N) for user in (0, 1, 2)]
        await asyncio.wait_for(asyncio.gather(*futures), timeout=10)
        # All three arrived in the same loop iteration -> one store call.
        assert stats["batches"] == 1 and stats["largest_batch"] == 3

    asyncio.run(scenario())


def test_coalescing_batcher_groups_by_n(pop_artifact_dir):
    import asyncio

    store = RecommendationStore(pop_artifact_dir)
    stats = {"batches": 0, "batched_rows": 0, "largest_batch": 0, "single_rows": 0}

    async def scenario() -> None:
        batcher = CoalescingBatcher(store, stats, max_batch=4, window_us=0)
        futures = [
            batcher.submit(0, N), batcher.submit(1, 3),
            batcher.submit(2, N), batcher.submit(3, 3),
        ]
        results = await asyncio.wait_for(asyncio.gather(*futures), timeout=10)
        # One flush of 4 queued lookups, dispatched as two store calls
        # (one per distinct n).
        assert stats["batches"] == 2 and stats["batched_rows"] == 4
        assert stats["largest_batch"] == 4
        for (user, n), (items, _, _) in zip(((0, N), (1, 3), (2, N), (3, 3)), results):
            np.testing.assert_array_equal(items, store.lookup(user, n)[0])

    asyncio.run(scenario())


def test_coalescing_batcher_rejects_bad_knobs(pop_artifact_dir):
    store = RecommendationStore(pop_artifact_dir)
    with pytest.raises(ConfigurationError, match="coalesce_max"):
        CoalescingBatcher(store, {}, max_batch=0)
    with pytest.raises(ConfigurationError, match="coalesce_window_us"):
        CoalescingBatcher(store, {}, window_us=-1)


# --------------------------------------------------------------------------- #
# Concurrency: hammering clients, warm reload under load
# --------------------------------------------------------------------------- #
def _expected_bodies(store: RecommendationStore, plan) -> list[bytes]:
    return [
        recommend_body(recommend_payload(store, user, n, *store.lookup(user, n)))
        for user, n in plan
    ]


def _hammer(address, plan, bodies: list, errors: list, index: int) -> None:
    try:
        conn = http.client.HTTPConnection(*address, timeout=60)
        collected = []
        for user, n in plan:
            suffix = "" if n is None else f"&n={n}"
            conn.request("GET", f"/recommend?user={user}{suffix}")
            response = conn.getresponse()
            assert response.status == 200
            collected.append(response.read())
        conn.close()
        bodies[index] = collected
    except Exception as exc:  # noqa: BLE001 - surfaced by the assertion below
        errors.append((index, exc))


def test_concurrent_clients_get_byte_identical_responses(
    small_split, pop_pipeline_dir, pop_artifact_dir
):
    """Both tiers, 8 keep-alive clients each, mixed user/n: exact bytes."""
    n_users = small_split.train.n_users
    rng = np.random.default_rng(3)
    plans = []
    for _ in range(8):
        users = rng.integers(0, n_users, size=30)
        ns = rng.choice([N, 3, None, N + 2], size=30, p=[0.6, 0.2, 0.1, 0.1])
        plans.append([(int(u), n if n is None else int(n)) for u, n in zip(users, ns)])
    reference = RecommendationStore(pop_artifact_dir, pipeline=pop_pipeline_dir)
    expected = [_expected_bodies(reference, plan) for plan in plans]

    legacy_addr, async_addr, stop = _both_tiers(pop_artifact_dir, pop_pipeline_dir)
    try:
        for address in (legacy_addr, async_addr):
            bodies: list = [None] * len(plans)
            errors: list = []
            threads = [
                threading.Thread(target=_hammer, args=(address, plan, bodies, errors, i))
                for i, plan in enumerate(plans)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert bodies == expected
    finally:
        stop()


def test_warm_reload_under_load_never_drops_a_request(
    small_split, pop_pipeline_dir, pop_artifact_dir, async_handle
):
    """Responses stay byte-correct while SIGHUP-style reloads swap state."""
    reference = RecommendationStore(pop_artifact_dir, pipeline=pop_pipeline_dir)
    plan = [(user % small_split.train.n_users, N) for user in range(120)]
    expected = _expected_bodies(reference, plan)
    bodies: list = [None]
    errors: list = []
    thread = threading.Thread(
        target=_hammer, args=(async_handle.address, plan, bodies, errors, 0)
    )
    thread.start()
    reloads = 0
    while thread.is_alive() and reloads < 5:
        async_handle.reload()
        reloads += 1
        time.sleep(0.02)
    thread.join(timeout=120)
    assert not errors, errors
    assert bodies[0] == expected
    status, body = _request(async_handle.address, "/healthz")
    assert status == 200
    assert json.loads(body)["reloads"] >= 1


def test_async_reload_failure_increments_counter(small_split, tmp_path):
    """A broken in-place recompile must not kill serving; /healthz counts it."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=16)
    service = build_async_service(tmp_path / "art", pipeline=tmp_path / "pipe")
    handle = start_async_in_thread(service)
    try:
        _, before = _request(handle.address, f"/recommend?user=1&n={N}")
        # Recompile from a different spec: reload must reject it and keep serving.
        other = Pipeline(_bare_spec("rand")).fit(small_split)
        compile_artifact(other, tmp_path / "art", shard_size=16)
        handle.reload()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            health = json.loads(_request(handle.address, "/healthz")[1])
            if health["reload_failures"]:
                break
            time.sleep(0.01)
        assert health["reload_failures"] == 1 and health["reloads"] == 0
        _, after = _request(handle.address, f"/recommend?user=1&n={N}")
        assert after == before
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# /healthz, keep-alive, pre-fork workers
# --------------------------------------------------------------------------- #
def test_async_healthz_reports_tier_and_coalescing(async_handle):
    for _ in range(3):
        _request(async_handle.address, f"/recommend?user=0&n={N}")
    status, body = _request(async_handle.address, "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["tier"] == "async"
    assert health["reload_failures"] == 0
    assert set(health["coalescing"]) == {
        "batches", "batched_rows", "largest_batch", "single_rows",
    }
    assert health["coalescing"]["batched_rows"] >= 3


def test_async_keep_alive_reuses_one_connection(async_handle):
    conn = http.client.HTTPConnection(*async_handle.address, timeout=30)
    try:
        conn.request("GET", f"/recommend?user=0&n={N}")
        first = conn.getresponse()
        first.read()
        sock = conn.sock
        assert sock is not None
        conn.request("GET", "/healthz")
        second = conn.getresponse()
        second.read()
        assert conn.sock is sock  # same TCP connection served both
    finally:
        conn.close()


def test_prefork_workers_serve_and_forward_signals(
    small_split, pop_pipeline_dir, pop_artifact_dir
):
    """--workers 2 shares one socket; SIGHUP warm-swaps; SIGTERM shuts down."""
    if not hasattr(os, "fork"):
        pytest.skip("pre-fork requires os.fork")
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--artifact", str(pop_artifact_dir),
            "--pipeline", str(pop_pipeline_dir),
            "--async", "--workers", "2", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        assert match, banner
        address = (match.group(1), int(match.group(2)))
        store = RecommendationStore(pop_artifact_dir)
        expected = recommend_body(recommend_payload(store, 0, N, *store.lookup(0, N)))
        deadline = time.monotonic() + 30
        while True:  # workers may still be forking; retry until the deadline
            try:
                status, body = _request(address, f"/recommend?user=0&n={N}")
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        assert status == 200 and body == expected
        proc.send_signal(signal.SIGHUP)  # must warm-swap, not kill
        time.sleep(0.2)
        status, body = _request(address, f"/recommend?user=0&n={N}")
        assert status == 200 and body == expected
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


# --------------------------------------------------------------------------- #
# Fast-path helpers stay equivalent to their general fallbacks
# --------------------------------------------------------------------------- #
def test_simple_query_parser_agrees_with_parse_qs(async_handle):
    """Escaped queries take the parse_qs fallback and answer identically."""
    fast_status, fast_body = _request(async_handle.address, f"/recommend?user=3&n={N}")
    slow_status, slow_body = _request(async_handle.address, f"/recommend?user=%33&n={N}")
    assert (fast_status, fast_body) == (slow_status, slow_body) == (200, fast_body)

    from repro.serving.async_service import _simple_query_params

    assert _simple_query_params("user=3&n=2") == ("3", "2")
    assert _simple_query_params("user=3") == ("3", None)
    assert _simple_query_params("") == (None, None)
    # Anything ambiguous defers to parse_qs: escapes, blanks, repeats, extras.
    for query in ("user=%33", "user=3&n=", "user=3&user=4", "user=3&x=1", "user"):
        assert _simple_query_params(query) is None
