"""Tests for the markdown report writer."""

from __future__ import annotations

import pytest

from repro.experiments.report_writer import ReportConfig, generate_report, write_report


@pytest.fixture(scope="module")
def quick_config() -> ReportConfig:
    return ReportConfig(
        datasets=("ml100k",),
        scale=0.2,
        sample_size=50,
        seed=0,
        include_table4=False,
        include_figure6=False,
    )


def test_generate_report_contains_descriptive_sections(quick_config):
    text = generate_report(quick_config)
    assert text.startswith("# GANC reproduction report")
    assert "Table II" in text
    assert "Figure 1" in text
    assert "Figure 2" in text
    assert "ML-100K" in text
    assert quick_config.sections[:3] == ["table2", "figure1", "figure2"]


def test_generate_report_with_comparisons_included():
    config = ReportConfig(
        datasets=("ml100k",), scale=0.2, sample_size=40, seed=0,
        include_table4=True, include_figure6=True,
    )
    text = generate_report(config)
    assert "Table IV" in text
    assert "Figure 6" in text
    assert "GANC(" in text
    assert "legend:" in text or "coverage@5" in text


def test_write_report_creates_file(tmp_path, quick_config):
    path = write_report(tmp_path / "out" / "report.md", quick_config)
    assert path.exists()
    content = path.read_text()
    assert content.startswith("# GANC reproduction report")
    assert content.endswith("\n")
