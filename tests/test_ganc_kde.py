"""Tests for the Gaussian KDE used by OSLG sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ganc.kde import GaussianKDE


def test_kde_requires_data():
    with pytest.raises(ConfigurationError):
        GaussianKDE(np.array([]))


def test_kde_bandwidth_rules():
    data = np.random.default_rng(0).normal(0.5, 0.1, size=200)
    scott = GaussianKDE(data, bandwidth="scott")
    silverman = GaussianKDE(data, bandwidth="silverman")
    assert scott.bandwidth > 0
    assert silverman.bandwidth > 0
    assert silverman.bandwidth < scott.bandwidth  # 0.9 factor


def test_kde_explicit_bandwidth():
    kde = GaussianKDE(np.array([0.5]), bandwidth=0.2)
    assert kde.bandwidth == pytest.approx(0.2)
    with pytest.raises(ConfigurationError):
        GaussianKDE(np.array([0.5]), bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        GaussianKDE(np.array([0.5]), bandwidth="unknown-rule")


def test_kde_density_peaks_near_data_mass():
    rng = np.random.default_rng(1)
    data = np.concatenate([rng.normal(0.2, 0.03, 300), rng.normal(0.8, 0.03, 100)])
    kde = GaussianKDE(np.clip(data, 0, 1))
    dense = kde.evaluate(np.array([0.2]))[0]
    sparse = kde.evaluate(np.array([0.5]))[0]
    assert dense > sparse
    # The 0.2 cluster has 3x the mass of the 0.8 cluster.
    assert kde.evaluate(np.array([0.2]))[0] > kde.evaluate(np.array([0.8]))[0]


def test_kde_density_integrates_to_about_one():
    data = np.random.default_rng(2).beta(2, 5, size=500)
    kde = GaussianKDE(data)
    grid = np.linspace(-0.5, 1.5, 2001)
    densities = kde.evaluate(grid)
    integral = np.trapezoid(densities, grid)
    assert integral == pytest.approx(1.0, abs=0.02)


def test_kde_callable_alias():
    kde = GaussianKDE(np.array([0.3, 0.7]))
    np.testing.assert_allclose(kde(np.array([0.5])), kde.evaluate(np.array([0.5])))


def test_kde_handles_constant_data():
    kde = GaussianKDE(np.full(50, 0.4))
    assert np.isfinite(kde.evaluate(np.array([0.4]))[0])
    samples = kde.sample(20, seed=0)
    assert np.all((samples >= 0.0) & (samples <= 1.0))
    assert np.abs(samples - 0.4).max() < 0.2


def test_kde_sampling_is_deterministic_and_clipped():
    data = np.random.default_rng(3).beta(2, 2, size=300)
    kde = GaussianKDE(data)
    a = kde.sample(50, seed=9)
    b = kde.sample(50, seed=9)
    np.testing.assert_allclose(a, b)
    assert a.min() >= 0.0 and a.max() <= 1.0


def test_kde_sampling_matches_distribution_mean():
    rng = np.random.default_rng(4)
    data = rng.beta(2, 6, size=1000)
    kde = GaussianKDE(data)
    samples = kde.sample(2000, seed=1)
    assert abs(samples.mean() - data.mean()) < 0.05


def test_kde_sample_rejects_negative_size():
    kde = GaussianKDE(np.array([0.5]))
    with pytest.raises(ConfigurationError):
        kde.sample(-1)
    assert kde.sample(0).size == 0


def test_kde_sample_without_clipping():
    kde = GaussianKDE(np.array([0.0, 1.0]), bandwidth=0.5)
    samples = kde.sample(500, seed=0, clip=None)
    assert samples.min() < 0.0 or samples.max() > 1.0
