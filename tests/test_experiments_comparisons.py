"""Tests for the comparison experiments: Table IV, Figure 6, Table V, Figures 7-8."""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import accuracy_recommender_for, run_figure6_for_dataset
from repro.experiments.figure7_8 import protocol_accuracy_inflation, run_protocol_comparison
from repro.experiments.table4 import (
    best_average_rank_algorithm,
    run_table4,
    run_table4_for_dataset,
    table4_algorithms,
)
from repro.experiments.table5 import best_configuration, run_table5_for_dataset

SCALE = 0.2


@pytest.fixture(scope="module")
def table4_rows():
    return run_table4_for_dataset("ml100k", scale=SCALE, sample_size=80, seed=0)


def test_table4_contains_all_nine_algorithms(table4_rows):
    names = {row.algorithm for row in table4_rows}
    assert names == set(table4_algorithms())
    assert len(table4_rows) == 9


def test_table4_ranks_are_competition_ranks(table4_rows):
    for metric in ("f_measure", "coverage", "gini"):
        ranks = [row.ranks[metric] for row in table4_rows]
        assert min(ranks) == 1
        assert max(ranks) <= len(table4_rows)


def test_table4_average_rank_is_mean_of_metric_ranks(table4_rows):
    for row in table4_rows:
        assert row.average_rank == pytest.approx(sum(row.ranks.values()) / len(row.ranks))


def test_table4_ganc_improves_coverage_over_base(table4_rows):
    """Table IV headline: GANC variants dominate the base RSVD on coverage."""
    by_name = {row.algorithm: row for row in table4_rows}
    base = by_name["RSVD"]
    for name in ("GANC(RSVD, thetaT, Dyn)", "GANC(RSVD, thetaG, Dyn)"):
        assert by_name[name].report.coverage > base.report.coverage
        assert by_name[name].report.gini < base.report.gini


def test_table4_ganc_is_competitive_on_average_rank(table4_rows):
    """GANC has (one of) the lowest average ranks on the surrogate too."""
    best = best_average_rank_algorithm(table4_rows, "ML-100K")
    ganc_ranks = [
        row.average_rank for row in table4_rows if row.algorithm.startswith("GANC")
    ]
    non_ganc_best = min(
        row.average_rank for row in table4_rows if not row.algorithm.startswith("GANC")
    )
    assert min(ganc_ranks) <= non_ganc_best + 0.5 or best.startswith("GANC")


def test_table4_multi_dataset_wrapper():
    rows, table = run_table4(
        datasets=["ml100k"], scale=SCALE, sample_size=50, seed=0,
        algorithms=["RSVD", "GANC(RSVD, thetaG, Dyn)"],
    )
    assert len(rows) == 2
    assert len(table.rows) == 2


def test_best_average_rank_requires_known_dataset(table4_rows):
    with pytest.raises(ValueError):
        best_average_rank_algorithm(table4_rows, "Nonexistent")


# --------------------------------------------------------------------------- #
# Figure 6
# --------------------------------------------------------------------------- #
def test_accuracy_recommender_choice_follows_density():
    assert accuracy_recommender_for("mt200k") == "pop"
    assert accuracy_recommender_for("ml1m") == "psvd100"


@pytest.fixture(scope="module")
def figure6_points():
    return run_figure6_for_dataset(
        "ml100k", scale=SCALE, sample_size=60, seed=0, baselines=("rand", "pop", "psvd10")
    )


def test_figure6_has_baselines_and_ganc_variants(figure6_points):
    names = {p.algorithm for p in figure6_points}
    assert {"rand", "pop", "psvd10"} <= names
    assert any(name.startswith("GANC(") and name.endswith("Dyn)") for name in names)
    assert any(name.startswith("PRA(") for name in names)


def test_figure6_rand_and_pop_are_the_extremes(figure6_points):
    by_name = {p.algorithm: p for p in figure6_points}
    rand, pop = by_name["rand"], by_name["pop"]
    assert rand.coverage > pop.coverage
    assert pop.f_measure > rand.f_measure
    assert rand.lt_accuracy > pop.lt_accuracy


def test_figure6_ganc_dyn_gains_coverage_over_its_arec(figure6_points):
    by_name = {p.algorithm: p for p in figure6_points}
    arec_name = accuracy_recommender_for("ml100k")
    ganc = next(p for name, p in by_name.items() if name.startswith("GANC(") and name.endswith("Dyn)"))
    # The bare accuracy recommender appears among the baselines only when
    # requested; compare against Pop which shares its profile here.
    assert ganc.coverage > by_name["pop"].coverage


# --------------------------------------------------------------------------- #
# Table V
# --------------------------------------------------------------------------- #
def test_table5_grid_search_and_best_configuration():
    points = run_table5_for_dataset(
        "ml100k",
        factors=(4, 8),
        regs=(0.05,),
        learning_rates=(0.02,),
        n_epochs=8,
        include_non_negative=True,
        scale=SCALE,
        seed=0,
    )
    assert len(points) == 4  # 2 models x 2 factor settings
    best_rsvd = best_configuration(points, "RSVD")
    assert best_rsvd.validation_rmse == min(
        p.validation_rmse for p in points if p.model == "RSVD"
    )
    assert best_rsvd.validation_rmse < 2.0
    with pytest.raises(ValueError):
        best_configuration(points, "UNKNOWN")


# --------------------------------------------------------------------------- #
# Figures 7-8
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def protocol_points():
    return run_protocol_comparison(
        "ml100k", algorithms=("rand", "pop", "psvd10"), scale=SCALE, seed=0
    )


def test_protocol_comparison_covers_both_protocols(protocol_points):
    protocols = {p.protocol for p in protocol_points}
    assert protocols == {"all_unrated_items", "rated_test_items"}
    assert len(protocol_points) == 6


def test_rated_protocol_inflates_accuracy(protocol_points):
    """The appendix claim: measured precision is higher under the biased protocol."""
    assert protocol_accuracy_inflation(protocol_points, metric="precision") > 0.0


def test_rated_protocol_deflates_lt_accuracy(protocol_points):
    assert protocol_accuracy_inflation(protocol_points, metric="lt_accuracy") <= 0.0
