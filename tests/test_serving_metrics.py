"""Tests for the Prometheus-text ``/metrics`` endpoint on both serving tiers."""

from __future__ import annotations

import http.client
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.spec import ComponentSpec, EvaluationSpec, PipelineSpec
from repro.serving.artifact import compile_artifact
from repro.serving.async_service import build_async_service, start_async_in_thread
from repro.serving.metrics import (
    DEFAULT_BUCKETS,
    METRICS_CONTENT_TYPE,
    LatencyHistogram,
    ServingMetrics,
    parse_metrics,
)
from repro.serving.service import build_server, start_in_thread

N = 5


@pytest.fixture(scope="module")
def pop_pipeline_dir(tmp_path_factory, small_split) -> Path:
    directory = tmp_path_factory.mktemp("pipeline-pop-metrics")
    spec = PipelineSpec(
        recommender=ComponentSpec("pop"), evaluation=EvaluationSpec(n=N), seed=0
    )
    Pipeline(spec).fit(small_split).save(directory)
    return directory


@pytest.fixture(scope="module")
def pop_artifact_dir(tmp_path_factory, pop_pipeline_dir) -> Path:
    directory = tmp_path_factory.mktemp("artifact-pop-metrics")
    compile_artifact(pop_pipeline_dir, directory, shard_size=16)
    return directory


def _request(address: tuple[str, int], path: str) -> tuple[int, str, bytes]:
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Histogram unit behaviour
# --------------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_buckets_are_cumulative_and_end_at_inf(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for seconds in (0.0005, 0.002, 0.002, 0.05, 3.0):
            histogram.observe(seconds)
        buckets, count, observed_sum = histogram.snapshot()
        assert buckets == [("0.001", 1), ("0.01", 3), ("0.1", 4), ("+Inf", 5)]
        assert count == 5
        assert observed_sum == pytest.approx(0.0005 + 0.002 + 0.002 + 0.05 + 3.0)

    def test_observation_on_a_bound_lands_in_that_bucket(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1))
        histogram.observe(0.01)  # le is inclusive in Prometheus semantics
        buckets, _, _ = histogram.snapshot()
        assert buckets[0] == ("0.01", 1)

    def test_empty_snapshot(self):
        buckets, count, observed_sum = LatencyHistogram().snapshot()
        assert count == 0 and observed_sum == 0.0
        assert all(cumulative == 0 for _, cumulative in buckets)
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1

    @pytest.mark.parametrize("bad", [(), (0.0, 1.0), (-1.0,), (0.1, 0.1), (0.2, 0.1)])
    def test_invalid_bounds_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(buckets=bad)


class TestServingMetricsRender:
    def test_render_and_parse_round_trip(self):
        metrics = ServingMetrics()
        metrics.observe("recommend", 0.002)
        metrics.observe("recommend", 0.004)
        metrics.observe("healthz", 0.0001)
        text = metrics.render(
            store_stats={"artifact_rows": 7, "fallback_rows": 2, "fallback_builds": 1},
            reloads=3,
            reload_failures=1,
            extra_counters={"coalesce_batches": 5},
        )
        samples = parse_metrics(text)
        assert samples['repro_requests_total{endpoint="recommend"}'] == 2
        assert samples['repro_requests_total{endpoint="healthz"}'] == 1
        assert samples["repro_request_latency_seconds_count"] == 3
        assert samples["repro_request_latency_seconds_sum"] == pytest.approx(0.0061)
        assert samples['repro_request_latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples['repro_store_rows_total{source="artifact"}'] == 7
        assert samples['repro_store_rows_total{source="fallback"}'] == 2
        assert samples["repro_fallback_builds_total"] == 1
        assert samples["repro_reloads_total"] == 3
        assert samples["repro_reload_failures_total"] == 1
        assert samples["repro_coalesce_batches"] == 5
        assert text.endswith("\n")

    def test_bucket_counts_are_monotone_in_exposition(self):
        metrics = ServingMetrics(buckets=(0.001, 0.01))
        for seconds in (0.0001, 0.005, 0.5):
            metrics.observe("recommend", seconds)
        samples = parse_metrics(metrics.render())
        assert (
            samples['repro_request_latency_seconds_bucket{le="0.001"}']
            <= samples['repro_request_latency_seconds_bucket{le="0.01"}']
            <= samples['repro_request_latency_seconds_bucket{le="+Inf"}']
        )

    def test_render_without_store_stats_skips_row_counters(self):
        text = ServingMetrics().render()
        assert "repro_store_rows_total" not in text
        assert "repro_reloads_total 0" in text


# --------------------------------------------------------------------------- #
# Live endpoints, both tiers
# --------------------------------------------------------------------------- #
def test_legacy_tier_metrics_endpoint(pop_pipeline_dir, pop_artifact_dir):
    server = build_server(pop_artifact_dir, pipeline=pop_pipeline_dir, port=0)
    start_in_thread(server)
    address = server.server_address[:2]
    try:
        for user in range(4):
            status, _, _ = _request(address, f"/recommend?user={user}&n={N}")
            assert status == 200
        _request(address, "/healthz")
        _request(address, "/nope")

        status, content_type, body = _request(address, "/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        samples = parse_metrics(body.decode("utf-8"))
        assert samples['repro_requests_total{endpoint="recommend"}'] == 4
        assert samples['repro_requests_total{endpoint="healthz"}'] == 1
        assert samples['repro_requests_total{endpoint="other"}'] == 1
        assert samples["repro_request_latency_seconds_count"] == 6
        assert samples['repro_store_rows_total{source="artifact"}'] == 4
        assert samples["repro_reloads_total"] == 0
        # The scrape itself is counted on the next scrape.
        _, _, body = _request(address, "/metrics")
        samples = parse_metrics(body.decode("utf-8"))
        assert samples['repro_requests_total{endpoint="metrics"}'] >= 1
    finally:
        server.shutdown()
        server.server_close()


def test_async_tier_metrics_endpoint(pop_pipeline_dir, pop_artifact_dir):
    service = build_async_service(pop_artifact_dir, pipeline=pop_pipeline_dir)
    handle = start_async_in_thread(service)
    try:
        conn = http.client.HTTPConnection(*handle.address, timeout=30)
        try:  # keep-alive connection: these GETs take the coalesced fast path
            for user in range(3):
                conn.request("GET", f"/recommend?user={user}&n={N}")
                assert conn.getresponse().read()
        finally:
            conn.close()
        _request(handle.address, "/healthz")

        status, content_type, body = _request(handle.address, "/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        samples = parse_metrics(body.decode("utf-8"))
        assert samples['repro_requests_total{endpoint="recommend"}'] == 3
        assert samples['repro_requests_total{endpoint="healthz"}'] == 1
        assert samples["repro_request_latency_seconds_count"] == 4
        assert samples['repro_store_rows_total{source="artifact"}'] == 3
        # Tier-specific coalescing counters are exported with a prefix.
        assert samples["repro_coalesce_batched_rows"] == service.coalescing["batched_rows"]
        assert samples["repro_coalesce_batches"] == service.coalescing["batches"]
    finally:
        handle.stop()
