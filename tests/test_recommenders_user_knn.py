"""Tests for the user-based KNN recommender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.recommenders import make_recommender
from repro.recommenders.user_knn import UserKNN


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        UserKNN(k=0)
    with pytest.raises(ConfigurationError):
        UserKNN(shrinkage=-1)
    with pytest.raises(ConfigurationError):
        UserKNN(min_overlap=0)


def test_registry_builds_user_knn():
    assert isinstance(make_recommender("userknn", k=10), UserKNN)


def test_similarity_diagonal_is_zero(small_split):
    model = UserKNN(k=10).fit(small_split.train)
    assert np.allclose(np.diag(model.similarity_), 0.0)


def test_similar_users_drive_predictions(tiny_dataset):
    model = UserKNN(k=3, shrinkage=0.0).fit(tiny_dataset)
    scores = model.predict_scores(0, np.arange(tiny_dataset.n_items))
    assert np.all(np.isfinite(scores))
    assert scores.shape == (6,)


def test_predictions_within_reasonable_rating_range(small_split):
    model = UserKNN(k=20).fit(small_split.train)
    for user in (0, 7, 31):
        scores = model.predict_scores(user, np.arange(small_split.train.n_items))
        assert scores.min() > -5.0 and scores.max() < 10.0


def test_recommendations_are_valid(small_split):
    model = UserKNN(k=20).fit(small_split.train)
    recs = model.recommend(3, 5)
    assert recs.size == 5
    assert len(set(recs.tolist())) == 5
    seen = set(small_split.train.user_items(3).tolist())
    assert seen.isdisjoint(set(recs.tolist()))


def test_cold_user_falls_back_to_mean():
    from repro.data.dataset import RatingDataset

    data = RatingDataset(
        np.array([0, 0, 1, 1]),
        np.array([0, 1, 0, 1]),
        np.array([5.0, 3.0, 4.0, 2.0]),
        n_users=3,
        n_items=2,
    )
    model = UserKNN(k=2).fit(data)
    scores = model.predict_scores(2, np.arange(2))
    np.testing.assert_allclose(scores, model.user_means_[2])


def test_min_overlap_filters_weak_neighbours(small_split):
    permissive = UserKNN(k=30, min_overlap=1).fit(small_split.train)
    strict = UserKNN(k=30, min_overlap=5).fit(small_split.train)
    assert np.count_nonzero(strict.similarity_) <= np.count_nonzero(permissive.similarity_)


def test_fit_is_deterministic(small_split):
    a = UserKNN(k=15).fit(small_split.train).recommend(0, 5)
    b = UserKNN(k=15).fit(small_split.train).recommend(0, 5)
    np.testing.assert_array_equal(a, b)
