"""Tests for the 5D resource-allocation re-ranker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError
from repro.metrics.longtail import lt_accuracy_at_n
from repro.metrics.report import evaluate_top_n
from repro.recommenders.rsvd import RSVD
from repro.rerankers.resource_allocation import ResourceAllocation5D


@pytest.fixture(scope="module")
def fitted_base(medium_split):
    return RSVD(n_factors=10, n_epochs=25, learning_rate=0.02, seed=0).fit(medium_split.train)


def test_constructor_validation(fitted_base):
    with pytest.raises(ConfigurationError):
        ResourceAllocation5D(fitted_base, resource_multiplier=0)
    with pytest.raises(ConfigurationError):
        ResourceAllocation5D(fitted_base, preference_exponent=0)


def test_name_template(fitted_base, medium_split):
    plain = ResourceAllocation5D(fitted_base).fit(medium_split.train)
    assert plain.name == "5D(RSVD)"
    full = ResourceAllocation5D(
        fitted_base, accuracy_filtering=True, rank_by_rankings=True
    ).fit(medium_split.train)
    assert full.name == "5D(RSVD, A, RR)"


def test_recommendations_are_valid_sets(fitted_base, medium_split):
    reranker = ResourceAllocation5D(fitted_base).fit(medium_split.train)
    top = reranker.recommend_all(5)
    for user in range(top.n_users):
        row = top.for_user(user)
        assert row.size == 5
        assert len(set(row.tolist())) == 5
        seen = set(medium_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(row.tolist()))


def test_plain_variant_promotes_long_tail_aggressively(fitted_base, medium_split):
    """5D without filters is the strongest long-tail promoter (Table IV trend)."""
    stats = PopularityStats.from_dataset(medium_split.train)
    base_recs = fitted_base.recommend_all(5).as_dict()
    reranked = ResourceAllocation5D(fitted_base).fit(medium_split.train).recommend_all(5).as_dict()
    assert lt_accuracy_at_n(reranked, stats.long_tail_mask, 5) >= lt_accuracy_at_n(
        base_recs, stats.long_tail_mask, 5
    )


def test_accuracy_filtering_recovers_accuracy(fitted_base, medium_split):
    """The A variant must be at least as accurate as the plain 5D ranking."""
    plain = ResourceAllocation5D(fitted_base).fit(medium_split.train).recommend_all(5).as_dict()
    filtered = (
        ResourceAllocation5D(fitted_base, accuracy_filtering=True, rank_by_rankings=True)
        .fit(medium_split.train)
        .recommend_all(5)
        .as_dict()
    )
    plain_report = evaluate_top_n(
        plain, medium_split.train, medium_split.test, 5, algorithm="5D"
    )
    filtered_report = evaluate_top_n(
        filtered, medium_split.train, medium_split.test, 5, algorithm="5D-A-RR"
    )
    assert filtered_report.f_measure >= plain_report.f_measure


def test_rank_by_rankings_changes_the_ordering(fitted_base, medium_split):
    plain = ResourceAllocation5D(fitted_base).fit(medium_split.train)
    rr = ResourceAllocation5D(fitted_base, rank_by_rankings=True).fit(medium_split.train)
    differences = sum(
        not np.array_equal(plain.rerank_user(u, 5), rr.rerank_user(u, 5))
        for u in range(0, medium_split.train.n_users, 10)
    )
    assert differences > 0


def test_reranker_is_deterministic(fitted_base, medium_split):
    a = ResourceAllocation5D(fitted_base).fit(medium_split.train).recommend_all(5)
    b = ResourceAllocation5D(fitted_base).fit(medium_split.train).recommend_all(5)
    np.testing.assert_array_equal(a.items, b.items)
