"""Tests for the experiment dataset registry and the shared runner utilities."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.datasets import (
    EXPERIMENT_DATASETS,
    load_experiment_split,
    profile_config,
)
from repro.experiments.runner import (
    ExperimentTable,
    SeriesResult,
    TABLE4_METRICS,
    average_ranks,
    build_accuracy_recommender,
    metric_ranks,
)
from repro.metrics.report import MetricReport
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.popularity import MostPopular
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.random import RandomRecommender
from repro.recommenders.rsvd import RSVD


def test_registry_covers_all_paper_datasets():
    assert set(EXPERIMENT_DATASETS) == {"ml100k", "ml1m", "ml10m", "mt200k", "netflix"}
    assert EXPERIMENT_DATASETS["ml1m"].train_ratio == 0.5
    assert EXPERIMENT_DATASETS["mt200k"].train_ratio == 0.8
    assert EXPERIMENT_DATASETS["mt200k"].min_user_ratings == 5


def test_load_experiment_split_scales(small_config):
    dataset, split = load_experiment_split("ml100k", scale=0.2, seed=0)
    assert dataset.n_users < 400
    assert split.train.n_users == dataset.n_users
    assert split.train.n_ratings + split.test.n_ratings == dataset.n_ratings


def test_load_experiment_split_unknown_key():
    with pytest.raises(ConfigurationError):
        load_experiment_split("ml42")
    with pytest.raises(ConfigurationError):
        profile_config("ml42")


def test_profile_config_roundtrip():
    config = profile_config("netflix")
    assert config.name.startswith("Netflix")


# --------------------------------------------------------------------------- #
# ExperimentTable / SeriesResult
# --------------------------------------------------------------------------- #
def test_experiment_table_add_and_render():
    table = ExperimentTable(title="T", headers=["a", "b"])
    table.add_row(["x", 1.0])
    assert "T" in table.to_text()
    assert table.column("a") == ["x"]
    with pytest.raises(ConfigurationError):
        table.add_row(["only-one"])
    with pytest.raises(ConfigurationError):
        table.column("missing")


def test_series_result_accumulates_points():
    series = SeriesResult(label="s")
    series.add_point(1, 2)
    series.add_point(3, 4)
    assert series.as_rows() == [[1.0, 2.0], [3.0, 4.0]]


# --------------------------------------------------------------------------- #
# build_accuracy_recommender
# --------------------------------------------------------------------------- #
def test_build_accuracy_recommender_types():
    assert isinstance(build_accuracy_recommender("pop"), MostPopular)
    assert isinstance(build_accuracy_recommender("rand"), RandomRecommender)
    assert isinstance(build_accuracy_recommender("rsvd"), RSVD)
    assert isinstance(build_accuracy_recommender("rsvdn"), RSVD)
    assert isinstance(build_accuracy_recommender("psvd100"), PureSVD)
    assert isinstance(build_accuracy_recommender("cofir100"), CofiRank)
    with pytest.raises(ConfigurationError):
        build_accuracy_recommender("unknown")


def test_build_accuracy_recommender_scales_ranks():
    full = build_accuracy_recommender("psvd100", scale_hint=1.0)
    small = build_accuracy_recommender("psvd100", scale_hint=0.2)
    assert full.n_factors == 100
    assert small.n_factors == 20
    assert build_accuracy_recommender("psvd10", scale_hint=0.1).n_factors >= 3


# --------------------------------------------------------------------------- #
# Rank aggregation
# --------------------------------------------------------------------------- #
def _report(name: str, **metrics: float) -> MetricReport:
    defaults = dict(
        precision=0.0, recall=0.0, f_measure=0.0, lt_accuracy=0.0,
        stratified_recall=0.0, coverage=0.0, gini=1.0,
    )
    defaults.update(metrics)
    return MetricReport(algorithm=name, dataset="d", n=5, **defaults)


def test_metric_ranks_higher_is_better():
    reports = [_report("a", f_measure=0.3), _report("b", f_measure=0.1), _report("c", f_measure=0.2)]
    assert metric_ranks(reports, "f_measure") == [1, 3, 2]


def test_metric_ranks_lower_is_better_for_gini():
    reports = [_report("a", gini=0.9), _report("b", gini=0.5)]
    assert metric_ranks(reports, "gini", higher_is_better=False) == [2, 1]


def test_metric_ranks_handle_ties():
    reports = [_report("a", coverage=0.5), _report("b", coverage=0.5), _report("c", coverage=0.1)]
    ranks = metric_ranks(reports, "coverage")
    assert ranks[0] == ranks[1] == 1
    assert ranks[2] == 3


def test_average_ranks_across_table4_metrics():
    good = _report("good", f_measure=0.3, stratified_recall=0.2, lt_accuracy=0.5, coverage=0.8, gini=0.4)
    bad = _report("bad", f_measure=0.1, stratified_recall=0.1, lt_accuracy=0.2, coverage=0.2, gini=0.9)
    averages = average_ranks([good, bad])
    assert averages[0] < averages[1]
    assert set(TABLE4_METRICS) == {"f_measure", "stratified_recall", "lt_accuracy", "coverage", "gini"}
