"""Tests for the RBT (ranking-based techniques) re-ranker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics.coverage import coverage_at_n
from repro.recommenders.rsvd import RSVD
from repro.rerankers.rbt import RankingBasedTechnique


@pytest.fixture(scope="module")
def fitted_base(medium_split):
    return RSVD(n_factors=10, n_epochs=25, learning_rate=0.02, seed=0).fit(medium_split.train)


def test_constructor_validation(fitted_base):
    with pytest.raises(ConfigurationError):
        RankingBasedTechnique(fitted_base, criterion="bogus")
    with pytest.raises(ConfigurationError):
        RankingBasedTechnique(fitted_base, ranking_threshold=6.0, max_rating=5.0)
    with pytest.raises(ConfigurationError):
        RankingBasedTechnique(fitted_base, popularity_floor=-1)


def test_unfitted_reranker_raises(fitted_base):
    reranker = RankingBasedTechnique(fitted_base)
    with pytest.raises(NotFittedError):
        reranker.rerank_user(0, 5)


def test_name_template(fitted_base, medium_split):
    reranker = RankingBasedTechnique(fitted_base, criterion="avg").fit(medium_split.train)
    assert reranker.name == "RBT(RSVD, Avg)"


def test_rerank_excludes_train_items(fitted_base, medium_split):
    reranker = RankingBasedTechnique(fitted_base, ranking_threshold=3.5).fit(medium_split.train)
    for user in (0, 7, 33):
        recs = reranker.rerank_user(user, 5)
        seen = set(medium_split.train.user_items(user).tolist())
        assert seen.isdisjoint(set(recs.tolist()))
        assert len(set(recs.tolist())) == recs.size


def test_low_threshold_promotes_unpopular_items(fitted_base, medium_split):
    """With a permissive TR the Pop criterion surfaces less popular items."""
    standard = fitted_base.recommend_all(5).as_dict()
    reranker = RankingBasedTechnique(
        fitted_base, criterion="pop", ranking_threshold=2.0, popularity_floor=0
    ).fit(medium_split.train)
    reranked = reranker.recommend_all(5).as_dict()
    popularity = medium_split.train.item_popularity()

    def mean_popularity(recs: dict[int, np.ndarray]) -> float:
        values = [popularity[i] for items in recs.values() for i in items]
        return float(np.mean(values))

    assert mean_popularity(reranked) < mean_popularity(standard)


def test_promoted_head_items_respect_the_threshold(fitted_base, medium_split):
    """Every item placed ahead of the standard order has a predicted rating >= TR.

    This is the defining property of RBT: only confidently-liked items are
    eligible for promotion by the alternative criterion.
    """
    threshold = 3.0
    reranker = RankingBasedTechnique(
        fitted_base, criterion="pop", ranking_threshold=threshold, popularity_floor=0
    ).fit(medium_split.train)
    for user in (0, 13, 57):
        recs = reranker.rerank_user(user, 5)
        scores = fitted_base.predict_scores(user, recs)
        standard = fitted_base.recommend(user, 5)
        standard_scores = fitted_base.predict_scores(user, standard)
        # Items that replaced a strictly better-scored standard item must have
        # cleared the promotion threshold.
        for rank, (item, score) in enumerate(zip(recs, scores)):
            if item not in standard and score < standard_scores.min():
                assert score >= threshold or np.isclose(score, threshold)


def test_reranked_coverage_is_never_catastrophically_low(fitted_base, medium_split):
    """RBT keeps a sane level of aggregate coverage (it only reorders heads)."""
    reranker = RankingBasedTechnique(
        fitted_base, criterion="pop", ranking_threshold=2.5, popularity_floor=0
    ).fit(medium_split.train)
    reranked = reranker.recommend_all(5).as_dict()
    assert coverage_at_n(reranked, medium_split.train.n_items) > 0.01


def test_high_threshold_preserves_base_ranking(fitted_base, medium_split):
    """If no prediction reaches TR the standard order must be untouched."""
    reranker = RankingBasedTechnique(
        fitted_base, ranking_threshold=5.0, max_rating=5.0
    ).fit(medium_split.train)
    standard = fitted_base.recommend_all(5)
    reranked = reranker.recommend_all(5)
    max_score = max(
        fitted_base.score_all_items(u).max() for u in range(0, medium_split.train.n_users, 10)
    )
    if max_score < 5.0:
        np.testing.assert_array_equal(standard.items, reranked.items)


def test_avg_criterion_orders_head_by_average_rating(medium_split, fitted_base):
    reranker = RankingBasedTechnique(
        fitted_base, criterion="avg", ranking_threshold=2.0, popularity_floor=0
    ).fit(medium_split.train)
    recs = reranker.rerank_user(0, 10)
    assert recs.size == 10


def test_popularity_floor_blocks_rare_items_from_head(medium_split, fitted_base):
    permissive = RankingBasedTechnique(
        fitted_base, criterion="pop", ranking_threshold=2.0, popularity_floor=0
    ).fit(medium_split.train)
    strict = RankingBasedTechnique(
        fitted_base, criterion="pop", ranking_threshold=2.0, popularity_floor=5
    ).fit(medium_split.train)
    popularity = medium_split.train.item_popularity()
    strict_recs = strict.recommend_all(5).as_dict()
    # With a popularity floor of 5, promoted items near the top must have
    # at least 5 ratings or come from the standard (non-promoted) tail.
    permissive_top = [i for items in permissive.recommend_all(5).as_dict().values() for i in items[:1]]
    strict_top = [i for items in strict_recs.values() for i in items[:1]]
    assert np.mean(popularity[strict_top]) >= np.mean(popularity[permissive_top])
