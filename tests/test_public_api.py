"""Contracts of the public API surface (top-level and repro.core facade)."""

from __future__ import annotations

import importlib

import pytest

import repro
import repro.core as core


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"


def test_core_facade_names_resolve():
    for name in core.__all__:
        assert hasattr(core, name), f"repro.core.__all__ lists {name} but it is missing"


def test_core_facade_reexports_the_same_objects():
    assert core.GANC is repro.GANC
    assert core.GANCConfig is repro.GANCConfig
    assert core.GeneralizedPreference is repro.GeneralizedPreference
    assert core.DynamicCoverage is repro.DynamicCoverage


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.data",
        "repro.data.io",
        "repro.data.stats",
        "repro.preferences",
        "repro.preferences.analysis",
        "repro.recommenders",
        "repro.coverage",
        "repro.ganc",
        "repro.rerankers",
        "repro.metrics",
        "repro.metrics.beyond",
        "repro.evaluation",
        "repro.experiments",
        "repro.experiments.report_writer",
        "repro.parallel",
        "repro.pipeline",
        "repro.serving",
        "repro.serving.service",
        "repro.utils",
        "repro.utils.plotting",
        "repro.cli",
    ],
)
def test_every_subpackage_imports_cleanly(module_name):
    assert importlib.import_module(module_name) is not None


def test_paper_template_components_compose(tiny_dataset):
    """The README's GANC(ARec, theta, CRec) template composes from the top-level API."""
    model = repro.GANC(
        repro.MostPopular(),
        repro.TfidfPreference(),
        repro.StaticCoverage(),
    )
    top = model.fit(tiny_dataset).recommend_all(2)
    assert top.items.shape == (tiny_dataset.n_users, 2)
    assert model.template.startswith("GANC(MostPopular")
