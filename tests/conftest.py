"""Shared fixtures for the test suite.

Fixtures are kept intentionally small so the whole suite runs in well under a
minute; session scope is used for anything that involves generation or model
fitting that several test modules share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import RatingDataset
from repro.data.split import RatioSplitter, TrainTestSplit
from repro.data.synthetic import SyntheticConfig, SyntheticDatasetFactory


@pytest.fixture(scope="session")
def tiny_dataset() -> RatingDataset:
    """A hand-built 4-user / 6-item dataset with known structure.

    Item 0 is rated by everyone (the blockbuster), items 4 and 5 are rated by
    a single user each (the long tail).  User 3 is the long-tail explorer.
    """
    triples = [
        # user, item, rating
        (0, 0, 5.0), (0, 1, 4.0), (0, 2, 3.0),
        (1, 0, 4.0), (1, 1, 5.0), (1, 3, 2.0),
        (2, 0, 3.0), (2, 2, 4.0), (2, 3, 5.0),
        (3, 0, 2.0), (3, 4, 5.0), (3, 5, 4.0),
    ]
    return RatingDataset.from_interactions(triples, name="tiny")


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """Configuration of the small synthetic dataset used across the suite."""
    return SyntheticConfig(
        name="small-synthetic",
        n_users=80,
        n_items=150,
        target_ratings=3_200,
        popularity_exponent=1.0,
        min_user_ratings=10,
        latent_dim=6,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_dataset(small_config: SyntheticConfig) -> RatingDataset:
    """A small popularity-biased synthetic dataset (80 users x 150 items)."""
    return SyntheticDatasetFactory(small_config).generate()


@pytest.fixture(scope="session")
def small_split(small_dataset: RatingDataset) -> TrainTestSplit:
    """A 50/50 per-user split of the small synthetic dataset."""
    return RatioSplitter(0.5, seed=11).split(small_dataset)


@pytest.fixture(scope="session")
def medium_split() -> TrainTestSplit:
    """A slightly larger split for GANC / OSLG behaviour tests."""
    config = SyntheticConfig(
        name="medium-synthetic",
        n_users=150,
        n_items=300,
        target_ratings=9_000,
        popularity_exponent=1.05,
        min_user_ratings=12,
        latent_dim=8,
        seed=21,
    )
    dataset = SyntheticDatasetFactory(config).generate()
    return RatioSplitter(0.6, seed=3).split(dataset)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
