"""End-to-end integration tests across the whole pipeline.

These tests run the complete chain — synthetic data generation, splitting,
preference estimation, base recommender training, GANC optimization, baseline
re-ranking and metric computation — and assert the paper's qualitative
relationships between the pieces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    Evaluator,
    GeneralizedPreference,
    MostPopular,
    PureSVD,
    RandomRecommender,
    TfidfPreference,
    make_dataset,
    split_ratings,
)
from repro.rerankers import PersonalizedRankingAdaptation, RankingBasedTechnique
from repro.recommenders.rsvd import RSVD


@pytest.fixture(scope="module")
def pipeline_split():
    data = make_dataset("ml100k", scale=0.4)
    return split_ratings(data, train_ratio=0.5, seed=0)


@pytest.fixture(scope="module")
def evaluator(pipeline_split):
    return Evaluator(pipeline_split, n=5)


@pytest.fixture(scope="module")
def ganc_run(pipeline_split, evaluator):
    model = GANC(
        PureSVD(n_factors=20),
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=80, seed=0),
    )
    model.fit(pipeline_split.train)
    return evaluator.evaluate_recommendations(model.recommend_all(5), algorithm=model.template)


@pytest.fixture(scope="module")
def arec_run(pipeline_split, evaluator):
    return evaluator.evaluate_recommender(PureSVD(n_factors=20), algorithm="PSVD")


def test_public_api_quickstart_path(pipeline_split):
    """The README quickstart must work as written."""
    model = GANC(
        PureSVD(n_factors=10),
        TfidfPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=40, seed=0),
    )
    top5 = model.fit(pipeline_split.train).recommend_all(5)
    assert top5.items.shape == (pipeline_split.train.n_users, 5)


def test_ganc_trades_accuracy_for_coverage(ganc_run, arec_run):
    """The paper's central trade-off: GANC gives up some accuracy for a large
    coverage and novelty gain over its accuracy recommender."""
    assert ganc_run.report.coverage > 2 * arec_run.report.coverage or (
        ganc_run.report.coverage > 0.8
    )
    assert ganc_run.report.gini < arec_run.report.gini
    assert ganc_run.report.lt_accuracy >= arec_run.report.lt_accuracy
    # Accuracy is reduced but not annihilated.
    assert ganc_run.report.f_measure > 0.0


def test_ganc_beats_random_on_accuracy(ganc_run, evaluator):
    rand = evaluator.evaluate_recommender(RandomRecommender(seed=0), algorithm="Rand")
    assert ganc_run.report.f_measure > rand.report.f_measure


def test_popularity_is_accurate_but_narrow(evaluator, ganc_run):
    pop = evaluator.evaluate_recommender(MostPopular(), algorithm="Pop")
    assert pop.report.f_measure > 0.0
    assert pop.report.coverage < ganc_run.report.coverage
    assert pop.report.lt_accuracy <= ganc_run.report.lt_accuracy


def test_rerankers_compose_with_trained_rsvd(pipeline_split, evaluator):
    base = RSVD(n_factors=12, n_epochs=25, learning_rate=0.02, seed=0).fit(pipeline_split.train)
    base_run = evaluator.evaluate_recommender(base, algorithm="RSVD", fit=False)

    rbt = RankingBasedTechnique(base, criterion="pop", ranking_threshold=4.0, popularity_floor=0)
    rbt.fit(pipeline_split.train)
    rbt_run = evaluator.evaluate_recommendations(rbt.recommend_all(5), algorithm=rbt.name)

    pra = PersonalizedRankingAdaptation(base, exchangeable_size=10, seed=0)
    pra.fit(pipeline_split.train)
    pra_run = evaluator.evaluate_recommendations(pra.recommend_all(5), algorithm=pra.name)

    for run in (base_run, rbt_run, pra_run):
        assert 0.0 <= run.report.f_measure <= 1.0
        assert 0.0 < run.report.coverage <= 1.0
    # Re-ranking never increases accuracy above the base by construction and
    # the adapted lists remain valid top-N sets.
    assert rbt_run.report.f_measure <= base_run.report.f_measure + 1e-6
    assert pra_run.report.f_measure <= base_run.report.f_measure + 1e-6


def test_theta_distribution_feeds_oslg_sampling(pipeline_split):
    theta = GeneralizedPreference().estimate(pipeline_split.train)
    model = GANC(
        MostPopular(),
        theta,
        DynamicCoverage(),
        config=GANCConfig(sample_size=50, seed=0),
    )
    model.fit(pipeline_split.train)
    model.recommend_all(5)
    result = model.last_oslg_result_
    assert result is not None
    sampled_theta = theta.theta[result.sampled_users]
    # The sample's preference range reflects the population's range.
    assert sampled_theta.min() <= np.percentile(theta.theta, 25)
    assert sampled_theta.max() >= np.percentile(theta.theta, 75)


def test_full_metric_reports_are_reproducible(pipeline_split, evaluator):
    def run_once() -> tuple:
        model = GANC(
            MostPopular(),
            GeneralizedPreference(),
            DynamicCoverage(),
            config=GANCConfig(sample_size=40, seed=123),
        )
        model.fit(pipeline_split.train)
        report = evaluator.evaluate_recommendations(
            model.recommend_all(5), algorithm="GANC"
        ).report
        return (report.f_measure, report.coverage, report.gini, report.lt_accuracy)

    assert run_once() == run_once()
