"""Serving layer: artifact compile, store lookups, fallback and HTTP.

The contract under test is byte-identity: every lookup a
:class:`RecommendationStore` answers — memory-mapped artifact row or live
fallback — must be exactly the row ``Pipeline.recommend_all`` produces for
the same persisted pipeline, for every registered recommender family and
for GANC pipelines.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError, DataFormatError, ServingError
from repro.pipeline import (
    ComponentSpec,
    EvaluationSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
)
from repro.registry import available
from repro.serving import (
    ARTIFACT_FORMAT_VERSION,
    RecommendationStore,
    build_server,
    compile_artifact,
    load_manifest,
    serving_environment,
    spec_hash,
    start_in_thread,
)
from repro.serving.service import json_body, recommend_body

N = 5


def _bare_spec(name: str, **overrides) -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec(name),
        evaluation=EvaluationSpec(n=N),
        seed=0,
        **overrides,
    )


def _ganc_spec() -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("pop"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=16, optimizer="oslg"),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )


@pytest.fixture(scope="module")
def pop_pipeline_dir(tmp_path_factory, small_split) -> Path:
    """A saved bare-Pop pipeline shared by the store/HTTP tests."""
    directory = tmp_path_factory.mktemp("pipeline-pop")
    Pipeline(_bare_spec("pop")).fit(small_split).save(directory)
    return directory


@pytest.fixture(scope="module")
def pop_artifact_dir(tmp_path_factory, pop_pipeline_dir) -> Path:
    """A compiled artifact of the shared Pop pipeline (small shards)."""
    directory = tmp_path_factory.mktemp("artifact-pop")
    compile_artifact(pop_pipeline_dir, directory, shard_size=16)
    return directory


# --------------------------------------------------------------------------- #
# Byte-identity: every registered recommender family
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(available("recommender")))
def test_artifact_lookups_match_recommend_all(name, small_split, tmp_path):
    pipeline = Pipeline(_bare_spec(name)).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=13)

    reference = pipeline.recommend_all(N).items
    store = RecommendationStore(tmp_path / "art")
    got = store.top_n(np.arange(reference.shape[0]), N)
    np.testing.assert_array_equal(got, reference, err_msg=name)
    # Single-user lookups are rows of the same table.
    for user in (0, 7, reference.shape[0] - 1):
        np.testing.assert_array_equal(store.top_n(user, N), reference[user])
    assert store.stats["fallback_rows"] == 0


def test_ganc_artifact_matches_recommend_all(small_split, tmp_path):
    pipeline = Pipeline(_ganc_spec()).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=9)

    reference = pipeline.recommend_all(N).items
    store = RecommendationStore(tmp_path / "art")
    np.testing.assert_array_equal(store.top_n(np.arange(reference.shape[0])), reference)

    manifest = load_manifest(tmp_path / "art")
    assert manifest["mode"] == "ganc"
    assert manifest["prefix_consistent"] is False


def test_parallel_compile_matches_serial(small_split, tmp_path):
    pipeline = Pipeline(_bare_spec("psvd10")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "serial", shard_size=11)
    compile_artifact(
        tmp_path / "pipe", tmp_path / "threaded",
        shard_size=11, n_jobs=3, backend="thread", block_size=7,
    )
    for entry in load_manifest(tmp_path / "serial")["shards"]:
        serial = (tmp_path / "serial" / entry["items"]).read_bytes()
        threaded = (tmp_path / "threaded" / entry["items"]).read_bytes()
        assert serial == threaded


# --------------------------------------------------------------------------- #
# Prefix slicing and fallback
# --------------------------------------------------------------------------- #
def test_bare_recommender_prefix_slice_matches_smaller_n(small_split, pop_artifact_dir):
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    store = RecommendationStore(pop_artifact_dir)
    for smaller in (1, 3):
        reference = pipeline.recommend_all(smaller).items
        np.testing.assert_array_equal(
            store.top_n(np.arange(reference.shape[0]), smaller), reference
        )
    assert store.stats["fallback_rows"] == 0


def test_ganc_smaller_n_falls_back_to_live_scoring(small_split, tmp_path):
    pipeline = Pipeline(_ganc_spec()).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(pipeline, tmp_path / "art")

    store = RecommendationStore(tmp_path / "art", pipeline=tmp_path / "pipe")
    reference = pipeline.recommend_all(3).items
    got, scores, source = store.lookup(np.arange(reference.shape[0]), 3)
    np.testing.assert_array_equal(got, reference)
    assert source == "live" and scores is None
    assert store.stats["fallback_builds"] == 1


def test_uncovered_users_serve_from_fallback(small_split, tmp_path):
    pipeline = Pipeline(_bare_spec("rand")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    n_users = small_split.train.n_users
    compile_artifact(tmp_path / "pipe", tmp_path / "art", max_users=n_users // 2, shard_size=8)

    reference = pipeline.recommend_all(N).items
    store = RecommendationStore(tmp_path / "art", pipeline=tmp_path / "pipe")
    assert store.coverage == n_users // 2 < store.n_users_total

    got, _, source = store.lookup(np.arange(n_users), N)
    np.testing.assert_array_equal(got, reference)
    assert source == "mixed"
    assert store.stats["artifact_rows"] == n_users // 2
    assert store.stats["fallback_rows"] == n_users - n_users // 2


def test_fallback_n_matches_live_scoring(small_split, pop_pipeline_dir, pop_artifact_dir):
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    store = RecommendationStore(pop_artifact_dir, pipeline=pop_pipeline_dir)
    bigger = N + 3  # beyond the compiled n -> live fallback
    reference = pipeline.recommend_all(bigger).items
    np.testing.assert_array_equal(store.top_n(np.arange(reference.shape[0]), bigger), reference)


def test_fallback_without_pipeline_raises(pop_artifact_dir):
    store = RecommendationStore(pop_artifact_dir)
    with pytest.raises(ServingError, match="no\\s+fallback pipeline"):
        store.top_n(0, N + 1)


def test_concurrent_fallback_builds_serialize(small_split, tmp_path):
    """Concurrent fallback lookups on a dyn-coverage GANC store are safe.

    ``recommend_all`` on a dynamic-coverage pipeline mutates shared
    optimizer state, so overlapping builds used to corrupt each other's
    tables; the store must serialize them (and, as a side effect, dedupe
    same-``n`` builds instead of racing).
    """
    pipeline = Pipeline(_ganc_spec()).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(pipeline, tmp_path / "art")
    users = np.arange(small_split.train.n_users, dtype=np.int64)
    bigger = N + 5  # beyond the compiled n -> every row needs the fallback
    reference = pipeline.recommend_all(bigger).items

    for _ in range(3):
        store = RecommendationStore(tmp_path / "art", pipeline=tmp_path / "pipe")
        results: list[np.ndarray | None] = [None] * 4
        threads = [
            threading.Thread(
                target=lambda slot=slot: results.__setitem__(
                    slot, store.top_n(users, bigger)
                )
            )
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for got in results:
            np.testing.assert_array_equal(got, reference)
        assert store.stats["fallback_builds"] == 1


def test_fallback_lru_evicts_oldest_table(pop_pipeline_dir, pop_artifact_dir):
    store = RecommendationStore(
        pop_artifact_dir, pipeline=pop_pipeline_dir, fallback_cache_size=1
    )
    store.top_n(0, N + 1)
    store.top_n(0, N + 2)
    store.top_n(0, N + 1)  # evicted, rebuilt
    assert store.stats["fallback_builds"] == 3
    store.top_n(0, N + 1)  # cached now
    assert store.stats["fallback_builds"] == 3


def test_n_beyond_item_universe_is_rejected(small_split, pop_pipeline_dir, pop_artifact_dir):
    """Absurd n must fail fast, not allocate an (n_users x n) fallback table."""
    store = RecommendationStore(pop_artifact_dir, pipeline=pop_pipeline_dir)
    with pytest.raises(ConfigurationError, match="item universe"):
        store.top_n(0, small_split.train.n_items + 1)


def test_recompile_removes_stale_shards_and_old_state_survives(small_split, tmp_path):
    """In-place recompile: atomic renames + stale-shard cleanup + live maps."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=8)
    store = RecommendationStore(tmp_path / "art")
    users = np.arange(small_split.train.n_users)
    reference = store.top_n(users, N)

    # Coarser layout -> fewer shard files; the old ones must be deleted.
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=64)
    manifest = load_manifest(tmp_path / "art")
    on_disk = sorted(p.name for p in (tmp_path / "art" / "shards").iterdir())
    referenced = sorted(
        entry[kind].split("/")[-1] for entry in manifest["shards"] for kind in ("items", "scores")
    )
    assert on_disk == referenced

    # The store's pre-recompile state still serves the old (identical) rows
    # from its unlinked inodes, and a reload picks the new layout up.
    np.testing.assert_array_equal(store.top_n(users, N), reference)
    store.reload()
    assert int(store.manifest["shard_size"]) == 64
    np.testing.assert_array_equal(store.top_n(users, N), reference)


def test_user_out_of_range_raises(pop_artifact_dir):
    store = RecommendationStore(pop_artifact_dir)
    with pytest.raises(ServingError, match="out of range"):
        store.top_n(store.n_users_total)
    with pytest.raises(ServingError, match="out of range"):
        store.top_n(-1)


def test_spec_hash_ignores_execution_section(small_split, tmp_path):
    """Execution is mechanism: a --jobs override must not orphan an artifact."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    # Compiling with an executor override mutates the in-memory spec's
    # execution section; the artifact must still accept the saved pipeline.
    compile_artifact(tmp_path / "pipe", tmp_path / "art", n_jobs=2, backend="thread")
    store = RecommendationStore(tmp_path / "art", pipeline=tmp_path / "pipe")
    np.testing.assert_array_equal(
        store.top_n(np.arange(small_split.train.n_users), N),
        pipeline.recommend_all(N).items,
    )


def test_spec_mismatch_is_rejected(small_split, pop_artifact_dir, tmp_path):
    Pipeline(_bare_spec("rand")).fit(small_split).save(tmp_path / "other")
    with pytest.raises(ConfigurationError, match="does not match"):
        RecommendationStore(pop_artifact_dir, pipeline=tmp_path / "other")


def test_compile_executor_override_does_not_mutate_caller_pipeline(small_split, tmp_path):
    """The --jobs/--backend override applies for the duration of the compile only."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    before = pipeline.spec.execution
    compile_artifact(pipeline, tmp_path / "art", n_jobs=3, backend="thread")
    assert pipeline.spec.execution == before


def test_failed_reload_keeps_previous_state(small_split, tmp_path):
    """A reload that fails validation must leave the old state fully serving."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=16)
    store = RecommendationStore(tmp_path / "art", pipeline=tmp_path / "pipe")
    reference = store.top_n(np.arange(small_split.train.n_users), N)

    # Recompile the artifact in place from a *different* spec: the reload
    # must reject it atomically instead of half-swapping manifests.
    other = Pipeline(_bare_spec("rand")).fit(small_split)
    compile_artifact(other, tmp_path / "art", shard_size=16)
    with pytest.raises(ConfigurationError, match="does not match"):
        store.reload()
    np.testing.assert_array_equal(
        store.top_n(np.arange(small_split.train.n_users), N), reference
    )


# --------------------------------------------------------------------------- #
# Artifact format
# --------------------------------------------------------------------------- #
def test_manifest_records_layout_hash_and_environment(small_split, pop_pipeline_dir, pop_artifact_dir):
    manifest = load_manifest(pop_artifact_dir)
    assert manifest["format"] == ARTIFACT_FORMAT_VERSION
    assert manifest["n"] == N
    assert manifest["n_items"] == small_split.train.n_items
    assert manifest["mode"] == "recommender"
    assert manifest["environment"] == serving_environment()
    assert len(manifest["spec_sha256"]) == 64
    assert manifest["spec_sha256"] == spec_hash(Pipeline.load(pop_pipeline_dir))

    n_users = small_split.train.n_users
    stops = [shard["stop"] for shard in manifest["shards"]]
    starts = [shard["start"] for shard in manifest["shards"]]
    assert starts[0] == 0 and stops[-1] == n_users
    assert starts[1:] == stops[:-1]
    for shard in manifest["shards"]:
        items = np.load(pop_artifact_dir / shard["items"], mmap_mode="r")
        scores = np.load(pop_artifact_dir / shard["scores"], mmap_mode="r")
        assert items.shape == (shard["stop"] - shard["start"], N)
        assert items.dtype == np.int64
        assert scores.shape == items.shape


def test_scores_are_the_recommenders_raw_scores(small_split, tmp_path):
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    compile_artifact(pipeline, tmp_path / "art", shard_size=1000)
    manifest = load_manifest(tmp_path / "art")
    items = np.load(tmp_path / "art" / manifest["shards"][0]["items"])
    scores = np.load(tmp_path / "art" / manifest["shards"][0]["scores"])
    matrix = pipeline.recommender.predict_matrix(None)
    valid = items >= 0
    expected = np.take_along_axis(matrix, np.where(valid, items, 0), axis=1)
    np.testing.assert_array_equal(scores[valid], expected[valid])
    assert np.isnan(scores[~valid]).all()


def test_unsupported_format_version_rejected(pop_artifact_dir, tmp_path):
    broken = tmp_path / "broken"
    broken.mkdir()
    manifest = load_manifest(pop_artifact_dir)
    manifest["format"] = 999
    (broken / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(DataFormatError, match="unsupported artifact format"):
        RecommendationStore(broken)


def test_compile_rejects_bad_arguments(small_split, tmp_path):
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    with pytest.raises(ConfigurationError, match="shard_size"):
        compile_artifact(pipeline, tmp_path / "a", shard_size=0)
    with pytest.raises(ConfigurationError, match="n must be"):
        compile_artifact(pipeline, tmp_path / "a", n=0)
    with pytest.raises(ConfigurationError, match="max_users"):
        compile_artifact(pipeline, tmp_path / "a", max_users=0)
    with pytest.raises(ConfigurationError, match="fitted"):
        compile_artifact(Pipeline(_bare_spec("pop")), tmp_path / "a")


def test_compile_cli_round_trip(small_split, pop_pipeline_dir, tmp_path):
    """`repro compile` writes the same artifact the library call does."""
    exit_code = main(
        [
            "compile",
            "--pipeline", str(pop_pipeline_dir),
            "--artifact", str(tmp_path / "art"),
            "--shard-size", "16",
        ]
    )
    assert exit_code == 0
    reference = Pipeline(_bare_spec("pop")).fit(small_split).recommend_all(N).items
    store = RecommendationStore(tmp_path / "art")
    np.testing.assert_array_equal(store.top_n(np.arange(reference.shape[0])), reference)


# --------------------------------------------------------------------------- #
# HTTP round trip
# --------------------------------------------------------------------------- #
@pytest.fixture()
def live_server(pop_pipeline_dir, pop_artifact_dir):
    """A serving HTTP server on an ephemeral port, torn down after the test."""
    server = build_server(pop_artifact_dir, pipeline=pop_pipeline_dir, port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


def test_http_recommend_matches_recommend_all(small_split, live_server):
    _, base = live_server
    reference = Pipeline(_bare_spec("pop")).fit(small_split).recommend_all(N)
    for user in (0, 3, small_split.train.n_users - 1):
        payload = _get_json(f"{base}/recommend?user={user}&n={N}")
        assert payload["items"] == [int(i) for i in reference.for_user(user)]
        assert payload["source"] == "artifact"
        assert len(payload["scores"]) == len(payload["items"])
    # n defaults to the artifact's compiled n
    payload = _get_json(f"{base}/recommend?user=0")
    assert payload["n"] == N


def test_http_fallback_lookup(small_split, live_server):
    _, base = live_server
    reference = Pipeline(_bare_spec("pop")).fit(small_split).recommend_all(N + 2)
    payload = _get_json(f"{base}/recommend?user=2&n={N + 2}")
    assert payload["items"] == [int(i) for i in reference.for_user(2)]
    assert payload["source"] == "live"
    assert payload["scores"] is None


def test_http_healthz_and_manifest(live_server, pop_artifact_dir):
    server, base = live_server
    health = _get_json(f"{base}/healthz")
    assert health["status"] == "ok"
    assert health["n"] == N
    assert health["reloads"] == 0
    assert health["reload_failures"] == 0
    assert set(health["served"]) == {"artifact_rows", "fallback_rows", "fallback_builds"}
    assert _get_json(f"{base}/manifest") == load_manifest(pop_artifact_dir)


def test_http_error_statuses(live_server):
    _, base = live_server
    for path, status in (
        ("/nope", 404),
        ("/recommend", 400),
        ("/recommend?user=abc", 400),
        ("/recommend?user=99999", 404),
        ("/recommend?user=0&n=0", 400),
    ):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(f"{base}{path}")
        assert excinfo.value.code == status, path
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))


def test_warm_reload_keeps_serving(live_server):
    server, base = live_server
    before = _get_json(f"{base}/recommend?user=1")
    server.reload()  # what the SIGHUP handler invokes
    after = _get_json(f"{base}/recommend?user=1")
    assert before["items"] == after["items"]
    assert _get_json(f"{base}/healthz")["reloads"] == 1


def test_failed_reload_logs_and_counts_without_dropping_service(
    small_split, tmp_path, caplog
):
    """The SIGHUP hook survives a broken artifact: logged, counted, serving."""
    pipeline = Pipeline(_bare_spec("pop")).fit(small_split)
    pipeline.save(tmp_path / "pipe")
    compile_artifact(tmp_path / "pipe", tmp_path / "art", shard_size=16)
    server = build_server(tmp_path / "art", pipeline=tmp_path / "pipe", port=0)
    start_in_thread(server)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        before = _get_json(f"{base}/recommend?user=1")
        # Recompile in place from a different spec: reload must reject it.
        other = Pipeline(_bare_spec("rand")).fit(small_split)
        compile_artifact(other, tmp_path / "art", shard_size=16)
        with caplog.at_level(logging.ERROR, logger="repro.serving"):
            server.reload()
        assert server.reload_failures == 1 and server.reloads == 0
        assert any("reload failed" in record.message for record in caplog.records)
        health = _get_json(f"{base}/healthz")
        assert health["reload_failures"] == 1 and health["reloads"] == 0
        assert _get_json(f"{base}/recommend?user=1") == before
    finally:
        server.shutdown()
        server.server_close()


def test_legacy_keep_alive_reuses_one_connection(live_server):
    """HTTP/1.1 keep-alive: consecutive requests share one TCP connection."""
    server, _ = live_server
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", f"/recommend?user=0&n={N}")
        first = conn.getresponse()
        assert first.status == 200
        first.read()
        sock = conn.sock
        assert sock is not None
        conn.request("GET", "/healthz")
        second = conn.getresponse()
        assert second.status == 200
        second.read()
        assert conn.sock is sock  # same TCP connection served both
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Payload encoding and routing predicates shared with the async tier
# --------------------------------------------------------------------------- #
def test_recommend_body_is_byte_identical_to_json_body():
    """The hand-rolled /recommend encoder must track json.dumps exactly."""
    payloads = [
        {"user": 0, "n": 5, "items": [3, 1, 2], "scores": [1.5, 0.25, -0.0],
         "source": "artifact"},
        {"user": 10**12, "n": 1, "items": [], "scores": [], "source": "artifact"},
        {"user": 7, "n": 3, "items": [1, 2, 9], "scores": None, "source": "live"},
        {"user": -1, "n": 2, "items": [0], "scores": [None], "source": "live"},
        {"user": 3, "n": 4, "items": [5, 6],
         "scores": [1e-07, 123456789.123456789], "source": "artifact"},
        {"user": 2, "n": 2, "items": [8, 9], "scores": [1e16, 3.0], "source": "mixed"},
    ]
    for payload in payloads:
        assert recommend_body(payload) == json_body(payload), payload


def test_covers_routing_predicate(small_split, pop_pipeline_dir, pop_artifact_dir):
    """covers() approves exactly the lookups the mapped shards can answer."""
    store = RecommendationStore(pop_artifact_dir, pipeline=pop_pipeline_dir)
    last = store.coverage - 1
    assert store.covers(0, N) and store.covers(last, N)
    assert store.covers(0)  # n defaults to the artifact's n
    assert store.covers(0, 3)  # prefix slice of a consistent artifact
    assert store.covers(np.array([0, last]), N)
    assert store.covers(np.array([], dtype=np.int64), N)
    assert not store.covers(-1, N)
    assert not store.covers(store.coverage, N)
    assert not store.covers(0, 0)
    assert not store.covers(0, N + 1)  # live fallback territory
    assert not store.covers(0, small_split.train.n_items + 1)
    assert not store.covers(0, "not-an-n")
    assert not store.covers(np.array([0, store.coverage]), N)
