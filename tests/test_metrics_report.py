"""Tests for relevant-item extraction and the aggregated metric report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import RatingDataset
from repro.data.split import RatioSplitter
from repro.exceptions import EvaluationError
from repro.metrics.report import MetricReport, evaluate_top_n, relevant_test_items
from repro.recommenders.popularity import MostPopular


def test_relevant_test_items_thresholding(tiny_dataset):
    split = RatioSplitter(0.6, seed=0).split(tiny_dataset)
    relevant = relevant_test_items(split.test, relevance_threshold=4.0)
    assert set(relevant) == set(range(tiny_dataset.n_users))
    for user, items in relevant.items():
        test_items, test_ratings = split.test.user_ratings(user)
        expected = set(test_items[test_ratings >= 4.0].tolist())
        assert set(items.tolist()) == expected


def test_relevant_test_items_lower_threshold_is_superset(small_split):
    strict = relevant_test_items(small_split.test, relevance_threshold=4.5)
    relaxed = relevant_test_items(small_split.test, relevance_threshold=3.0)
    for user in strict:
        assert set(strict[user].tolist()) <= set(relaxed[user].tolist())


def test_evaluate_top_n_produces_full_report(small_split):
    model = MostPopular().fit(small_split.train)
    recs = model.recommend_all(5).as_dict()
    report = evaluate_top_n(
        recs, small_split.train, small_split.test, 5, algorithm="Pop", include_ndcg=True
    )
    assert isinstance(report, MetricReport)
    assert report.algorithm == "Pop"
    assert report.n == 5
    for value in report.as_dict().values():
        assert 0.0 <= value <= 1.0
    assert "ndcg" in report.extras


def test_report_metric_lookup(small_split):
    model = MostPopular().fit(small_split.train)
    recs = model.recommend_all(5).as_dict()
    report = evaluate_top_n(recs, small_split.train, small_split.test, 5, algorithm="Pop")
    assert report.metric("f_measure") == report.f_measure
    assert report.metric("coverage") == report.coverage
    with pytest.raises(EvaluationError):
        report.metric("does-not-exist")


def test_evaluate_top_n_rejects_bad_n(small_split):
    with pytest.raises(EvaluationError):
        evaluate_top_n({}, small_split.train, small_split.test, 0)


def test_pop_profile_matches_paper_expectations(small_split):
    """Pop: relatively accurate but with poor coverage and novelty."""
    model = MostPopular().fit(small_split.train)
    recs = model.recommend_all(5).as_dict()
    report = evaluate_top_n(recs, small_split.train, small_split.test, 5, algorithm="Pop")
    assert report.coverage < 0.3
    assert report.gini > 0.7
    assert report.lt_accuracy < 0.2


def test_f_measure_relationship_holds_in_report(small_split):
    model = MostPopular().fit(small_split.train)
    recs = model.recommend_all(5).as_dict()
    report = evaluate_top_n(recs, small_split.train, small_split.test, 5, algorithm="Pop")
    if report.precision + report.recall > 0:
        expected = report.precision * report.recall / (report.precision + report.recall)
        assert report.f_measure == pytest.approx(expected)


def test_relevant_items_for_user_without_test_ratings():
    data = RatingDataset(
        np.array([0, 0, 1]),
        np.array([0, 1, 0]),
        np.array([5.0, 4.0, 5.0]),
        n_users=3,
        n_items=2,
    )
    relevant = relevant_test_items(data)
    assert relevant[2].size == 0
