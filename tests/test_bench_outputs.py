"""Schema checks for the committed machine-readable benchmark outputs.

``benchmarks/output/BENCH_*.json`` documents are the PR-over-PR performance
trajectory; these tests pin their schema (via the shared ``bench_json``
validator) so a malformed committed document — or a drifting schema —
fails in the tier-1 suite, not only in the CI bench-smoke job.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
OUTPUT_DIR = BENCH_DIR / "output"

sys.path.insert(0, str(BENCH_DIR))

import bench_json  # noqa: E402

#: Documents every PR must keep committed (one per standalone driver).
EXPECTED_DOCUMENTS = (
    "BENCH_ganc.json",
    "BENCH_batch_scoring.json",
    "BENCH_parallel_scaling.json",
    "BENCH_serving.json",
    "BENCH_scale.json",
    "BENCH_simulate.json",
    "BENCH_update.json",
)


@pytest.mark.parametrize("name", EXPECTED_DOCUMENTS)
def test_committed_bench_document_is_valid(name):
    path = OUTPUT_DIR / name
    assert path.exists(), (
        f"{name} is missing; regenerate it with "
        "`PYTHONPATH=src python benchmarks/run_all.py`"
    )
    payload = bench_json.load_and_validate(path)
    assert f"BENCH_{payload['bench']}.json" == name


def test_ganc_document_records_the_issue_gates():
    """The committed GANC numbers must clear the ISSUE's headline gates."""
    payload = bench_json.load_and_validate(OUTPUT_DIR / "BENCH_ganc.json")
    headline = payload["config"]["headline"]
    speedups = payload["speedups"]
    assert payload["equal"] is True
    assert speedups[f"{headline}_sequential_sampled_pass"] >= 5.0
    assert speedups[f"{headline}_oslg_end_to_end"] >= 3.0


def test_serving_document_records_the_load_gate():
    """The committed serving numbers must clear the ISSUE's load gates."""
    payload = bench_json.load_and_validate(OUTPUT_DIR / "BENCH_serving.json")
    config = payload["config"]
    metrics = payload["metrics"]
    assert payload["equal"] is True
    assert config["clients"] >= 16
    for key in ("rps", "p50_us", "p95_us", "p99_us"):
        assert metrics[key] > 0
    for tier in ("legacy", "async", "coalesced"):
        assert metrics[f"{tier}_rps"] > 0
        assert metrics[f"{tier}_p99_us"] >= metrics[f"{tier}_p50_us"]
    # Headline metrics are the coalesced tier's.
    assert metrics["rps"] == metrics["coalesced_rps"]
    assert payload["speedups"]["coalesced_vs_legacy_rps"] >= 3.0


def test_simulate_document_records_throughput_and_drift_series():
    """The committed simulation numbers: throughput, determinism, drift."""
    payload = bench_json.load_and_validate(OUTPUT_DIR / "BENCH_simulate.json")
    metrics = payload["metrics"]
    assert payload["equal"] is True  # serial vs threaded replay byte-identical
    assert metrics["events_per_s"] > 0
    assert metrics["online_events_per_s"] > 0
    n_windows = payload["config"]["events"] // payload["config"]["window"]
    for index in range(n_windows):
        assert 0.0 <= metrics[f"window_{index}_coverage"] <= 1.0
        assert 0.0 <= metrics[f"window_{index}_gini"] <= 1.0
        assert 0.0 <= metrics[f"window_{index}_precision"] <= 1.0
        assert 0.0 <= metrics[f"window_{index}_epc"] <= 1.0
    assert 0.0 <= metrics["cumulative_coverage"] <= 1.0
    assert 0.0 <= metrics["online_cumulative_coverage"] <= 1.0


def test_update_document_records_delta_compile_numbers():
    """The committed delta-update numbers: byte identity + cold-start win."""
    payload = bench_json.load_and_validate(OUTPUT_DIR / "BENCH_update.json")
    metrics = payload["metrics"]
    speedups = payload["speedups"]
    # Every updated artifact was byte-compared against a from-scratch
    # compile of the extended dataset.
    assert payload["equal"] is True
    for label in ("rating", "coldstart"):
        assert metrics[f"{label}_update_s"] > 0
        assert metrics[f"{label}_scratch_s"] > 0
        assert metrics[f"{label}_rows_recomputed"] >= 1
    # Cold-start arrivals hit the narrowed path: most rows carried over,
    # unchanged shards left in place, and the update beats a full recompile.
    assert metrics["coldstart_shards_skipped"] >= 1
    assert speedups["coldstart_update_vs_scratch"] >= 2.0


def test_scale_document_records_the_issue_gates():
    """The committed 10M-rating numbers: throughput, speedup and recall."""
    payload = bench_json.load_and_validate(OUTPUT_DIR / "BENCH_scale.json")
    config = payload["config"]
    metrics = payload["metrics"]
    # The workload really is the 10M-rating target.
    assert config["ratings"] >= 10_000_000
    for key in (
        "generate_rows_per_s",
        "ingest_rows_per_s",
        "exact_fit_s",
        "ann_fit_s",
        "compile_users_per_s",
        "peak_rss_mb",
    ):
        assert metrics[key] > 0
    # ISSUE gates: the sparse path is >=5x over exact batched scoring at
    # scale, with recall@10 >= 0.95 against the exact top-N lists.
    assert payload["speedups"]["ann_score_vs_exact"] >= 5.0
    assert metrics["recall_at_n"] >= 0.95


def test_validator_rejects_malformed_payloads():
    assert bench_json.validate_payload([]) != []
    assert bench_json.validate_payload({"schema": 0}) != []
    errors = bench_json.validate_payload(
        {
            "schema": bench_json.SCHEMA_VERSION,
            "bench": "x",
            "config": {"a": 1},
            "metrics": {"m": float("nan")},
        }
    )
    assert any("finite" in error for error in errors)
    assert (
        bench_json.validate_payload(
            {
                "schema": bench_json.SCHEMA_VERSION,
                "bench": "x",
                "config": {"a": 1},
                "metrics": {"m": 1.0},
                "speedups": {"s": 2.0},
                "equal": True,
            }
        )
        == []
    )
