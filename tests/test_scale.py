"""Equivalence gates for the scale layer: out-of-core stores and sparse KNN.

The 10M-rating workload (``benchmarks/bench_scale.py``) only stays honest if
the memory-bounded paths are pinned to the in-memory, golden-covered ones.
This file is that pin:

* chunked CSV ingestion (:mod:`repro.data.outofcore`) must reproduce the
  in-memory :meth:`RatingDataset.from_interactions` dataset *bit-identically*
  — id maps, interaction order, split membership, batch gathers — at every
  shard size, including the ``append`` path vs a single ingest,
* the ``exact=False`` blocked gram scan of :class:`ItemKNN` (and the sparse
  container of :class:`UserKNN`) must store the same similarity values as the
  dense exact path and emit identical recommendations,
* the opt-in JL sketch (``n_projections``) is approximate by design, so it is
  gated on recall@N >= 0.95 against the exact path on a seeded clustered
  dataset, plus determinism by seed,
* float32 scoring is gated on a documented tolerance (``FLOAT32_ATOL``) and
  on rank stability: any item that enters/leaves a top-N list under float32
  must be a float64 near-tie within that tolerance,
* ``exact=True`` / ``dtype="float64"`` stay the defaults everywhere a spec
  or artifact can express the toggle, so the goldens keep guarding the
  historical numbers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from scipy import sparse

from repro.data.dataset import RatingDataset
from repro.data.incremental import iter_rating_rows, read_delta_csv
from repro.data.outofcore import (
    INGEST_FORMAT,
    ingest_csv,
    load_ingest_manifest,
    load_outofcore,
)
from repro.data.split import RatioSplitter
from repro.exceptions import ConfigurationError, DataError, DataFormatError
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
)
from repro.recommenders.knn import ItemKNN
from repro.recommenders.user_knn import UserKNN
from repro.registry import create

#: Documented float32-vs-float64 scoring tolerance (see ``docs/scale.md``).
#: Observed drift at benchmark scale is ~1e-6; the gate leaves two orders of
#: magnitude of headroom while still catching any algorithmic divergence.
FLOAT32_ATOL = 1e-4


# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #
def _interaction_rows(n_rows: int = 80, seed: int = 0) -> list[tuple[object, object, float]]:
    """Deterministic raw triples with mixed int/str identifiers and repeats."""
    rng = np.random.default_rng(seed)
    rows: list[tuple[object, object, float]] = []
    for _ in range(n_rows):
        user = int(rng.integers(0, 12))
        item = int(rng.integers(0, 15))
        raw_user: object = f"u{user}" if user % 3 == 0 else user
        raw_item: object = f"i{item}" if item % 4 == 0 else item
        rows.append((raw_user, raw_item, float(rng.integers(1, 6))))
    return rows


def _write_csv(path, rows) -> None:
    path.write_text(
        "".join(f"{user},{item},{rating}\n" for user, item, rating in rows),
        encoding="utf-8",
    )


def _clustered_dataset(
    n_clusters: int = 12,
    items_per_cluster: int = 10,
    users_per_cluster: int = 20,
    ratings_per_user: int = 8,
    seed: int = 7,
) -> RatingDataset:
    """A block-structured dataset: each user rates only inside one item cluster.

    Within-cluster item pairs share many co-raters (high similarity) while
    cross-cluster pairs share none, so the true neighbour lists are sharply
    separated — the regime the JL sketch is designed for, and a fixture where
    its recall gate is meaningful rather than vacuous.
    """
    rng = np.random.default_rng(seed)
    users: list[int] = []
    items: list[int] = []
    values: list[float] = []
    n_items = n_clusters * items_per_cluster
    user = 0
    for cluster in range(n_clusters):
        base = cluster * items_per_cluster
        for _ in range(users_per_cluster):
            chosen = rng.choice(items_per_cluster, size=ratings_per_user, replace=False)
            for item in chosen:
                users.append(user)
                items.append(base + int(item))
                values.append(float(rng.integers(3, 6)))
            user += 1
    return RatingDataset(
        np.asarray(users),
        np.asarray(items),
        np.asarray(values, dtype=np.float64),
        n_users=user,
        n_items=n_items,
        name="clustered",
    )


@pytest.fixture(scope="module")
def clustered():
    return _clustered_dataset()


def _assert_same_dataset(actual: RatingDataset, expected: RatingDataset) -> None:
    assert actual.n_users == expected.n_users
    assert actual.n_items == expected.n_items
    assert actual.user_ids == expected.user_ids
    assert actual.item_ids == expected.item_ids
    assert np.array_equal(actual.user_indices, expected.user_indices)
    assert np.array_equal(actual.item_indices, expected.item_indices)
    assert np.array_equal(actual.ratings, expected.ratings)


def _recall(reference: np.ndarray, candidate: np.ndarray) -> float:
    hits = 0
    total = 0
    for ref_row, cand_row in zip(reference, candidate):
        ref = {int(item) for item in ref_row if item >= 0}
        if not ref:
            continue
        hits += len(ref & {int(item) for item in cand_row if item >= 0})
        total += len(ref)
    return hits / total


# --------------------------------------------------------------------------- #
# Out-of-core ingestion: bit-identity with the in-memory dataset
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("chunk_size", [1, 7, 1000])
def test_ingest_bit_identical_to_in_memory_dataset(tmp_path, chunk_size):
    rows = _interaction_rows()
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, rows)
    store = tmp_path / "store"

    report = ingest_csv(csv_path, store, chunk_size=chunk_size)
    loaded = load_outofcore(store)
    reference = RatingDataset.from_interactions(rows)

    _assert_same_dataset(loaded, reference)
    assert report.n_new_ratings == len(rows)
    assert report.n_shards == -(-len(rows) // chunk_size)


def test_append_matches_single_ingest_and_extend_semantics(tmp_path):
    rows = _interaction_rows(n_rows=90, seed=1)
    first, second = rows[:55], rows[55:]
    csv_a = tmp_path / "a.csv"
    csv_b = tmp_path / "b.csv"
    _write_csv(csv_a, first)
    _write_csv(csv_b, second)

    store = tmp_path / "store"
    ingest_csv(csv_a, store, chunk_size=16)
    report = ingest_csv(csv_b, store, chunk_size=16, append=True)
    appended = load_outofcore(store)

    # Same dataset as ingesting everything at once...
    csv_all = tmp_path / "all.csv"
    _write_csv(csv_all, rows)
    once = tmp_path / "once"
    ingest_csv(csv_all, once, chunk_size=16)
    _assert_same_dataset(appended, load_outofcore(once))

    # ...and as the in-memory extend path: from_interactions assigns dense
    # indices in first-appearance order across the concatenated stream.
    _assert_same_dataset(appended, RatingDataset.from_interactions(rows))
    assert report.revision == 2
    assert report.n_ratings == len(rows)
    assert report.n_new_ratings == len(second)


def test_split_membership_and_batch_gathers_identical(tmp_path):
    rows = _interaction_rows(n_rows=120, seed=2)
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, rows)
    store = tmp_path / "store"
    ingest_csv(csv_path, store, chunk_size=13)

    loaded = load_outofcore(store)
    reference = RatingDataset.from_interactions(rows)

    split_l = RatioSplitter(0.8, seed=3).split(loaded)
    split_r = RatioSplitter(0.8, seed=3).split(reference)
    for side_l, side_r in ((split_l.train, split_r.train), (split_l.test, split_r.test)):
        assert np.array_equal(side_l.user_indices, side_r.user_indices)
        assert np.array_equal(side_l.item_indices, side_r.item_indices)
        assert np.array_equal(side_l.ratings, side_r.ratings)

    users = split_r.train.users_with_ratings()
    items_l, offsets_l = split_l.train.user_items_batch(users)
    items_r, offsets_r = split_r.train.user_items_batch(users)
    assert np.array_equal(items_l, items_r)
    assert np.array_equal(offsets_l, offsets_r)


def test_loaded_arrays_are_readonly_memmaps(tmp_path):
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, _interaction_rows(n_rows=30))
    store = tmp_path / "store"
    ingest_csv(csv_path, store, chunk_size=8)

    mapped = load_outofcore(store)
    for array in (mapped.user_indices, mapped.item_indices, mapped.ratings):
        # The constructor's np.asarray is a no-copy view over the memmap
        # (the base-class view drops the np.memmap subclass, not the mapping).
        base = array
        while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
            assert base.base is not None, "array was copied off the memmap"
            base = base.base
        assert isinstance(base, np.memmap)
        assert not array.flags.writeable

    resident = load_outofcore(store, mmap=False)
    assert not isinstance(resident.ratings, np.memmap)
    _assert_same_dataset(mapped, resident)


def test_consolidation_is_cached_per_revision(tmp_path):
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, _interaction_rows(n_rows=40, seed=4))
    store = tmp_path / "store"
    ingest_csv(csv_path, store, chunk_size=9)

    load_outofcore(store)
    marker = store / "consolidated" / "revision.json"
    first_stat = marker.stat().st_mtime_ns
    load_outofcore(store)  # cache hit: marker untouched
    assert marker.stat().st_mtime_ns == first_stat

    delta = tmp_path / "delta.csv"
    _write_csv(delta, [("newuser", "newitem", 4.0)])
    ingest_csv(delta, store, chunk_size=9, append=True)
    grown = load_outofcore(store)  # rebuilt at the new revision
    assert json.loads(marker.read_text(encoding="utf-8"))["revision"] == 2
    assert grown.n_ratings == 41
    assert grown.user_ids[-1] == "newuser"


def test_ingest_error_paths(tmp_path):
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, _interaction_rows(n_rows=10))

    with pytest.raises(ConfigurationError, match="chunk_size"):
        ingest_csv(csv_path, tmp_path / "store", chunk_size=0)

    with pytest.raises(DataError, match="cannot append"):
        ingest_csv(csv_path, tmp_path / "missing", append=True)

    occupied = tmp_path / "occupied"
    occupied.mkdir()
    (occupied / "stray.txt").write_text("x", encoding="utf-8")
    with pytest.raises(DataError, match="non-empty"):
        ingest_csv(csv_path, occupied)

    store = tmp_path / "store"
    ingest_csv(csv_path, store)
    with pytest.raises(DataError, match="append=True"):
        ingest_csv(csv_path, store)

    empty = tmp_path / "empty.csv"
    empty.write_text("# only a comment\n\n", encoding="utf-8")
    with pytest.raises(DataFormatError, match="no interactions"):
        ingest_csv(empty, tmp_path / "empty_store")


def test_manifest_validation(tmp_path):
    with pytest.raises(DataFormatError, match="no ingest manifest"):
        load_ingest_manifest(tmp_path)

    (tmp_path / "manifest.json").write_text("not json", encoding="utf-8")
    with pytest.raises(DataFormatError, match="cannot parse"):
        load_ingest_manifest(tmp_path)

    (tmp_path / "manifest.json").write_text(
        json.dumps({"format": "something-else"}), encoding="utf-8"
    )
    with pytest.raises(DataFormatError, match=INGEST_FORMAT):
        load_ingest_manifest(tmp_path)

    (tmp_path / "manifest.json").write_text(
        json.dumps({"format": INGEST_FORMAT, "n_ratings": 1}), encoding="utf-8"
    )
    with pytest.raises(DataFormatError, match="missing manifest keys"):
        load_ingest_manifest(tmp_path)


# --------------------------------------------------------------------------- #
# Streaming reader: file:line error reporting
# --------------------------------------------------------------------------- #
def test_malformed_rating_mid_file_reports_file_and_line(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text("1,2,5.0\n3,4,4.0\n5,6,not-a-number\n", encoding="utf-8")
    with pytest.raises(DataFormatError, match=rf"{path}:3"):
        list(iter_rating_rows(path))


def test_wrong_column_count_reports_file_and_line(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text("1,2,5.0\n1,2,3,4\n", encoding="utf-8")
    with pytest.raises(DataFormatError, match=rf"{path}:2"):
        list(iter_rating_rows(path))


def test_header_blank_and_comment_lines_are_skipped(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text(
        "user,item,rating\n\n# comment\n7,8\nu9,i10,2.5\n", encoding="utf-8"
    )
    rows = list(iter_rating_rows(path, default_rating=1.5))
    assert rows == [(4, 7, 8, 1.5), (5, "u9", "i10", 2.5)]


def test_read_delta_csv_streams_through_the_same_validator(tmp_path):
    path = tmp_path / "delta.csv"
    path.write_text("1,2,5.0\nbad line without commas\n".replace(" ", ""), encoding="utf-8")
    with pytest.raises(DataFormatError, match=rf"{path}:2"):
        read_delta_csv(path)

    missing = tmp_path / "nope.csv"
    with pytest.raises(DataFormatError, match="cannot read"):
        list(iter_rating_rows(missing))


# --------------------------------------------------------------------------- #
# Sparse scoring: the scan path is the exact path in a bounded container
# --------------------------------------------------------------------------- #
def test_scan_similarity_bit_identical_to_exact(clustered):
    exact = ItemKNN(10).fit(clustered)
    scan = ItemKNN(10, exact=False).fit(clustered)
    assert sparse.issparse(scan.similarity_)
    assert isinstance(exact.similarity_, np.ndarray)
    assert np.array_equal(scan.similarity_.toarray(), exact.similarity_)


def test_scan_recommendations_identical_to_exact(clustered):
    train = RatioSplitter(0.8, seed=0).split(clustered).train
    exact = ItemKNN(10).fit(train)
    scan = ItemKNN(10, exact=False).fit(train)
    users = train.users_with_ratings()
    assert np.array_equal(exact.recommend_block(users, 10), scan.recommend_block(users, 10))
    probe = users[: 5]
    items = np.arange(train.n_items)
    for user in probe:
        assert np.array_equal(
            exact.predict_scores(int(user), items), scan.predict_scores(int(user), items)
        )


def test_user_knn_sparse_container_bit_identical(clustered):
    dense = UserKNN(10).fit(clustered)
    sparse_mode = UserKNN(10, dense_similarity_limit=0).fit(clustered)
    assert isinstance(dense.similarity_, np.ndarray)
    assert sparse.issparse(sparse_mode.similarity_)
    assert np.array_equal(sparse_mode.similarity_.toarray(), dense.similarity_)
    users = clustered.users_with_ratings()
    assert np.array_equal(
        dense.recommend_block(users, 10), sparse_mode.recommend_block(users, 10)
    )


# --------------------------------------------------------------------------- #
# The JL sketch: recall-gated, deterministic, explicitly not delta-refittable
# --------------------------------------------------------------------------- #
def test_sketch_recall_gate_on_clustered_data(clustered):
    """ISSUE gate: ANN recall@10 >= 0.95 vs the exact path on seeded data."""
    train = RatioSplitter(0.8, seed=0).split(clustered).train
    exact = ItemKNN(10).fit(train)
    sketch = ItemKNN(10, exact=False, n_projections=64, n_candidates=60).fit(train)
    users = train.users_with_ratings()
    recall = _recall(exact.recommend_block(users, 10), sketch.recommend_block(users, 10))
    assert recall >= 0.95, f"sketch recall@10 {recall:.3f} below the 0.95 gate"


def test_sketch_is_deterministic_by_seed(clustered):
    first = ItemKNN(5, exact=False, n_projections=32, n_candidates=40, seed=11).fit(clustered)
    second = ItemKNN(5, exact=False, n_projections=32, n_candidates=40, seed=11).fit(clustered)
    assert np.array_equal(first.similarity_.data, second.similarity_.data)
    assert np.array_equal(first.similarity_.indices, second.similarity_.indices)
    assert np.array_equal(first.similarity_.indptr, second.similarity_.indptr)


def test_sketch_parameter_validation():
    with pytest.raises(ConfigurationError, match="n_projections"):
        ItemKNN(5, exact=False, n_projections=0)
    with pytest.raises(ConfigurationError, match="n_candidates"):
        ItemKNN(5, exact=False, n_projections=16, n_candidates=0)
    with pytest.raises(ConfigurationError, match="dtype"):
        ItemKNN(5, dtype="float16")


def test_only_exact_float64_supports_delta_refit(clustered):
    assert ItemKNN(5).supports_delta_refit
    for model in (
        ItemKNN(5, exact=False),
        ItemKNN(5, exact=False, n_projections=16),
        ItemKNN(5, dtype="float32"),
    ):
        assert not model.supports_delta_refit
        model.fit(clustered)
        with pytest.raises(ConfigurationError, match="delta refits require"):
            model.delta_refit(clustered)


# --------------------------------------------------------------------------- #
# float32 scoring: tolerance + rank stability
# --------------------------------------------------------------------------- #
def test_float32_scores_within_documented_tolerance(clustered):
    reference = ItemKNN(10).fit(clustered).predict_matrix()
    for model in (ItemKNN(10, dtype="float32"), ItemKNN(10, exact=False, dtype="float32")):
        scores = model.fit(clustered).predict_matrix()
        drift = np.max(np.abs(scores - reference))
        assert drift < FLOAT32_ATOL, f"float32 drift {drift:.2e} exceeds {FLOAT32_ATOL}"


def test_float32_top_n_is_rank_stable_under_tolerance(clustered):
    """Items swapped in/out of a float32 top-N must be float64 near-ties.

    Byte-identical rankings are not promised (that is what ``exact=True``
    ``float64`` is for); the float32 contract is that any disagreement is
    confined to items whose float64 scores sit within ``FLOAT32_ATOL`` of the
    top-N boundary score.
    """
    n = 10
    train = RatioSplitter(0.8, seed=0).split(clustered).train
    users = train.users_with_ratings()
    model64 = ItemKNN(10).fit(train)
    model32 = ItemKNN(10, dtype="float32").fit(train)
    top64 = model64.recommend_block(users, n)
    top32 = model32.recommend_block(users, n)
    scores64 = model64.predict_matrix(users)

    for row, user_scores in enumerate(scores64):
        set64 = {int(item) for item in top64[row] if item >= 0}
        set32 = {int(item) for item in top32[row] if item >= 0}
        disagreements = set64 ^ set32
        if not disagreements:
            continue
        boundary = min(user_scores[item] for item in set64)
        for item in disagreements:
            assert abs(user_scores[item] - boundary) < FLOAT32_ATOL, (
                f"user row {row}: item {item} swapped across the top-{n} "
                f"boundary by more than {FLOAT32_ATOL}"
            )


# --------------------------------------------------------------------------- #
# exact=True stays the default everywhere the toggle is expressible
# --------------------------------------------------------------------------- #
def test_exact_default_everywhere():
    model = ItemKNN()
    assert model.exact is True
    assert model.dtype == "float64"
    assert model.n_projections is None

    built = create("recommender", "itemknn")
    assert built.exact is True and built.dtype == "float64"


def test_spec_round_trip_preserves_the_toggle(tmp_path):
    default_spec = PipelineSpec(
        recommender=ComponentSpec("itemknn", params={"k": 5}),
        dataset=DatasetSpec(key="ml100k", scale=0.1),
        evaluation=EvaluationSpec(n=5),
        seed=0,
    )
    round_tripped = PipelineSpec.from_json(default_spec.to_json())
    assert round_tripped == default_spec
    assert "exact" not in round_tripped.recommender.params
    # A default spec never serializes a dataset path...
    assert "path" not in default_spec.dataset.to_config()

    ann_spec = PipelineSpec(
        recommender=ComponentSpec(
            "itemknn", params={"k": 5, "exact": False, "dtype": "float32"}
        ),
        dataset=DatasetSpec(key="scale", path=str(tmp_path / "store")),
        evaluation=EvaluationSpec(n=5),
        seed=0,
    )
    round_tripped = PipelineSpec.from_json(ann_spec.to_json())
    assert round_tripped == ann_spec
    assert round_tripped.recommender.params["exact"] is False
    assert round_tripped.dataset.path == str(tmp_path / "store")


# --------------------------------------------------------------------------- #
# End to end: CLI ingest -> pipeline fit from the store -> compiled artifact
# --------------------------------------------------------------------------- #
def _store_with_ratings(tmp_path, n_rows=400, seed=5):
    rng = np.random.default_rng(seed)
    rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 30)), float(rng.integers(1, 6)))
        for _ in range(n_rows)
    ]
    csv_path = tmp_path / "ratings.csv"
    _write_csv(csv_path, rows)
    return csv_path, tmp_path / "store"


def test_ingest_cli_end_to_end(tmp_path, capsys):
    from repro.cli import main

    csv_path, store = _store_with_ratings(tmp_path)
    assert main(["ingest", "--csv", str(csv_path), "--output", str(store)]) == 0
    out = capsys.readouterr().out
    assert "ingested 400 rating(s)" in out

    assert main(
        ["ingest", "--csv", str(csv_path), "--output", str(store), "--append"]
    ) == 0
    assert "revision 2" in capsys.readouterr().out
    assert load_outofcore(store).n_ratings == 800


def test_pipeline_fits_and_compiles_from_an_ingest_store(tmp_path):
    from repro.serving.artifact import compile_artifact

    csv_path, store = _store_with_ratings(tmp_path)
    ingest_csv(csv_path, store, chunk_size=128)

    spec = PipelineSpec(
        recommender=ComponentSpec("itemknn", params={"k": 10, "exact": False}),
        dataset=DatasetSpec(key="scale-test", path=str(store)),
        evaluation=EvaluationSpec(n=5),
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    assert sparse.issparse(pipeline.recommender.similarity_)

    artifact = tmp_path / "artifact"
    compile_artifact(pipeline, artifact)
    manifest = json.loads((artifact / "manifest.json").read_text(encoding="utf-8"))
    assert manifest["exact"] is False
    assert manifest["score_dtype"] == "float64"

    # The exact default is what lands in manifests when the spec is silent.
    default_spec = PipelineSpec(
        recommender=ComponentSpec("itemknn", params={"k": 10}),
        dataset=DatasetSpec(key="scale-test", path=str(store)),
        evaluation=EvaluationSpec(n=5),
        seed=0,
    )
    default_artifact = tmp_path / "artifact_default"
    compile_artifact(Pipeline(default_spec).fit(), default_artifact)
    manifest = json.loads(
        (default_artifact / "manifest.json").read_text(encoding="utf-8")
    )
    assert manifest["exact"] is True
    assert manifest["score_dtype"] == "float64"
