"""Hypothesis property-based tests on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.dataset import RatingDataset
from repro.data.popularity import long_tail_items
from repro.data.split import RatioSplitter
from repro.ganc.value_function import UserValueFunction, combined_item_scores
from repro.metrics.coverage import coverage_at_n, gini_at_n
from repro.metrics.longtail import lt_accuracy_at_n
from repro.utils.normalization import min_max_normalize

# Keep hypothesis example counts modest so the suite stays fast.
FAST = settings(max_examples=40, deadline=None)


# --------------------------------------------------------------------------- #
# Normalization
# --------------------------------------------------------------------------- #
@FAST
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 60),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_min_max_normalize_always_lands_in_unit_interval(values):
    out = min_max_normalize(values)
    assert out.shape == values.shape
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
    if np.ptp(values) > 0:
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)


@FAST
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(2, 40),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
def test_min_max_normalize_is_monotone(values):
    out = min_max_normalize(values)
    ordered = out[np.argsort(values, kind="stable")]
    # Normalization is affine with a positive slope, so it never inverts an
    # ordering (ties may collapse due to floating point, hence the tolerance).
    assert np.all(np.diff(ordered) >= -1e-12)


# --------------------------------------------------------------------------- #
# Rating dataset construction
# --------------------------------------------------------------------------- #
interaction_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 25), st.floats(1.0, 5.0)),
    min_size=1,
    max_size=120,
)


@FAST
@given(interaction_lists)
def test_dataset_roundtrip_consistency(triples):
    # Deduplicate (user, item) pairs keeping the first occurrence, as a
    # real loading pipeline would.
    seen = set()
    unique = []
    for user, item, rating in triples:
        if (user, item) not in seen:
            seen.add((user, item))
            unique.append((f"u{user}", f"i{item}", rating))
    data = RatingDataset.from_interactions(unique)
    assert data.n_ratings == len(unique)
    assert data.user_activity().sum() == data.n_ratings
    assert data.item_popularity().sum() == data.n_ratings
    assert 0.0 < data.density <= 1.0


@FAST
@given(interaction_lists, st.floats(0.1, 0.9))
def test_ratio_split_partitions_every_dataset(triples, ratio):
    seen = set()
    unique = []
    for user, item, rating in triples:
        if (user, item) not in seen:
            seen.add((user, item))
            unique.append((user, item, rating))
    data = RatingDataset.from_interactions(unique)
    split = RatioSplitter(ratio, seed=0).split(data)
    assert split.train.n_ratings + split.test.n_ratings == data.n_ratings
    train_pairs = set(zip(split.train.user_indices.tolist(), split.train.item_indices.tolist()))
    test_pairs = set(zip(split.test.user_indices.tolist(), split.test.item_indices.tolist()))
    assert train_pairs.isdisjoint(test_pairs)
    # Every user with ratings keeps at least one interaction in train.
    original = data.user_activity()
    assert np.all(split.train.user_activity()[original > 0] >= 1)


# --------------------------------------------------------------------------- #
# Long-tail definition
# --------------------------------------------------------------------------- #
@FAST
@given(
    hnp.arrays(dtype=np.int64, shape=st.integers(1, 80), elements=st.integers(0, 500)),
    st.floats(0.05, 0.6),
)
def test_long_tail_mass_respects_threshold(popularity, fraction):
    tail = long_tail_items(popularity, tail_fraction=fraction)
    total = popularity.sum()
    if total == 0:
        assert tail.size == popularity.size
        return
    tail_mass = popularity[tail].sum()
    assert tail_mass <= fraction * total + 1e-9
    # The tail is maximal: adding the least popular head item would exceed it.
    head = np.setdiff1d(np.arange(popularity.size), tail)
    if head.size:
        smallest_head = popularity[head].min()
        assert tail_mass + smallest_head >= fraction * total - 1e-9 or tail.size == 0


# --------------------------------------------------------------------------- #
# Value function
# --------------------------------------------------------------------------- #
@FAST
@given(
    st.integers(4, 30),
    st.floats(0.0, 1.0),
    st.integers(1, 5),
    st.integers(0, 10_000),
)
def test_greedy_top_n_maximizes_additive_value(n_items, theta, n, seed):
    rng = np.random.default_rng(seed)
    acc = rng.random(n_items)
    cov = rng.random(n_items)
    vf = UserValueFunction(theta=theta, accuracy_scores=acc, coverage_scores=cov)
    top = vf.greedy_top_n(n)
    k = min(n, n_items)
    assert top.size == k
    assert len(set(top.tolist())) == k
    combined = combined_item_scores(acc, cov, theta)
    best_possible = float(np.sort(combined)[::-1][:k].sum())
    assert vf.value_of(top) == pytest.approx(best_possible)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
recommendation_maps = st.dictionaries(
    keys=st.integers(0, 20),
    values=hnp.arrays(dtype=np.int64, shape=st.integers(1, 8), elements=st.integers(0, 49)),
    min_size=1,
    max_size=15,
)


@FAST
@given(recommendation_maps)
def test_coverage_and_gini_stay_in_bounds(recs):
    coverage = coverage_at_n(recs, 50)
    gini = gini_at_n(recs, 50)
    assert 0.0 < coverage <= 1.0
    assert 0.0 <= gini <= 1.0


@FAST
@given(recommendation_maps, st.integers(1, 8))
def test_lt_accuracy_bounded_by_one(recs, n):
    mask = np.zeros(50, dtype=bool)
    mask[25:] = True
    # LTAccuracy@N assumes top-N sets of at most N items, as produced by the
    # recommenders; truncate the generated lists accordingly.
    truncated = {user: items[:n] for user, items in recs.items()}
    value = lt_accuracy_at_n(truncated, mask, n)
    assert 0.0 <= value <= 1.0


@FAST
@given(recommendation_maps)
def test_gini_decreases_when_spreading_recommendations(recs):
    """Replacing every list with distinct items can only reduce concentration."""
    concentrated = {u: np.zeros(3, dtype=np.int64) for u in recs}
    spread = {u: np.array([(3 * u) % 50, (3 * u + 1) % 50, (3 * u + 2) % 50]) for u in recs}
    assert gini_at_n(spread, 50) <= gini_at_n(concentrated, 50) + 1e-9
