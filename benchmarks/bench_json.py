"""Machine-readable benchmark output shared by every standalone driver.

Each committed benchmark (``bench_ganc.py``, ``bench_batch_scoring.py``,
``bench_parallel_scaling.py``, ``bench_serving.py``) emits — next to its
human-readable table — one ``benchmarks/output/BENCH_<name>.json`` document
so the performance trajectory can be tracked PR-over-PR by machines instead
of by eyeballing text tables.  ``run_all.py`` drives every bench and
validates each document against the schema below; CI runs the same
validation on a smoke-scale pass.

Schema (version 1)
------------------
``schema``
    The integer schema version (this module's ``SCHEMA_VERSION``).
``bench``
    The benchmark name, matching the ``BENCH_<name>.json`` filename.
``config``
    A flat mapping of the run's configuration (scale, repeats, shapes…);
    values must be JSON scalars.
``metrics``
    A flat mapping of metric name to finite number — absolute measurements
    (seconds, users/s, …).
``speedups`` (optional)
    A flat mapping of comparison name to finite number — relative ratios.
``equal`` (optional)
    Whether every compared implementation produced identical outputs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping

SCHEMA_VERSION = 1

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _is_finite_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(float(value))
    )


def validate_payload(payload: Any) -> list[str]:
    """Return every schema violation in ``payload`` (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(payload, Mapping):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_VERSION:
        errors.append(f"schema must be {SCHEMA_VERSION}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        errors.append(f"bench must be a non-empty string, got {payload.get('bench')!r}")
    config = payload.get("config")
    if not isinstance(config, Mapping):
        errors.append(f"config must be an object, got {type(config).__name__}")
    else:
        for key, value in config.items():
            if not _is_scalar(value):
                errors.append(f"config[{key!r}] must be a JSON scalar, got {type(value).__name__}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        errors.append("metrics must be a non-empty object")
    else:
        for key, value in metrics.items():
            if not _is_finite_number(value):
                errors.append(f"metrics[{key!r}] must be a finite number, got {value!r}")
    if "speedups" in payload:
        speedups = payload["speedups"]
        if not isinstance(speedups, Mapping):
            errors.append("speedups must be an object when present")
        else:
            for key, value in speedups.items():
                if not _is_finite_number(value):
                    errors.append(f"speedups[{key!r}] must be a finite number, got {value!r}")
    if "equal" in payload and not isinstance(payload["equal"], bool):
        errors.append(f"equal must be a boolean when present, got {payload['equal']!r}")
    unknown = set(payload) - {"schema", "bench", "config", "metrics", "speedups", "equal"}
    if unknown:
        errors.append(f"unknown top-level key(s): {sorted(unknown)}")
    return errors


def write_bench_json(
    name: str,
    *,
    config: Mapping[str, Any],
    metrics: Mapping[str, float],
    speedups: Mapping[str, float] | None = None,
    equal: bool | None = None,
    output_dir: Path | None = None,
) -> Path:
    """Write (and validate) one ``BENCH_<name>.json`` document."""
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "config": dict(config),
        "metrics": {key: float(value) for key, value in metrics.items()},
    }
    if speedups is not None:
        payload["speedups"] = {key: float(value) for key, value in speedups.items()}
    if equal is not None:
        payload["equal"] = bool(equal)
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"invalid benchmark payload for {name!r}: {errors}")
    directory = OUTPUT_DIR if output_dir is None else output_dir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_and_validate(path: Path) -> dict[str, Any]:
    """Load one ``BENCH_*.json`` file, raising ``ValueError`` on violations."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"{path} violates the benchmark schema: {errors}")
    return payload
