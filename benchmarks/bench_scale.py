"""Scale benchmark: out-of-core ingestion + ANN retrieval at the 10M-rating mark.

Exercises the whole scale subsystem end to end on one synthetic workload:

1. **generate** — stream a popularity-biased ratings CSV to disk
   (:func:`repro.data.synthetic.stream_ratings_csv`; Gumbel top-k sampling,
   never materialized in memory);
2. **ingest** — ``repro ingest`` path: chunked CSV→npy-shard store
   (:func:`repro.data.outofcore.ingest_csv`);
3. **load + split** — open the store memmap-backed and apply the per-user
   ratio split;
4. **fit** — exact ItemKNN (dense gram, the golden-pinned path) and the
   sparse ItemKNN (``exact=False``, blocked gram scan) on the same train
   split, plus optionally the JL sketch mode (``--sketch-projections``);
5. **score** — ``recommend_block`` over a user sample on both models;
   reports the sparse-vs-dense wall-clock ratio and the top-N recall
   against the exact lists (recall of the sketch mode is reported as a
   metric but never gated — see ``docs/scale.md`` for why flat similarity
   spectra defeat sketched candidate search);
6. **compile** — the sparse pipeline into a serveable artifact.

Peak RSS (``resource.getrusage``) is recorded throughout — the point of the
out-of-core path is that the 10M-rating workload *fits on this container* —
and three gates make the headline claims enforceable: ``--min-ann-speedup``
(scoring, default 5x), ``--min-recall`` (ANN top-N vs exact, default 0.95)
and ``--max-rss-mb`` (0 disables; the CI scale-smoke job sets a ceiling).

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py                  # full 10M
    PYTHONPATH=src python benchmarks/bench_scale.py --users 2000 \\
        --items 1500 --ratings 100000 --sample-users 256 \\
        --chunk-size 40000 --min-ann-speedup 0 --min-recall 0        # CI smoke
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.outofcore import ingest_csv, load_outofcore
from repro.data.split import RatioSplitter
from repro.data.synthetic import stream_ratings_csv
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
)
from repro.recommenders.knn import ItemKNN
from repro.serving import compile_artifact

from bench_json import write_bench_json

K = 50
SHARD_SIZE = 4096
TRAIN_RATIO = 0.8
SEED = 0


def _peak_rss_mb() -> float:
    """Process peak RSS in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _recall_at_n(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Mean per-user overlap of the approximate top-N with the exact top-N."""
    hits = 0
    total = 0
    for ref_row, approx_row in zip(reference, approximate):
        ref_set = {item for item in ref_row.tolist() if item >= 0}
        if not ref_set:
            continue
        hits += len(ref_set.intersection(approx_row.tolist()))
        total += len(ref_set)
    return hits / total if total else 1.0


def run_benchmark(args) -> tuple[list[str], dict, dict, float]:
    """Execute the benchmark; returns (lines, metrics, speedups, recall)."""
    lines = [
        "scale benchmark (out-of-core ingest + ANN retrieval)",
        f"users={args.users} items={args.items} ratings={args.ratings} "
        f"sample_users={args.sample_users} chunk_size={args.chunk_size} "
        f"k={K} n={args.n}",
        "",
    ]
    metrics: dict[str, float] = {}
    rng = np.random.default_rng(SEED)

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        csv_path = workdir / "ratings.csv"
        gen_s, written = _time(
            lambda: stream_ratings_csv(
                csv_path,
                n_users=args.users,
                n_items=args.items,
                target_ratings=args.ratings,
                seed=SEED,
                max_user_ratings=args.max_user_ratings,
            )
        )
        lines.append(
            f"generate: {written} rows in {gen_s:.1f}s "
            f"({written / gen_s:,.0f} rows/s, {csv_path.stat().st_size >> 20} MB)"
        )
        metrics["generate_s"] = gen_s
        metrics["generate_rows_per_s"] = written / gen_s

        store = workdir / "store"
        ingest_s, report = _time(
            lambda: ingest_csv(csv_path, store, chunk_size=args.chunk_size)
        )
        lines.append(
            f"ingest: {report.n_ratings} ratings -> {report.n_shards} shard(s) "
            f"in {ingest_s:.1f}s ({report.n_ratings / ingest_s:,.0f} rows/s)"
        )
        metrics["ingest_s"] = ingest_s
        metrics["ingest_rows_per_s"] = report.n_ratings / ingest_s

        load_s, dataset = _time(lambda: load_outofcore(store))
        split_s, split = _time(
            lambda: RatioSplitter(TRAIN_RATIO, seed=SEED).split(dataset)
        )
        train = split.train
        lines.append(
            f"load (memmap): {load_s:.1f}s; split κ={TRAIN_RATIO}: {split_s:.1f}s "
            f"({train.n_ratings} train ratings)"
        )
        metrics["load_s"] = load_s
        metrics["split_s"] = split_s
        metrics["n_train_ratings"] = train.n_ratings
        metrics["rss_after_load_mb"] = _peak_rss_mb()

        exact_fit_s, exact = _time(lambda: ItemKNN(K).fit(train))
        lines.append(
            f"exact fit: {exact_fit_s:.1f}s "
            f"({train.n_ratings / exact_fit_s:,.0f} ratings/s)"
        )
        metrics["exact_fit_s"] = exact_fit_s
        metrics["rss_after_exact_fit_mb"] = _peak_rss_mb()

        spec = PipelineSpec(
            recommender=ComponentSpec(
                "itemknn", params={"k": K, "exact": False}
            ),
            dataset=DatasetSpec(key="scale", path=str(store)),
            evaluation=EvaluationSpec(n=args.n),
            seed=SEED,
        )
        pipeline = Pipeline(spec)
        ann_fit_s, _ = _time(lambda: pipeline.fit(split))
        ann = pipeline.recommender
        lines.append(
            f"ann fit: {ann_fit_s:.1f}s "
            f"({train.n_ratings / ann_fit_s:,.0f} ratings/s)"
        )
        metrics["ann_fit_s"] = ann_fit_s

        candidates = train.users_with_ratings()
        sample = rng.choice(
            candidates, size=min(args.sample_users, candidates.size), replace=False
        )
        sample.sort()
        exact_score_s, exact_top = _time(lambda: exact.recommend_block(sample, args.n))
        ann_score_s, ann_top = _time(lambda: ann.recommend_block(sample, args.n))
        recall = _recall_at_n(exact_top, ann_top)
        speedup = exact_score_s / ann_score_s if ann_score_s > 0 else float("inf")
        lines.append(
            f"score {sample.size} users: exact {exact_score_s:.2f}s vs "
            f"ann {ann_score_s:.2f}s ({speedup:.1f}x), recall@{args.n} {recall:.4f}"
        )
        metrics["exact_score_s"] = exact_score_s
        metrics["ann_score_s"] = ann_score_s
        metrics["exact_score_users_per_s"] = sample.size / exact_score_s
        metrics["ann_score_users_per_s"] = sample.size / ann_score_s
        metrics["recall_at_n"] = recall
        metrics["rss_after_score_mb"] = _peak_rss_mb()

        if args.sketch_projections > 0:
            sketch_fit_s, sketch = _time(
                lambda: ItemKNN(
                    K,
                    exact=False,
                    n_projections=args.sketch_projections,
                    n_candidates=args.sketch_candidates,
                ).fit(train)
            )
            sketch_score_s, sketch_top = _time(
                lambda: sketch.recommend_block(sample, args.n)
            )
            sketch_recall = _recall_at_n(exact_top, sketch_top)
            lines.append(
                f"sketch (d={args.sketch_projections}, "
                f"cand={args.sketch_candidates}): fit {sketch_fit_s:.1f}s, "
                f"score {sketch_score_s:.2f}s, recall@{args.n} "
                f"{sketch_recall:.4f} (reported, not gated)"
            )
            metrics["sketch_fit_s"] = sketch_fit_s
            metrics["sketch_score_s"] = sketch_score_s
            metrics["sketch_recall_at_n"] = sketch_recall
            del sketch, sketch_top

        # Free the dense exact state (three |I|² arrays) before the compile
        # pass; the artifact is the ANN pipeline's product.
        del exact, exact_top

        artifact = workdir / "artifact"
        compile_s, _ = _time(
            lambda: compile_artifact(pipeline, artifact, shard_size=SHARD_SIZE)
        )
        lines.append(
            f"compile (ann pipeline): {compile_s:.1f}s "
            f"({train.n_users / compile_s:,.0f} users/s)"
        )
        metrics["compile_s"] = compile_s
        metrics["compile_users_per_s"] = train.n_users / compile_s

    metrics["peak_rss_mb"] = _peak_rss_mb()
    lines.append(f"peak RSS: {metrics['peak_rss_mb']:,.0f} MB")
    speedups = {"ann_score_vs_exact": speedup}
    return lines, metrics, speedups, recall


def main(argv=None) -> int:
    """CLI entry point; writes the report and returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=125_000)
    parser.add_argument("--items", type=int, default=40_000)
    parser.add_argument("--ratings", type=int, default=10_000_000)
    parser.add_argument(
        "--sample-users", type=int, default=2048,
        help="users scored on both paths for the speedup/recall comparison",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2_000_000,
        help="rows per ingest shard (bounds ingest memory)",
    )
    parser.add_argument(
        "--max-user-ratings", type=int, default=1_000,
        help="per-user activity cap of the generated workload",
    )
    parser.add_argument("--n", type=int, default=10, help="top-N size compared")
    parser.add_argument(
        "--sketch-projections", type=int, default=128,
        help="JL dimensionality for the sketch-mode stage (0 skips it)",
    )
    parser.add_argument(
        "--sketch-candidates", type=int, default=100,
        help="candidates per item for the sketch-mode stage",
    )
    parser.add_argument(
        "--min-ann-speedup", type=float, default=5.0,
        help="fail unless ANN scoring beats exact by this factor "
        "(0 disables the gate; default 5.0)",
    )
    parser.add_argument(
        "--min-recall", type=float, default=0.95,
        help="fail unless ANN top-N recall vs exact reaches this "
        "(0 disables the gate; default 0.95)",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=0.0,
        help="fail if process peak RSS exceeds this many MB (0 disables)",
    )
    args = parser.parse_args(argv)

    lines, metrics, speedups, recall = run_benchmark(args)
    report = "\n".join(lines)
    print(report)
    output = Path(__file__).resolve().parent / "output" / "bench_scale.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "scale",
        config={
            "users": args.users,
            "items": args.items,
            "ratings": args.ratings,
            "sample_users": args.sample_users,
            "chunk_size": args.chunk_size,
            "max_user_ratings": args.max_user_ratings,
            "k": K,
            "n": args.n,
            "train_ratio": TRAIN_RATIO,
            "sketch_projections": args.sketch_projections,
            "sketch_candidates": args.sketch_candidates,
        },
        metrics=metrics,
        speedups=speedups,
    )
    failed = False
    if args.min_ann_speedup > 0 and speedups["ann_score_vs_exact"] < args.min_ann_speedup:
        print(
            f"FAIL: ann scoring only {speedups['ann_score_vs_exact']:.2f}x faster "
            f"than exact (required {args.min_ann_speedup:.2f}x)"
        )
        failed = True
    if args.min_recall > 0 and recall < args.min_recall:
        print(
            f"FAIL: ann recall@{args.n} {recall:.4f} below required "
            f"{args.min_recall:.4f}"
        )
        failed = True
    if args.max_rss_mb > 0 and metrics["peak_rss_mb"] > args.max_rss_mb:
        print(
            f"FAIL: peak RSS {metrics['peak_rss_mb']:,.0f} MB exceeds ceiling "
            f"{args.max_rss_mb:,.0f} MB"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
