"""Benchmark (ablation): user ordering of the sequential GANC pass."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import run_ordering_ablation


def test_ablation_user_ordering(benchmark, bench_scale, save_table):
    rows, table = run_once(
        benchmark,
        run_ordering_ablation,
        dataset_key="ml1m",
        arec_name="psvd100",
        scale=bench_scale,
        seed=0,
    )
    save_table("ablation_ordering", table.to_text())
    assert [row.configuration for row in rows] == ["increasing", "arbitrary", "decreasing"]
    # All orderings achieve the same approximation guarantee; their coverage
    # levels should be in the same ballpark (ordering redistributes items, it
    # does not change how many get assigned).
    coverages = [row.report.coverage for row in rows]
    assert max(coverages) - min(coverages) < 0.5
