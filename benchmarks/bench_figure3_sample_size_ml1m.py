"""Benchmark: regenerate Figure 3 (OSLG sample-size sweep on the ML-1M surrogate)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure3_4 import run_figure3


def test_figure3_sample_size_sweep_ml1m(benchmark, bench_scale, save_table):
    points, table = run_once(
        benchmark,
        run_figure3,
        sample_sizes=(50, 150, 300),
        accuracy_recommenders=("psvd100", "psvd10", "pop", "rsvd"),
        scale=bench_scale,
        seed=0,
    )
    save_table("figure3_sample_size_ml1m", table.to_text())
    assert len(points) == 12
    # Coverage grows with the sample size for each accuracy recommender.
    by_model: dict[str, dict[int, float]] = {}
    for point in points:
        by_model.setdefault(point.accuracy_recommender, {})[point.sample_size] = point.coverage
    for coverages in by_model.values():
        assert coverages[300] >= coverages[50] - 1e-9
