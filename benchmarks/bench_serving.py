"""Serving benchmark: artifact compile throughput and lookup latency.

Builds a pipeline on the synthetic ML-100K profile, persists it, compiles a
top-N artifact, and measures

* **compile throughput** — users/second through ``compile_artifact``
  (dominated by the batched ``recommend_all`` pass);
* **store lookup latency** — microseconds per single-user ``top_n`` against
  the memory-mapped artifact, and per batched 100-user block;
* **fallback latency** — the first uncached live-scoring fallback (builds a
  full ``recommend_all`` table) vs. subsequent LRU-cached fallback lookups,
  to show what the artifact saves.

Every measured path is verified byte-identical to ``Pipeline.recommend_all``
before timing.  Results are printed and written to
``benchmarks/output/bench_serving.txt``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py               # full scale
    PYTHONPATH=src python benchmarks/bench_serving.py --scale 0.1   # CI smoke run
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
)
from repro.serving import RecommendationStore, compile_artifact

from bench_json import write_bench_json

N = 5


def _time(fn, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(scale: float, repeats: int, jobs: int, lookups: int):
    """Execute the compile/lookup benchmark; returns (report lines, metrics)."""
    metrics: dict[str, float] = {}
    lines = [
        "serving benchmark (compile throughput + lookup latency)",
        f"scale={scale} repeats={repeats} jobs={jobs} lookups={lookups} n={N}",
        "",
    ]
    spec = PipelineSpec(
        recommender=ComponentSpec("psvd10"),
        dataset=DatasetSpec(key="ml100k", scale=scale),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    n_users = pipeline.split.train.n_users
    reference = pipeline.recommend_all(N).items

    with tempfile.TemporaryDirectory() as tmp:
        pipeline_dir = Path(tmp) / "pipeline"
        artifact_dir = Path(tmp) / "artifact"
        pipeline.save(pipeline_dir)

        compile_s, _ = _time(
            lambda: compile_artifact(
                pipeline_dir, artifact_dir, shard_size=1024, n_jobs=jobs
            ),
            repeats=repeats,
        )
        lines.append(
            f"compile: {n_users} users in {compile_s:.3f}s "
            f"({n_users / compile_s:,.0f} users/s, jobs={jobs})"
        )

        store = RecommendationStore(artifact_dir, pipeline=pipeline_dir)
        users = np.arange(n_users)
        np.testing.assert_array_equal(store.top_n(users, N), reference)

        rng = np.random.default_rng(0)
        sample = rng.integers(0, n_users, size=lookups)
        single_s, _ = _time(
            lambda: [store.top_n(int(u), N) for u in sample], repeats=repeats
        )
        lines.append(
            f"store single-user lookup: {single_s / lookups * 1e6:,.1f} us/lookup "
            f"({lookups / single_s:,.0f} lookups/s)"
        )

        batch = sample[:100]
        batch_s, _ = _time(lambda: store.top_n(batch, N), repeats=max(repeats, 3))
        lines.append(
            f"store 100-user batch lookup: {batch_s * 1e3:,.3f} ms/batch "
            f"({batch_s / batch.size * 1e6:,.1f} us/row)"
        )

        # Fallback: n bigger than compiled forces live scoring.
        cold_s, _ = _time(lambda: store.top_n(0, N + 1))
        warm_s, _ = _time(
            lambda: [store.top_n(int(u), N + 1) for u in sample], repeats=repeats
        )
        np.testing.assert_array_equal(
            store.top_n(users, N + 1), pipeline.recommend_all(N + 1).items
        )
        lines.append(
            f"fallback first lookup (builds recommend_all({N + 1}) table): {cold_s:.3f}s"
        )
        lines.append(
            f"fallback cached lookup: {warm_s / lookups * 1e6:,.1f} us/lookup"
        )
        speedup = (cold_s) / (single_s / lookups)
        lines.append(
            f"artifact lookup vs cold live scoring: {speedup:,.0f}x cheaper"
        )
        lines.append("")
        lines.append("all measured paths verified byte-identical to Pipeline.recommend_all")
        metrics.update(
            compile_s=compile_s,
            compile_users_per_s=n_users / compile_s,
            single_lookup_us=single_s / lookups * 1e6,
            batch_lookup_us_per_row=batch_s / batch.size * 1e6,
            fallback_cold_s=cold_s,
            fallback_cached_lookup_us=warm_s / lookups * 1e6,
            lookup_vs_cold_speedup=speedup,
        )
    return lines, metrics


def main(argv=None) -> int:
    """CLI entry point; writes the report and returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--lookups", type=int, default=1000)
    args = parser.parse_args(argv)

    lines, metrics = run_benchmark(args.scale, args.repeats, args.jobs, args.lookups)
    report = "\n".join(lines)
    print(report)
    output = Path(__file__).resolve().parent / "output" / "bench_serving.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "serving",
        config={
            "scale": args.scale,
            "repeats": args.repeats,
            "jobs": args.jobs,
            "lookups": args.lookups,
            "n": N,
        },
        metrics=metrics,
        equal=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
