"""Serving benchmark: compile/lookup microbenchmarks + a closed-loop load test.

Builds a pipeline on the synthetic ML-100K profile, persists it, compiles a
top-N artifact, and measures two layers:

**Microbenchmarks** (store only, no HTTP)

* **compile throughput** — users/second through ``compile_artifact``
  (dominated by the batched ``recommend_all`` pass);
* **store lookup latency** — microseconds per single-user ``top_n`` against
  the memory-mapped artifact, and per batched 100-user block;
* **fallback latency** — the first uncached live-scoring fallback (builds a
  full ``recommend_all`` table) vs. subsequent LRU-cached fallback lookups,
  to show what the artifact saves.

**Load generator** (full HTTP round trips)

A closed-loop load test: ``--clients`` concurrent keep-alive connections,
each issuing ``--requests-per-client`` sequential ``GET /recommend``
requests (the next request is sent only after the previous response is
fully read), against three server configurations over the same artifact:

* ``legacy`` — the threading ``http.server`` tier;
* ``async`` — the asyncio tier with coalescing disabled (batch size 1);
* ``coalesced`` — the asyncio tier with request coalescing into the
  batched mmap lookup path (``--coalesce-max`` / ``--coalesce-window-us``).

Sustained RPS and p50/p95/p99 latency are recorded per tier (best of
``--repeats`` fleet runs, like every other timing here); the
``coalesced`` numbers are the headline ``rps``/``p50_us``/``p95_us``/
``p99_us`` metrics in ``BENCH_serving.json``.  Every response stream is
digest-compared against bodies precomputed from the store directly, so the
three tiers are verified byte-identical before any number is reported.
``--min-load-speedup`` (default 3.0) gates the coalesced-vs-legacy
sustained-RPS ratio; pass ``0`` to disable (CI smoke).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py               # full scale
    PYTHONPATH=src python benchmarks/bench_serving.py --scale 0.1 \\
        --clients 4 --requests-per-client 25 --min-load-speedup 0   # CI smoke run
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
)
from repro.serving import (
    DEFAULT_COALESCE_MAX,
    DEFAULT_COALESCE_WINDOW_US,
    RecommendationStore,
    build_async_service,
    build_server,
    compile_artifact,
    start_async_in_thread,
    start_in_thread,
)
from repro.serving.service import json_body, recommend_payload

from bench_json import write_bench_json

N = 5


def _time(fn, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# --------------------------------------------------------------------------- #
# Closed-loop load generator
# --------------------------------------------------------------------------- #
def _request_bytes(user: int, n: int) -> bytes:
    return (
        f"GET /recommend?user={user}&n={n} HTTP/1.1\r\nHost: bench\r\n\r\n"
    ).encode("ascii")


def _consume_response(sock: socket.socket, buf: bytearray) -> bytes:
    """Read one HTTP/1.1 response off a keep-alive socket, return its body."""
    while True:
        end = buf.find(b"\r\n\r\n")
        if end >= 0:
            break
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        buf += chunk
    head = bytes(buf[:end]).lower()
    if not head.startswith(b"http/1.1 200"):
        raise ConnectionError(f"unexpected response head {head[:80]!r}")
    index = head.find(b"content-length:")
    if index < 0:
        raise ConnectionError("response carried no Content-Length")
    stop = head.find(b"\r", index)
    length = int(head[index + 15 : stop if stop >= 0 else len(head)])
    total = end + 4 + length
    while len(buf) < total:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        buf += chunk
    body = bytes(buf[end + 4 : total])
    del buf[:total]
    return body


def _consume_response_fast(sock: socket.socket, buf: bytearray) -> None:
    """Frame one response with minimal parsing; used only in the timed pass.

    The untimed verification pass has already strict-parsed and
    byte-validated every response this connection will see again, so here
    a single ``rfind`` recovers Content-Length (the last header both tiers
    emit) and the body is skipped without copying.  Keeping the client this
    cheap matters on a shared-core runner: client per-request overhead adds
    to both tiers' denominators and compresses the measured ratio.
    """
    while True:
        end = buf.find(b"\r\n\r\n")
        if end >= 0:
            break
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        buf += chunk
    total = end + 4 + int(buf[buf.rfind(b" ", 0, end) + 1 : end])
    while len(buf) < total:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        buf += chunk
    del buf[:total]


def _client_worker(
    address: tuple[str, int],
    requests: list[bytes],
    barrier: threading.Barrier,
    latencies: list[float],
    digests: list,
    errors: list,
    index: int,
) -> None:
    """One closed-loop client: send, read fully, repeat, on one connection.

    Two passes over the same request plan: an untimed verification pass
    that digests every response body (and doubles as connection + server
    warmup), then the timed pass, which only frames responses so client
    overhead stays off the latency numbers.
    """
    try:
        sock = socket.create_connection(address, timeout=120)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buf = bytearray()
        try:
            digest = hashlib.sha256()
            for request in requests:
                sock.sendall(request)
                digest.update(_consume_response(sock, buf))
            digests[index] = digest.hexdigest()
            barrier.wait()
            for i, request in enumerate(requests):
                start = time.perf_counter()
                sock.sendall(request)
                _consume_response_fast(sock, buf)
                latencies[i] = time.perf_counter() - start
        finally:
            sock.close()
    except Exception as exc:  # noqa: BLE001 - re-raised by the coordinator
        errors.append((index, exc))
        barrier.abort()


def _fleet_main(spec_path: str) -> int:
    """Hidden ``--fleet`` entry point: run the client fleet in this process.

    The coordinator launches the fleet as a subprocess so the clients do
    not share the server process's GIL — the servers are measured with the
    whole interpreter to themselves, as they would face a real remote load
    generator.  Reads a JSON spec (address, per-client user plans), drives
    the closed-loop clients, and prints one JSON result line:
    ``{"wall": seconds, "latencies": [...], "digests": [...]}``.
    """
    spec = json.loads(Path(spec_path).read_text(encoding="utf-8"))
    address = (spec["host"], spec["port"])
    plans: list[list[int]] = spec["plans"]
    n = spec["n"]
    latencies = [[0.0] * len(plan) for plan in plans]
    digests: list = [None] * len(plans)
    errors: list = []
    barrier = threading.Barrier(len(plans) + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(
                address,
                [_request_bytes(user, n) for user in plan],
                barrier,
                latencies[index],
                digests,
                errors,
                index,
            ),
            daemon=True,
        )
        for index, plan in enumerate(plans)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - start
    if errors:
        index, exc = errors[0]
        print(json.dumps({"error": f"client {index}: {exc!r}"}))
        return 1
    print(json.dumps({
        "wall": wall,
        "latencies": [value for client in latencies for value in client],
        "digests": digests,
    }))
    return 0


def _expected_digest(store: RecommendationStore, users: np.ndarray, n: int) -> str:
    """The sha256 of the exact response bytes one client must receive."""
    digest = hashlib.sha256()
    for user in users:
        items, scores, source = store.lookup(int(user), n)
        digest.update(json_body(recommend_payload(store, int(user), n, items, scores, source)))
    return digest.hexdigest()


def _run_tier(
    address: tuple[str, int],
    user_plans: list[np.ndarray],
    expected: list[str],
    repeats: int,
) -> dict[str, float]:
    """Best-of-``repeats`` closed-loop runs against one tier."""
    best: dict[str, float] | None = None
    for _ in range(repeats):
        result = _run_fleet(address, user_plans, expected)
        if best is None or result["rps"] > best["rps"]:
            best = result
    assert best is not None
    return best


def _run_fleet(
    address: tuple[str, int],
    user_plans: list[np.ndarray],
    expected: list[str],
) -> dict[str, float]:
    """Drive one tier with len(user_plans) concurrent closed-loop clients.

    The fleet runs in its own interpreter (``--fleet`` subprocess) so the
    measured server keeps this process's GIL to itself.
    """
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as spec:
        json.dump(
            {
                "host": address[0],
                "port": address[1],
                "n": N,
                "plans": [[int(u) for u in plan] for plan in user_plans],
            },
            spec,
        )
        spec_path = spec.name
    try:
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, __file__, "--fleet", spec_path],
            capture_output=True, text=True, timeout=600, check=False,
            cwd=Path(__file__).resolve().parent, env=env,
        )
    finally:
        Path(spec_path).unlink(missing_ok=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"load fleet failed (exit {proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    result = json.loads(proc.stdout.splitlines()[-1])
    if "error" in result:
        raise RuntimeError(f"load fleet failed: {result['error']}")
    if result["digests"] != expected:
        raise AssertionError("served response stream differs from store-computed bytes")
    total = sum(plan.size for plan in user_plans)
    p50, p95, p99 = np.percentile(np.asarray(result["latencies"]), [50, 95, 99])
    return {
        "rps": total / result["wall"],
        "p50_us": p50 * 1e6,
        "p95_us": p95 * 1e6,
        "p99_us": p99 * 1e6,
    }


def _start_tier(
    tier: str,
    artifact_dir: Path,
    coalesce_max: int,
    coalesce_window_us: int,
):
    """Start one server tier on an ephemeral port; returns (address, stop, service)."""
    if tier == "legacy":
        server = build_server(artifact_dir, port=0)
        start_in_thread(server)

        def stop() -> None:
            server.shutdown()
            server.server_close()

        return server.server_address[:2], stop, None
    if tier == "async":
        service = build_async_service(artifact_dir, coalesce_max=1, coalesce_window_us=0)
    else:
        service = build_async_service(
            artifact_dir, coalesce_max=coalesce_max, coalesce_window_us=coalesce_window_us
        )
    handle = start_async_in_thread(service)
    return handle.address, handle.stop, service


def run_load_benchmark(
    artifact_dir: Path,
    *,
    clients: int,
    requests_per_client: int,
    coalesce_max: int,
    coalesce_window_us: int,
    repeats: int = 1,
):
    """Drive the three tiers with concurrent clients; returns (lines, metrics)."""
    store = RecommendationStore(artifact_dir)
    rng = np.random.default_rng(7)
    user_plans = [
        rng.integers(0, store.coverage, size=requests_per_client) for _ in range(clients)
    ]
    expected = [_expected_digest(store, plan, N) for plan in user_plans]

    lines = [
        "",
        f"closed-loop load test: {clients} keep-alive clients x "
        f"{requests_per_client} GET /recommend each, best of {repeats} "
        f"(coalesce_max={coalesce_max}, coalesce_window_us={coalesce_window_us})",
    ]
    results: dict[str, dict[str, float]] = {}
    for tier in ("legacy", "async", "coalesced"):
        address, stop, service = _start_tier(tier, artifact_dir, coalesce_max, coalesce_window_us)
        try:
            results[tier] = _run_tier(address, user_plans, expected, repeats)
        finally:
            stop()
        extra = ""
        if service is not None and tier == "coalesced":
            stats = service.coalescing
            if stats["batches"]:
                extra = (
                    f"  [{stats['batched_rows']} rows in {stats['batches']} store calls, "
                    f"avg {stats['batched_rows'] / stats['batches']:.1f}/batch, "
                    f"largest {stats['largest_batch']}]"
                )
        r = results[tier]
        lines.append(
            f"  {tier:<9}: {r['rps']:>8,.0f} rps   "
            f"p50 {r['p50_us']:>8,.0f} us   p95 {r['p95_us']:>8,.0f} us   "
            f"p99 {r['p99_us']:>8,.0f} us{extra}"
        )

    speedups = {
        "async_vs_legacy_rps": results["async"]["rps"] / results["legacy"]["rps"],
        "coalesced_vs_legacy_rps": results["coalesced"]["rps"] / results["legacy"]["rps"],
        "coalesced_vs_legacy_p50": results["legacy"]["p50_us"] / results["coalesced"]["p50_us"],
    }
    lines.append(
        f"  coalesced vs legacy: {speedups['coalesced_vs_legacy_rps']:.2f}x sustained rps, "
        f"{speedups['coalesced_vs_legacy_p50']:.2f}x lower p50"
    )
    lines.append(
        "  all three tiers served response streams byte-identical to the store"
    )

    metrics: dict[str, float] = {}
    for tier, r in results.items():
        for key, value in r.items():
            metrics[f"{tier}_{key}"] = value
    # Headline numbers = the shipped configuration (async + coalescing).
    metrics.update({key: value for key, value in results["coalesced"].items()})
    return lines, metrics, speedups


def run_benchmark(
    scale: float,
    repeats: int,
    jobs: int,
    lookups: int,
    *,
    clients: int,
    requests_per_client: int,
    coalesce_max: int,
    coalesce_window_us: int,
):
    """Execute the full benchmark; returns (report lines, metrics, speedups)."""
    metrics: dict[str, float] = {}
    lines = [
        "serving benchmark (compile throughput + lookup latency + HTTP load)",
        f"scale={scale} repeats={repeats} jobs={jobs} lookups={lookups} n={N} "
        f"clients={clients} requests_per_client={requests_per_client}",
        "",
    ]
    spec = PipelineSpec(
        recommender=ComponentSpec("psvd10"),
        dataset=DatasetSpec(key="ml100k", scale=scale),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    n_users = pipeline.split.train.n_users
    reference = pipeline.recommend_all(N).items

    with tempfile.TemporaryDirectory() as tmp:
        pipeline_dir = Path(tmp) / "pipeline"
        artifact_dir = Path(tmp) / "artifact"
        pipeline.save(pipeline_dir)

        compile_s, _ = _time(
            lambda: compile_artifact(
                pipeline_dir, artifact_dir, shard_size=1024, n_jobs=jobs
            ),
            repeats=repeats,
        )
        lines.append(
            f"compile: {n_users} users in {compile_s:.3f}s "
            f"({n_users / compile_s:,.0f} users/s, jobs={jobs})"
        )

        store = RecommendationStore(artifact_dir, pipeline=pipeline_dir)
        users = np.arange(n_users)
        np.testing.assert_array_equal(store.top_n(users, N), reference)

        rng = np.random.default_rng(0)
        sample = rng.integers(0, n_users, size=lookups)
        single_s, _ = _time(
            lambda: [store.top_n(int(u), N) for u in sample], repeats=repeats
        )
        lines.append(
            f"store single-user lookup: {single_s / lookups * 1e6:,.1f} us/lookup "
            f"({lookups / single_s:,.0f} lookups/s)"
        )

        batch = sample[:100]
        batch_s, _ = _time(lambda: store.top_n(batch, N), repeats=max(repeats, 3))
        lines.append(
            f"store 100-user batch lookup: {batch_s * 1e3:,.3f} ms/batch "
            f"({batch_s / batch.size * 1e6:,.1f} us/row)"
        )

        # Fallback: n bigger than compiled forces live scoring.
        cold_s, _ = _time(lambda: store.top_n(0, N + 1))
        warm_s, _ = _time(
            lambda: [store.top_n(int(u), N + 1) for u in sample], repeats=repeats
        )
        np.testing.assert_array_equal(
            store.top_n(users, N + 1), pipeline.recommend_all(N + 1).items
        )
        lines.append(
            f"fallback first lookup (builds recommend_all({N + 1}) table): {cold_s:.3f}s"
        )
        lines.append(
            f"fallback cached lookup: {warm_s / lookups * 1e6:,.1f} us/lookup"
        )
        speedup = (cold_s) / (single_s / lookups)
        lines.append(
            f"artifact lookup vs cold live scoring: {speedup:,.0f}x cheaper"
        )
        lines.append("")
        lines.append("all measured paths verified byte-identical to Pipeline.recommend_all")
        metrics.update(
            compile_s=compile_s,
            compile_users_per_s=n_users / compile_s,
            single_lookup_us=single_s / lookups * 1e6,
            batch_lookup_us_per_row=batch_s / batch.size * 1e6,
            fallback_cold_s=cold_s,
            fallback_cached_lookup_us=warm_s / lookups * 1e6,
            lookup_vs_cold_speedup=speedup,
        )

        load_lines, load_metrics, speedups = run_load_benchmark(
            artifact_dir,
            clients=clients,
            requests_per_client=requests_per_client,
            coalesce_max=coalesce_max,
            coalesce_window_us=coalesce_window_us,
            repeats=repeats,
        )
        lines.extend(load_lines)
        metrics.update(load_metrics)
    return lines, metrics, speedups


def main(argv=None) -> int:
    """CLI entry point; writes the report and returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--lookups", type=int, default=1000)
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent keep-alive load clients (default 32)")
    parser.add_argument("--requests-per-client", type=int, default=200,
                        help="timed requests per client (default 200)")
    parser.add_argument("--coalesce-max", type=int, default=DEFAULT_COALESCE_MAX)
    parser.add_argument(
        "--coalesce-window-us", type=int, default=0,
        help="coalescing window for the coalesced tier; 0 = flush on the next "
             "event-loop tick, which closed-loop clients measure best because a "
             "positive window locksteps every in-flight request (default 0; the "
             f"server's own default is {DEFAULT_COALESCE_WINDOW_US})",
    )
    parser.add_argument(
        "--min-load-speedup", type=float, default=3.0,
        help="fail unless coalesced sustained RPS >= this multiple of legacy "
             "(0 disables the gate; default 3.0)",
    )
    parser.add_argument("--fleet", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.fleet:  # hidden: run as the client-fleet subprocess
        return _fleet_main(args.fleet)

    lines, metrics, speedups = run_benchmark(
        args.scale,
        args.repeats,
        args.jobs,
        args.lookups,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        coalesce_max=args.coalesce_max,
        coalesce_window_us=args.coalesce_window_us,
    )
    report = "\n".join(lines)
    print(report)
    output = Path(__file__).resolve().parent / "output" / "bench_serving.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "serving",
        config={
            "scale": args.scale,
            "repeats": args.repeats,
            "jobs": args.jobs,
            "lookups": args.lookups,
            "n": N,
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "coalesce_max": args.coalesce_max,
            "coalesce_window_us": args.coalesce_window_us,
        },
        metrics=metrics,
        speedups=speedups,
        equal=True,
    )
    if args.min_load_speedup > 0 and speedups["coalesced_vs_legacy_rps"] < args.min_load_speedup:
        print(
            f"FAIL: coalesced tier sustained only "
            f"{speedups['coalesced_vs_legacy_rps']:.2f}x legacy RPS "
            f"(required {args.min_load_speedup:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
