"""Benchmark: regenerate Figures 7-8 (ranking-protocol comparison, appendix C)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure7_8 import protocol_accuracy_inflation, run_figure7_8


def test_figure7_8_ranking_protocols(benchmark, bench_scale, save_table):
    points, table = run_once(
        benchmark,
        run_figure7_8,
        datasets=("ml100k", "ml1m"),
        algorithms=("rand", "pop", "rsvd", "rsvdn", "cofir100", "psvd10", "psvd100"),
        scale=bench_scale,
        seed=0,
    )
    save_table("figure7_8_protocols", table.to_text())
    # 2 datasets x 7 algorithms x 2 protocols.
    assert len(points) == 28
    # The appendix's headline: the rated-test-items protocol inflates measured
    # accuracy and deflates long-tail accuracy.
    assert protocol_accuracy_inflation(points, metric="precision") > 0.0
    assert protocol_accuracy_inflation(points, metric="lt_accuracy") <= 0.05
