"""Parallel scaling benchmark: speedup of the sharded backends vs serial.

Measures the wall-clock of the two heaviest serving paths on the synthetic
ML-1M-scale profile —

* ``Recommender.recommend_all`` (PSVD100, the dense-dataset ARec), and
* the full GANC(PSVD100, θG, Dyn/OSLG) ``recommend_all`` end-to-end —

for every requested ``(backend, n_jobs)`` combination, verifies each run is
byte-identical to serial, and reports the speedups.  Results are printed and
written to ``benchmarks/output/bench_parallel_scaling.txt``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py               # full ML-1M scale
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --scale 0.1   # CI smoke run

``--min-speedup`` turns the report into a gate: the process exits non-zero
when the best end-to-end speedup falls below the floor.  The ISSUE targets
>= 2x at ``--jobs 4`` on a machine with at least 4 cores; on fewer cores
(CI smoke uses ``--min-speedup 0``) the equivalence checks still run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.split import RatioSplitter
from repro.data.synthetic import make_dataset
from repro.parallel import get_executor
from repro.pipeline import Pipeline, ganc_spec
from repro.recommenders.registry import make_recommender

from bench_json import write_bench_json

N = 5


def _time(fn, *, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_recommend_all(train, variants, repeats, block_size, lines):
    model = make_recommender("psvd100").fit(train)
    model.recommend_all(N)  # warm caches
    serial_s, serial = _time(
        lambda: model.recommend_all(N, block_size=block_size), repeats=repeats
    )
    lines.append(f"{'recommend_all psvd100':<28} {'serial':>8} {1:>5} {serial_s:>9.4f} {'1.0x':>8}  True")
    best = 0.0
    for backend, n_jobs in variants:
        executor = get_executor(backend, n_jobs)
        seconds, result = _time(
            lambda: model.recommend_all(N, block_size=block_size, executor=executor),
            repeats=repeats,
        )
        equal = bool(np.array_equal(result.items, serial.items))
        speedup = serial_s / seconds if seconds > 0 else float("inf")
        best = max(best, speedup)
        lines.append(
            f"{'recommend_all psvd100':<28} {backend:>8} {n_jobs:>5} "
            f"{seconds:>9.4f} {speedup:>7.1f}x  {equal}"
        )
        if not equal:
            raise SystemExit(f"non-identical output from {backend} n_jobs={n_jobs}")
    return best


def bench_ganc_end_to_end(split, scale, variants, repeats, block_size, lines):
    def build(n_jobs: int, backend: str) -> Pipeline:
        spec = ganc_spec(
            dataset="ml1m", arec="psvd100", theta="thetaG", coverage="dyn",
            n=N, sample_size=min(500, split.train.n_users), optimizer="oslg",
            scale=scale, seed=0, block_size=block_size,
            n_jobs=n_jobs, backend=backend,
        )
        return Pipeline(spec).fit(split)

    serial_pipeline = build(1, "thread")
    serial_pipeline.recommend_all()  # warm
    serial_s, serial = _time(lambda: serial_pipeline.recommend_all(), repeats=repeats)
    lines.append(f"{'GANC oslg end-to-end':<28} {'serial':>8} {1:>5} {serial_s:>9.4f} {'1.0x':>8}  True")
    best = 0.0
    for backend, n_jobs in variants:
        pipeline = build(n_jobs, backend)
        seconds, result = _time(lambda: pipeline.recommend_all(), repeats=repeats)
        equal = bool(np.array_equal(result.items, serial.items))
        speedup = serial_s / seconds if seconds > 0 else float("inf")
        best = max(best, speedup)
        lines.append(
            f"{'GANC oslg end-to-end':<28} {backend:>8} {n_jobs:>5} "
            f"{seconds:>9.4f} {speedup:>7.1f}x  {equal}"
        )
        if not equal:
            raise SystemExit(f"non-identical GANC output from {backend} n_jobs={n_jobs}")
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="synthetic ML-1M scale factor")
    parser.add_argument("--jobs", type=int, nargs="+", default=[2, 4], help="worker counts to sweep")
    parser.add_argument(
        "--backends", nargs="+", choices=["thread", "process"], default=["thread", "process"]
    )
    parser.add_argument("--repeats", type=int, default=2, help="timed repetitions (best-of)")
    parser.add_argument("--block-size", type=int, default=256, help="users per score block")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail when the best end-to-end speedup is below this floor",
    )
    args = parser.parse_args(argv)

    dataset = make_dataset("ml1m", scale=args.scale, seed=0)
    split = RatioSplitter(0.5, seed=0).split(dataset)
    train = split.train
    variants = [(backend, jobs) for backend in args.backends for jobs in args.jobs]

    lines = [
        f"parallel scaling on synthetic ML-1M x {args.scale}: "
        f"{train.n_users} users x {train.n_items} items "
        f"({os.cpu_count()} CPUs visible)",
        "",
        f"{'workload':<28} {'backend':>8} {'jobs':>5} {'seconds':>9} {'speedup':>8}  equal",
        "-" * 72,
    ]
    best_recommend = bench_recommend_all(train, variants, args.repeats, args.block_size, lines)
    lines.append("")
    best_ganc = bench_ganc_end_to_end(
        split, args.scale, variants, args.repeats, args.block_size, lines
    )
    best = max(best_recommend, best_ganc)
    lines.append("")
    lines.append(f"best end-to-end speedup: {best:.2f}x (floor: {args.min_speedup}x)")

    text = "\n".join(lines)
    print(text)
    output = Path(__file__).parent / "output" / "bench_parallel_scaling.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(text + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "parallel_scaling",
        config={
            "scale": args.scale,
            "repeats": args.repeats,
            "block_size": args.block_size,
            "jobs": " ".join(str(j) for j in args.jobs),
            "backends": " ".join(args.backends),
            "cpus_visible": os.cpu_count() or 0,
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
        },
        metrics={"best_speedup": best},
        speedups={
            "recommend_all_best": best_recommend,
            "ganc_end_to_end_best": best_ganc,
        },
        equal=True,
    )

    if best < args.min_speedup:
        print(f"FAILED: best speedup {best:.2f}x below the {args.min_speedup}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
