"""Benchmark: regenerate Figure 6 (accuracy vs coverage vs novelty scatter)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_figure6_accuracy_coverage_novelty(benchmark, bench_scale, bench_sample_size, save_table):
    points, table = run_once(
        benchmark,
        run_figure6,
        scale=bench_scale,
        sample_size=bench_sample_size,
        seed=0,
    )
    save_table("figure6_tradeoffs", table.to_text())
    datasets = {p.dataset for p in points}
    assert len(datasets) == 5

    for dataset in datasets:
        subset = {p.algorithm: p for p in points if p.dataset == dataset}
        # Rand is the coverage extreme, Pop the accuracy extreme (low coverage).
        assert subset["rand"].coverage > subset["pop"].coverage
        assert subset["pop"].f_measure >= subset["rand"].f_measure
        # The GANC(ARec, thetaG, Dyn) arrow head gains coverage over Pop.
        ganc_dyn = next(
            p for name, p in subset.items() if name.startswith("GANC(") and name.endswith("Dyn)")
        )
        assert ganc_dyn.coverage > subset["pop"].coverage
