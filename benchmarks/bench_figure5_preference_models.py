"""Benchmark: regenerate Figure 5 (preference models x accuracy recommenders x N)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure5 import run_figure5


def test_figure5_preference_model_interplay(benchmark, bench_scale, bench_sample_size, save_table):
    cells, table = run_once(
        benchmark,
        run_figure5,
        dataset_key="ml1m",
        accuracy_recommenders=("rsvd", "psvd100", "psvd10", "pop"),
        preference_models=("thetaN", "thetaT", "thetaG", "thetaR", "thetaC"),
        n_values=(5, 10),
        sample_size=bench_sample_size,
        scale=bench_scale,
        seed=0,
    )
    save_table("figure5_preference_models", table.to_text())
    # 4 ARecs x 2 N values x (1 reference + 5 preference models) = 48 cells.
    assert len(cells) == 48

    # The bare accuracy recommender achieves the best F-measure in each panel.
    for arec in ("rsvd", "psvd100", "psvd10", "pop"):
        for n in (5, 10):
            panel = [c for c in cells if c.accuracy_recommender == arec and c.n == n]
            reference = next(c for c in panel if c.preference == "ARec")
            assert all(
                reference.report.f_measure >= c.report.f_measure - 1e-9
                for c in panel
                if c.preference != "ARec"
            )

    # GANC variants improve coverage over the bare recommender in every panel.
    for arec in ("rsvd", "psvd100", "psvd10", "pop"):
        panel = [c for c in cells if c.accuracy_recommender == arec and c.n == 5]
        reference = next(c for c in panel if c.preference == "ARec")
        ganc_best_coverage = max(
            c.report.coverage for c in panel if c.preference != "ARec"
        )
        assert ganc_best_coverage >= reference.report.coverage - 1e-9
