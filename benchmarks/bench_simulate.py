"""Simulation benchmark: replay throughput + windowed drift series.

Builds a pipeline on the synthetic ML-1M profile, compiles a top-N
artifact, and measures the traffic simulator in its two replay modes:

* **Offline sharded replay** — a ``burst`` trace answered by the
  memory-mapped :class:`~repro.serving.store.RecommendationStore`, fanned
  over the executor.  Headline number: events/second, measured serial and
  threaded, with the two runs byte-compared (the determinism contract is
  part of what this bench guards).
* **Online replay** — a live GANC pipeline with dynamic coverage consuming
  a ``coldstart`` trace strictly in order, feedback flowing back into the
  coverage state through the O(N) delta after every event.

The emitted ``BENCH_simulate.json`` carries the throughput metrics plus the
per-window coverage/novelty/accuracy series of the offline run (flattened
as ``window_<i>_<metric>`` — the bench schema wants flat finite numbers),
so coverage drift under traffic is tracked PR-over-PR alongside speed.

Run directly::

    PYTHONPATH=src python benchmarks/bench_simulate.py              # full scale
    PYTHONPATH=src python benchmarks/bench_simulate.py --scale 0.05 \\
        --events 400 --window 100 --online-events 120 --repeats 1   # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.parallel.executor import get_executor
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
)
from repro.serving import compile_artifact
from repro.simulate import (
    PipelineSource,
    SimulationConfig,
    StoreSource,
    build_trace,
    canonical_bytes,
    run_simulation,
)

from bench_json import write_bench_json

N = 10
FEEDBACK = "position-biased"


def _time(fn, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _window_series(report: dict) -> dict[str, float]:
    """Flatten the per-window drift series into flat finite bench metrics."""
    series: dict[str, float] = {}
    for window in report["windows"]:
        index = window["index"]
        series[f"window_{index}_coverage"] = window["cumulative_coverage"]
        series[f"window_{index}_gini"] = window["cumulative_gini"]
        for key in ("precision", "recall", "epc", "arp"):
            if window[key] is not None:
                series[f"window_{index}_{key}"] = window[key]
    return series


def run_benchmark(
    scale: float,
    events: int,
    window: int,
    online_events: int,
    *,
    shards: int,
    jobs: int,
    repeats: int,
    seed: int,
):
    """Execute the benchmark; returns (report lines, metrics, speedups, equal)."""
    lines = [
        "simulation benchmark (replay throughput + windowed drift)",
        f"scale={scale} events={events} window={window} "
        f"online_events={online_events} n={N} shards={shards} jobs={jobs} "
        f"repeats={repeats} feedback={FEEDBACK}",
        "",
    ]
    metrics: dict[str, float] = {}

    spec = PipelineSpec(
        recommender=ComponentSpec("pop"),
        dataset=DatasetSpec(key="ml1m", scale=scale),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    split = pipeline.split
    n_users = split.train.n_users
    n_items = split.train.n_items
    lines.append(f"ml1m profile at scale {scale}: {n_users} users x {n_items} items")

    with tempfile.TemporaryDirectory() as tmp:
        pipeline_dir = Path(tmp) / "pipeline"
        artifact_dir = Path(tmp) / "artifact"
        pipeline.save(pipeline_dir)
        compile_artifact(pipeline_dir, artifact_dir, shard_size=4096, n_jobs=jobs)

        config = SimulationConfig(
            scenario="burst", n_events=events, n=N, feedback=FEEDBACK,
            window=window, seed=seed, shards=shards,
        )
        source = StoreSource(artifact_dir)
        trace = build_trace(
            "burst", n_users=source.n_users, n_items=source.n_items,
            n_events=events, seed=seed,
        )

        serial_s, serial = _time(
            lambda: run_simulation(
                source, config, split=split,
                executor=get_executor("serial", 1), trace=trace,
            ),
            repeats=repeats,
        )
        threaded_s, threaded = _time(
            lambda: run_simulation(
                source, config, split=split,
                executor=get_executor("thread", jobs), trace=trace,
            ),
            repeats=repeats,
        )
        equal = canonical_bytes(serial.report) == canonical_bytes(threaded.report)
        lines.append(
            f"offline store replay (burst, serial): {events / serial_s:,.0f} events/s"
        )
        lines.append(
            f"offline store replay (burst, thread x{jobs}): "
            f"{events / threaded_s:,.0f} events/s"
        )
        lines.append(
            "serial and threaded reports byte-identical: " + ("yes" if equal else "NO")
        )
        metrics.update(
            replay_serial_s=serial_s,
            replay_threaded_s=threaded_s,
            events_per_s=events / threaded_s,
            events_per_s_serial=events / serial_s,
            consumed=serial.report["totals"]["consumed"],
            cumulative_coverage=serial.report["totals"]["cumulative_coverage"],
            cumulative_gini=serial.report["totals"]["cumulative_gini"],
        )
        metrics.update(_window_series(serial.report))
        speedups = {"thread_vs_serial": serial_s / threaded_s}

    # Online mode: a live GANC pipeline with dynamic coverage, strictly
    # in-order feedback.  Refit per repeat so every timed run starts from
    # the same pristine coverage state.
    ganc_spec = PipelineSpec(
        recommender=ComponentSpec("pop"),
        preference=ComponentSpec("thetag"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=100, optimizer="oslg"),
        dataset=DatasetSpec(key="ml1m", scale=scale),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )
    online_config = SimulationConfig(
        scenario="coldstart", n_events=online_events, n=N, feedback=FEEDBACK,
        window=max(1, online_events // 4), seed=seed, shards=shards, verify=True,
    )
    best_online = float("inf")
    online = None
    for _ in range(repeats):
        online_source = PipelineSource(Pipeline(ganc_spec).fit())
        start = time.perf_counter()
        online = run_simulation(online_source, online_config)
        best_online = min(best_online, time.perf_counter() - start)
    lines.append(
        f"online GANC replay (coldstart, verified): "
        f"{online_events / best_online:,.0f} events/s"
    )
    lines.append(
        f"online cumulative coverage after {online_events} events: "
        f"{online.report['totals']['cumulative_coverage']:.4f} "
        f"(offline store run: {metrics['cumulative_coverage']:.4f})"
    )
    metrics.update(
        online_replay_s=best_online,
        online_events_per_s=online_events / best_online,
        online_cumulative_coverage=online.report["totals"]["cumulative_coverage"],
        online_cumulative_gini=online.report["totals"]["cumulative_gini"],
    )
    return lines, metrics, speedups, equal


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--events", type=int, default=20_000)
    parser.add_argument("--window", type=int, default=2_000)
    parser.add_argument("--online-events", type=int, default=600)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    lines, metrics, speedups, equal = run_benchmark(
        args.scale,
        args.events,
        args.window,
        args.online_events,
        shards=args.shards,
        jobs=args.jobs,
        repeats=args.repeats,
        seed=args.seed,
    )
    report = "\n".join(lines)
    print(report)
    output = Path(__file__).resolve().parent / "output" / "bench_simulate.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "simulate",
        config={
            "scale": args.scale,
            "events": args.events,
            "window": args.window,
            "online_events": args.online_events,
            "n": N,
            "shards": args.shards,
            "jobs": args.jobs,
            "repeats": args.repeats,
            "seed": args.seed,
            "feedback": FEEDBACK,
        },
        metrics=metrics,
        speedups=speedups,
        equal=equal,
    )
    if not equal:
        print("FAIL: serial and threaded replay reports differ")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
