"""Benchmark: regenerate Table V (RSVD / RSVDN hyper-parameter selection)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table5 import run_table5


def test_table5_rsvd_hyperparameters(benchmark, bench_scale, save_table):
    points, table = run_once(
        benchmark,
        run_table5,
        datasets=["ml100k", "ml1m", "mt200k"],
        factors=(8, 20),
        regs=(0.01, 0.05),
        learning_rates=(0.02,),
        scale=bench_scale,
        seed=0,
    )
    save_table("table5_rsvd_config", table.to_text())
    # 3 datasets x 2 models x 2 factors x 2 regs x 1 lr grid points.
    assert len(points) == 24
    # 3 datasets x 2 models selected rows.
    assert len(table.rows) == 6
    assert all(p.validation_rmse < 3.0 for p in points)
