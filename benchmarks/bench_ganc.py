"""GANC optimizer benchmark: incremental delta-updated core vs pre-refactor.

Measures the two phases the incremental refactor targets, per accuracy
recommender, on the synthetic ML-1M profile:

* **sequential sampled pass** (Algorithm 1, lines 4-10): the pre-refactor
  loop re-fetched every sampled user's accuracy row one user at a time,
  re-derived the full coverage score vector from counts per user, and stored
  dense ``(S, |I|)`` frequency snapshots.  The incremental engine prefetches
  accuracy rows as batched blocks, blends against the delta-updated live
  ``CoverageState`` and records O(N) snapshot deltas.
* **OSLG end-to-end** (both phases): the snapshot-assignment phase was
  already blocked (PR 1); the differential is the sequential pass plus the
  compact delta-snapshot plumbing.

Both implementations are asserted to produce identical collections before
timing.  The legacy reference is re-implemented inline, operation for
operation, from the pre-refactor sources.

The ISSUE's speedup gates (>= 5x sequential, >= 3x end-to-end) are evaluated
on the *headline* configuration — the refetch-bound ItemKNN accuracy
recommender, where the per-user accuracy re-fetch the refactor removes
dominates the sequential cost.  The other configurations are reported for
transparency; their legacy per-user fetch is cheaper, so their ratios are
structurally smaller.

Run directly::

    PYTHONPATH=src python benchmarks/bench_ganc.py                 # full ML-1M profile
    PYTHONPATH=src python benchmarks/bench_ganc.py --scale 0.1 --repeats 1 \
        --min-seq-speedup 0 --min-e2e-speedup 0                    # CI smoke run

Writes ``benchmarks/output/bench_ganc.txt`` and ``BENCH_ganc.json``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.coverage.dynamic import DynamicCoverage
from repro.data.split import RatioSplitter
from repro.data.synthetic import make_dataset
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.oslg import OSLGOptimizer
from repro.ganc.value_function import combined_item_scores
from repro.parallel.executor import resolve_executor
from repro.parallel.tasks import SnapshotAssignTask
from repro.recommenders.registry import make_recommender
from repro.utils.rng import ensure_rng
from repro.utils.topn import iter_user_blocks, top_n_indices

from bench_json import write_bench_json

#: Accuracy recommenders benchmarked; the headline carries the speedup gates.
BENCH_MODELS = ("pop", "psvd100", "itemknn")
HEADLINE = "itemknn"


def _time(fn, *, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# --------------------------------------------------------------------------- #
# Faithful pre-refactor reference (inline re-implementation)
# --------------------------------------------------------------------------- #
def legacy_sequential_pass(model, train, theta, sampled, n):
    """The pre-refactor OSLG sequential pass, operation for operation.

    Per sampled user: one-user accuracy fetch (``unit_scores``), full
    ``1/sqrt(f+1)`` coverage recompute (``coverage.scores``), fresh-array
    θ-blend, canonical top-N, count update, and a dense snapshot row stored
    from a ``frequencies`` copy.
    """
    coverage = DynamicCoverage().fit(train)
    out = np.full((train.n_users, n), -1, dtype=np.int64)
    snapshots = np.zeros((sampled.size, train.n_items), dtype=np.float64)
    for position, user in enumerate(sampled):
        accuracy = model.unit_scores(int(user), n)
        values = combined_item_scores(
            accuracy, coverage.scores(int(user)), float(theta[user])
        )
        exclude = train.user_items(int(user))
        if exclude.size:
            values = values.copy()
            values[exclude] = -np.inf
        items = top_n_indices(values, n)
        out[user, : items.size] = items
        coverage.update(items)
        snapshots[position] = coverage.frequencies
    return out, snapshots


def legacy_oslg(model, train, theta, n, sample_size, seed):
    """The pre-refactor OSLG end-to-end run: sequential pass + dense-snapshot
    blocked assignment phase (the phase PR 1 already batched)."""
    optimizer = OSLGOptimizer(
        DynamicCoverage().fit(train), n, sample_size=sample_size, seed=seed
    )
    sampled = optimizer._sample_users(theta, ensure_rng(seed))
    sampled = sampled[np.argsort(theta[sampled], kind="stable")]
    out, snapshots = legacy_sequential_pass(model, train, theta, sampled, n)
    remaining = np.setdiff1d(np.arange(train.n_users), sampled)
    if remaining.size:
        task = SnapshotAssignTask(
            theta,
            theta[sampled],
            snapshots,  # dense array: exercises the pre-refactor snapshot path
            n,
            lambda users: model.unit_scores_batch(users, n),
            train.user_items_batch,
        )
        blocks = [remaining[block] for block in iter_user_blocks(remaining.size, None)]
        executor = resolve_executor(None, None)
        for users, rows in zip(blocks, executor.map_blocks(task, blocks)):
            out[users] = rows
    return out


def legacy_locally_greedy(model, train, theta, n):
    """The pre-refactor full sequential Locally Greedy pass (Dyn coverage)."""
    coverage = DynamicCoverage().fit(train)
    out = np.full((train.n_users, n), -1, dtype=np.int64)
    for user in range(train.n_users):
        accuracy = model.unit_scores(user, n)
        values = combined_item_scores(accuracy, coverage.scores(user), float(theta[user]))
        exclude = train.user_items(user)
        if exclude.size:
            values = values.copy()
            values[exclude] = -np.inf
        items = top_n_indices(values, n)
        out[user, : items.size] = items
        coverage.update(items)
    return out


# --------------------------------------------------------------------------- #
def bench_model(name, train, theta, n, sample_size, seed, repeats, lines, metrics):
    """Benchmark one accuracy recommender; returns its speedup dict."""
    model = make_recommender(name).fit(train)
    model.unit_scores_batch(np.arange(min(8, train.n_users)), n)  # warm caches

    accuracy_matrix = lambda users: model.unit_scores_batch(users, n)  # noqa: E731

    # Fix the sample once so both sequential passes serve identical users.
    probe = OSLGOptimizer(
        DynamicCoverage().fit(train), n, sample_size=sample_size, seed=seed
    )
    sampled = probe._sample_users(theta, ensure_rng(seed))
    sampled = sampled[np.argsort(theta[sampled], kind="stable")]

    def new_sequential():
        optimizer = OSLGOptimizer(
            DynamicCoverage().fit(train), n, sample_size=sample_size, seed=seed
        )
        return optimizer.run(
            theta,
            lambda user: model.unit_scores(user, n),
            train.user_items,
            accuracy_matrix=accuracy_matrix,
            exclusion_pairs=train.user_items_batch,
        )

    # Sequential sampled pass: legacy loop vs one full new OSLG run restricted
    # to comparing the sampled rows (the new run's snapshot phase cost is
    # excluded by timing the two phases separately below).
    from repro.ganc.incremental import SequentialAssigner

    def new_sequential_only():
        coverage = DynamicCoverage().fit(train)
        out = np.full((train.n_users, n), -1, dtype=np.int64)
        SequentialAssigner(coverage, n).run(
            out, sampled, theta, accuracy_matrix, train.user_items_batch
        )
        return out

    legacy_seq_s, (legacy_rows, legacy_snapshots) = _time(
        lambda: legacy_sequential_pass(model, train, theta, sampled, n), repeats=repeats
    )
    new_seq_s, new_rows = _time(new_sequential_only, repeats=repeats)
    seq_equal = bool(np.array_equal(legacy_rows[sampled], new_rows[sampled]))

    legacy_e2e_s, legacy_out = _time(
        lambda: legacy_oslg(model, train, theta, n, sample_size, seed), repeats=repeats
    )
    new_e2e_s, new_result = _time(new_sequential, repeats=repeats)
    e2e_equal = bool(np.array_equal(legacy_out, new_result.top_n.items))
    snap_equal = bool(np.array_equal(legacy_snapshots, new_result.snapshots))

    # Full sequential Locally Greedy (Dyn): the other sequential optimizer.
    greedy_legacy_s, greedy_legacy = _time(
        lambda: legacy_locally_greedy(model, train, theta, n), repeats=repeats
    )

    def new_locally_greedy():
        greedy = LocallyGreedyOptimizer(DynamicCoverage().fit(train), n)
        return greedy.run(
            theta,
            lambda user: model.unit_scores(user, n),
            train.user_items,
            accuracy_matrix=accuracy_matrix,
            exclusion_pairs=train.user_items_batch,
        )

    greedy_new_s, greedy_new = _time(new_locally_greedy, repeats=repeats)
    greedy_equal = bool(np.array_equal(greedy_legacy, greedy_new.items))

    equal = seq_equal and e2e_equal and snap_equal and greedy_equal
    speedups = {
        "sequential_sampled_pass": legacy_seq_s / new_seq_s,
        "oslg_end_to_end": legacy_e2e_s / new_e2e_s,
        "locally_greedy_dyn": greedy_legacy_s / greedy_new_s,
    }
    metrics[f"{name}_sequential_legacy_s"] = legacy_seq_s
    metrics[f"{name}_sequential_new_s"] = new_seq_s
    metrics[f"{name}_oslg_legacy_s"] = legacy_e2e_s
    metrics[f"{name}_oslg_new_s"] = new_e2e_s
    metrics[f"{name}_locally_greedy_legacy_s"] = greedy_legacy_s
    metrics[f"{name}_locally_greedy_new_s"] = greedy_new_s

    lines.append(
        f"{name:<10} {'sequential sampled pass':<26} {legacy_seq_s:>9.4f} "
        f"{new_seq_s:>9.4f} {speedups['sequential_sampled_pass']:>7.1f}x  {equal}"
    )
    lines.append(
        f"{name:<10} {'oslg end-to-end':<26} {legacy_e2e_s:>9.4f} "
        f"{new_e2e_s:>9.4f} {speedups['oslg_end_to_end']:>7.1f}x  {equal}"
    )
    lines.append(
        f"{name:<10} {'locally_greedy (Dyn) full':<26} {greedy_legacy_s:>9.4f} "
        f"{greedy_new_s:>9.4f} {speedups['locally_greedy_dyn']:>7.1f}x  {equal}"
    )
    return speedups, equal


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="ml1m", help="synthetic dataset profile")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--n", type=int, default=5, help="top-N size")
    parser.add_argument("--sample-size", type=int, default=500, help="OSLG sample size S")
    parser.add_argument("--seed", type=int, default=1, help="sampling seed")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--models", nargs="+", default=list(BENCH_MODELS),
        help="accuracy recommenders to benchmark",
    )
    parser.add_argument(
        "--min-seq-speedup", type=float, default=5.0,
        help="fail when the headline sequential-pass speedup falls below this",
    )
    parser.add_argument(
        "--min-e2e-speedup", type=float, default=3.0,
        help="fail when the headline OSLG end-to-end speedup falls below this",
    )
    args = parser.parse_args(argv)

    dataset = make_dataset(args.profile, scale=args.scale)
    train = RatioSplitter(0.8, seed=0).split(dataset).train
    theta = np.random.default_rng(0).random(train.n_users)
    sample_size = max(1, min(args.sample_size, train.n_users - 1))

    lines = [
        f"GANC incremental-core benchmark — profile={args.profile} scale={args.scale} "
        f"({train.n_users} users x {train.n_items} items, top-{args.n}, S={sample_size})",
        "",
        "legacy = pre-refactor implementation (per-user accuracy fetch, full",
        "coverage recompute per user, dense O(S*|I|) snapshots), re-implemented",
        "inline; new = incremental CoverageState engine + delta snapshots.",
        f"gates: headline={HEADLINE} sequential >= {args.min_seq_speedup}x, "
        f"end-to-end >= {args.min_e2e_speedup}x",
        "",
        f"{'model':<10} {'phase':<26} {'legacy_s':>9} {'new_s':>9} {'speedup':>8}  equal",
        "-" * 75,
    ]
    metrics: dict[str, float] = {}
    speedups: dict[str, float] = {}
    all_equal = True
    headline = {}
    for name in args.models:
        model_speedups, equal = bench_model(
            name, train, theta, args.n, sample_size, args.seed, args.repeats,
            lines, metrics,
        )
        all_equal = all_equal and equal
        for phase, value in model_speedups.items():
            speedups[f"{name}_{phase}"] = value
        if name == HEADLINE:
            headline = model_speedups

    lines.append("")
    if headline:
        lines.append(
            f"headline ({HEADLINE}): sequential sampled pass "
            f"{headline['sequential_sampled_pass']:.1f}x, "
            f"oslg end-to-end {headline['oslg_end_to_end']:.1f}x"
        )
    lines.append(f"all outputs identical to legacy: {all_equal}")

    text = "\n".join(lines)
    print(text)
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "bench_ganc.txt").write_text(text + "\n", encoding="utf-8")
    write_bench_json(
        "ganc",
        config={
            "profile": args.profile,
            "scale": args.scale,
            "n": args.n,
            "sample_size": sample_size,
            "seed": args.seed,
            "repeats": args.repeats,
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
            "headline": HEADLINE,
        },
        metrics=metrics,
        speedups=speedups,
        equal=all_equal,
    )

    failures = []
    if not all_equal:
        failures.append("legacy/new outputs differ")
    if headline:
        if args.min_seq_speedup and headline["sequential_sampled_pass"] < args.min_seq_speedup:
            failures.append(
                f"headline sequential speedup {headline['sequential_sampled_pass']:.1f}x "
                f"< required {args.min_seq_speedup}x"
            )
        if args.min_e2e_speedup and headline["oslg_end_to_end"] < args.min_e2e_speedup:
            failures.append(
                f"headline end-to-end speedup {headline['oslg_end_to_end']:.1f}x "
                f"< required {args.min_e2e_speedup}x"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
