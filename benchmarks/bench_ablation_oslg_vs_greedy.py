"""Benchmark (ablation): OSLG sampling versus the exact Locally Greedy pass."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import run_oslg_vs_greedy


def test_ablation_oslg_vs_exact_locally_greedy(benchmark, bench_scale, save_table):
    rows, table = run_once(
        benchmark,
        run_oslg_vs_greedy,
        dataset_key="ml1m",
        arec_name="psvd100",
        sample_sizes=(50, 150, 300),
        scale=bench_scale,
        seed=0,
    )
    save_table("ablation_oslg_vs_greedy", table.to_text())
    assert len(rows) == 4
    exact = rows[0]
    assert exact.configuration.startswith("LocallyGreedy")
    # Sampling trades a bounded amount of coverage for the reduced sequential cost.
    for row in rows[1:]:
        assert row.report.coverage <= exact.report.coverage + 1e-9
        assert row.report.coverage >= 0.25 * exact.report.coverage
