"""Benchmark: regenerate Table IV (re-ranking comparison over RSVD) on all datasets."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table4 import run_table4


def test_table4_reranking_comparison(benchmark, bench_scale, bench_sample_size, save_table):
    rows, table = run_once(
        benchmark,
        run_table4,
        scale=bench_scale,
        sample_size=bench_sample_size,
        seed=0,
    )
    save_table("table4_reranking", table.to_text())
    # 5 datasets x 9 algorithms.
    assert len(rows) == 45

    datasets = {row.dataset for row in rows}
    for dataset in datasets:
        subset = [row for row in rows if row.dataset == dataset]
        by_name = {row.algorithm: row for row in subset}
        base = by_name["RSVD"]
        for name in ("GANC(RSVD, thetaT, Dyn)", "GANC(RSVD, thetaG, Dyn)"):
            ganc = by_name[name]
            # GANC's defining Table IV behaviour: substantially higher coverage
            # and lower Gini than the base rating-prediction ranking.
            assert ganc.report.coverage >= base.report.coverage
            assert ganc.report.gini <= base.report.gini + 1e-9
        # GANC obtains a competitive (low) average rank on every dataset.
        ganc_best = min(
            row.average_rank for row in subset if row.algorithm.startswith("GANC")
        )
        overall_best = min(row.average_rank for row in subset)
        assert ganc_best <= overall_best + 1.5
