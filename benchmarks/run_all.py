"""Unified benchmark driver: run every committed bench, emit BENCH_*.json.

Runs each standalone benchmark driver in-process and validates the
machine-readable ``benchmarks/output/BENCH_<name>.json`` documents they emit
against the shared schema (see :mod:`bench_json`), so the performance
trajectory is tracked PR-over-PR in reviewable, diffable JSON instead of
only prose tables.

Run directly::

    PYTHONPATH=src python benchmarks/run_all.py              # full-scale pass
    PYTHONPATH=src python benchmarks/run_all.py --smoke      # CI: tiny scale, schema-validated
    PYTHONPATH=src python benchmarks/run_all.py --only ganc  # a single bench

``--smoke`` runs every bench at a tiny scale with all speedup gates
disabled — the point is exercising every driver end to end and validating
the JSON schema, not producing meaningful numbers — and is wired as the CI
bench-smoke step.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import bench_batch_scoring
import bench_ganc
import bench_parallel_scaling
import bench_scale
import bench_serving
import bench_simulate
import bench_update
from bench_json import OUTPUT_DIR, load_and_validate

#: name -> (module, full-scale argv, smoke argv)
BENCHES: dict[str, tuple] = {
    "ganc": (
        bench_ganc,
        [],
        ["--scale", "0.1", "--repeats", "1", "--sample-size", "30",
         "--min-seq-speedup", "0", "--min-e2e-speedup", "0"],
    ),
    "batch_scoring": (
        bench_batch_scoring,
        [],
        ["--scale", "0.1", "--repeats", "1", "--min-speedup", "0"],
    ),
    "parallel_scaling": (
        bench_parallel_scaling,
        [],
        ["--scale", "0.1", "--jobs", "2", "--repeats", "1", "--min-speedup", "0"],
    ),
    "scale": (
        bench_scale,
        [],
        [
            "--users", "800", "--items", "600", "--ratings", "20000",
            "--sample-users", "128", "--chunk-size", "8000",
            "--sketch-projections", "64", "--sketch-candidates", "60",
            "--min-ann-speedup", "0", "--min-recall", "0",
        ],
    ),
    "serving": (
        bench_serving,
        [],
        [
            "--scale", "0.1", "--repeats", "1", "--lookups", "100",
            "--clients", "4", "--requests-per-client", "25", "--min-load-speedup", "0",
        ],
    ),
    "simulate": (
        bench_simulate,
        [],
        [
            "--scale", "0.05", "--events", "400", "--window", "100",
            "--online-events", "120", "--repeats", "1",
        ],
    ),
    "update": (
        bench_update,
        [],
        [
            "--scale", "0.1", "--repeats", "1", "--delta-events", "50",
            "--coldstart-users", "20", "--min-coldstart-speedup", "0",
        ],
    ),
}


def main(argv=None) -> int:
    """Run the requested benches, then validate every emitted JSON document."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", nargs="+", choices=sorted(BENCHES), default=None,
        help="run only these benches (default: all)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny-scale pass with speedup gates disabled (CI schema check)",
    )
    parser.add_argument(
        "--validate-only", action="store_true",
        help="skip running; only validate the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    names = args.only or sorted(BENCHES)
    failures: list[str] = []

    if not args.validate_only:
        for name in names:
            module, full_args, smoke_args = BENCHES[name]
            bench_argv = smoke_args if args.smoke else full_args
            print(f"=== {name} {' '.join(bench_argv)}")
            try:
                code = module.main(list(bench_argv))
            except SystemExit as exc:  # drivers that exit explicitly
                code = int(exc.code or 0)
            if code != 0:
                failures.append(f"{name}: exited {code}")
            print()

    for name in names:
        path = OUTPUT_DIR / f"BENCH_{name}.json"
        if not path.exists():
            failures.append(f"{name}: {path.name} was not emitted")
            continue
        try:
            payload = load_and_validate(path)
        except (ValueError, OSError) as exc:
            failures.append(f"{name}: {exc}")
            continue
        if payload.get("bench") != name:
            failures.append(
                f"{name}: document names bench {payload.get('bench')!r}"
            )
        else:
            print(f"validated {path.relative_to(Path.cwd()) if path.is_relative_to(Path.cwd()) else path}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall benchmark JSON documents valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
