"""Benchmark: regenerate Figure 4 (OSLG sample-size sweep on the MT-200K surrogate)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure3_4 import run_figure4


def test_figure4_sample_size_sweep_mt200k(benchmark, bench_scale, save_table):
    points, table = run_once(
        benchmark,
        run_figure4,
        sample_sizes=(50, 150, 300),
        accuracy_recommenders=("psvd100", "psvd10", "pop", "rsvd"),
        scale=bench_scale,
        seed=0,
    )
    save_table("figure4_sample_size_mt200k", table.to_text())
    assert len(points) == 12
    for point in points:
        assert 0.0 <= point.f_measure <= 1.0
        assert 0.0 < point.coverage <= 1.0
