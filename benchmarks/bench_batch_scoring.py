"""Throughput benchmark: per-user loop vs batched scoring engine.

Measures ``recommend_all`` (blocked ``predict_matrix`` + 2-D selection)
against the historical one-user-at-a-time loop for several recommenders, plus
the batched GANC assignment phases, on the synthetic ML-1M-scale profile.
Results are printed as a table and written to
``benchmarks/output/bench_batch_scoring.txt``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_scoring.py             # full ML-1M scale
    PYTHONPATH=src python benchmarks/bench_batch_scoring.py --scale 0.1 # CI smoke run

The batched and per-user paths produce identical top-N collections (enforced
here and by ``tests/test_batch_scoring.py``); the interesting number is the
speedup, which the ISSUE targets at >= 5x for ``recommend_all``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.static import StaticCoverage
from repro.data.split import RatioSplitter
from repro.data.synthetic import make_dataset
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.oslg import OSLGOptimizer
from repro.recommenders.base import Recommender
from repro.recommenders.registry import make_recommender

from bench_json import write_bench_json

N = 5

#: Recommenders benchmarked for recommend_all throughput.  RSVD is configured
#: with few epochs — fitting time is irrelevant to the scoring benchmark.
BENCH_MODELS: dict[str, dict] = {
    "pop": {},
    "rand": {},
    "psvd100": {},
    "rsvd": {"n_epochs": 3},
    "itemknn": {},
}


def _loop_recommend_all(model: Recommender, n: int) -> np.ndarray:
    out = np.full((model.train_data.n_users, n), -1, dtype=np.int64)
    for user in range(model.train_data.n_users):
        items = model.recommend(user, n)
        out[user, : items.size] = items
    return out


def _time(fn, *, repeats: int = 1) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_recommenders(train, repeats: int, lines: list[str]) -> dict[str, float]:
    n_users = train.n_users
    speedups: dict[str, float] = {}
    header = (
        f"{'model':<10} {'loop_s':>9} {'batch_s':>9} {'speedup':>8} "
        f"{'loop_u/s':>10} {'batch_u/s':>11}  equal"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, kwargs in BENCH_MODELS.items():
        model = make_recommender(name, **kwargs).fit(train)
        model.recommend_all(N)  # warm caches (CSR, user slices, BLAS)
        loop_s, loop_items = _time(lambda: _loop_recommend_all(model, N), repeats=repeats)
        batch_s, batch_top = _time(lambda: model.recommend_all(N), repeats=repeats)
        equal = bool(np.array_equal(loop_items, batch_top.items))
        speedup = loop_s / batch_s if batch_s > 0 else float("inf")
        speedups[name] = speedup
        lines.append(
            f"{name:<10} {loop_s:>9.4f} {batch_s:>9.4f} {speedup:>7.1f}x "
            f"{n_users / loop_s:>10.0f} {n_users / batch_s:>11.0f}  {equal}"
        )
    return speedups


def bench_ganc(train, repeats: int, lines: list[str]) -> dict[str, float]:
    theta = np.random.default_rng(0).random(train.n_users)
    model = make_recommender("pop").fit(train)
    model.recommend_all(N)

    def accuracy(user: int) -> np.ndarray:
        return model.unit_scores(user, N)

    def accuracy_matrix(users: np.ndarray) -> np.ndarray:
        return model.unit_scores_batch(users, N)

    def exclusions(user: int) -> np.ndarray:
        return train.user_items(user)

    lines.append("")
    header = f"{'ganc phase':<28} {'loop_s':>9} {'batch_s':>9} {'speedup':>8}  equal"
    lines.append(header)
    lines.append("-" * len(header))

    # Independent branch: static coverage, whole assignment is batched.
    optimizer = LocallyGreedyOptimizer(StaticCoverage().fit(train), N)
    greedy_loop_s, seq = _time(
        lambda: optimizer.run(theta, accuracy, exclusions, n_users=train.n_users),
        repeats=repeats,
    )
    greedy_batch_s, blocked = _time(
        lambda: optimizer.run_independent(
            theta, accuracy_matrix, train.user_items_batch, n_users=train.n_users
        ),
        repeats=repeats,
    )
    equal = bool(np.array_equal(seq.items, blocked.items))
    lines.append(
        f"{'locally_greedy (Stat)':<28} {greedy_loop_s:>9.4f} {greedy_batch_s:>9.4f} "
        f"{greedy_loop_s / greedy_batch_s:>7.1f}x  {equal}"
    )

    # OSLG snapshot phase: stacked per-user providers vs batched providers.
    sample_size = max(min(500, train.n_users // 4), 1)
    loop_s, a = _time(
        lambda: OSLGOptimizer(
            DynamicCoverage().fit(train), N, sample_size=sample_size, seed=1
        ).run(theta, accuracy, exclusions),
        repeats=repeats,
    )
    batch_s, b = _time(
        lambda: OSLGOptimizer(
            DynamicCoverage().fit(train), N, sample_size=sample_size, seed=1
        ).run(
            theta,
            accuracy,
            exclusions,
            accuracy_matrix=accuracy_matrix,
            exclusion_pairs=train.user_items_batch,
        ),
        repeats=repeats,
    )
    equal = bool(np.array_equal(a.top_n.items, b.top_n.items))
    lines.append(
        f"{'oslg (S=' + str(sample_size) + ', Dyn)':<28} {loop_s:>9.4f} {batch_s:>9.4f} "
        f"{loop_s / batch_s:>7.1f}x  {equal}"
    )
    return {
        "locally_greedy_stat": greedy_loop_s / greedy_batch_s,
        "oslg_stacked_vs_batched": loop_s / batch_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="ml1m", help="synthetic dataset profile")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero when the mean recommend_all speedup falls below this",
    )
    args = parser.parse_args(argv)

    dataset = make_dataset(args.profile, scale=args.scale)
    train = RatioSplitter(0.8, seed=0).split(dataset).train

    lines = [
        f"batch scoring benchmark — profile={args.profile} scale={args.scale} "
        f"({train.n_users} users x {train.n_items} items, {train.n_ratings} train ratings, "
        f"top-{N})",
        "",
    ]
    speedups = bench_recommenders(train, args.repeats, lines)
    ganc_speedups = bench_ganc(train, args.repeats, lines)

    mean_speedup = float(np.mean(list(speedups.values())))
    lines.append("")
    lines.append(f"mean recommend_all speedup: {mean_speedup:.1f}x")

    text = "\n".join(lines)
    print(text)
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "bench_batch_scoring.txt").write_text(text + "\n", encoding="utf-8")
    write_bench_json(
        "batch_scoring",
        config={
            "profile": args.profile,
            "scale": args.scale,
            "repeats": args.repeats,
            "n": N,
            "n_users": int(train.n_users),
            "n_items": int(train.n_items),
        },
        metrics={"mean_recommend_all_speedup": mean_speedup},
        speedups={
            **{f"recommend_all_{name}": value for name, value in speedups.items()},
            **ganc_speedups,
        },
        equal=True,
    )

    if args.min_speedup and mean_speedup < args.min_speedup:
        print(f"FAIL: mean speedup {mean_speedup:.1f}x < required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
