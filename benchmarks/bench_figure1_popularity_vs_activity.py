"""Benchmark: regenerate Figure 1 (avg rated-item popularity vs user activity)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure1 import run_figure1


def test_figure1_popularity_vs_activity(benchmark, bench_scale, save_table):
    curves, table = run_once(benchmark, run_figure1, scale=bench_scale, n_bins=10, seed=0)
    save_table("figure1_popularity_vs_activity", table.to_text())
    assert len(curves) == 5
    # The paper's motivating trend: on most datasets the curve decreases.
    decreasing = sum(curve.is_decreasing_overall() for curve in curves)
    assert decreasing >= 3
