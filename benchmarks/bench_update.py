"""Delta-update benchmark: ``compile --update`` vs. a from-scratch recompile.

Builds a bare MostPopular pipeline on the synthetic ML-100K profile,
compiles a baseline artifact, and then measures the two ingestion paths an
operator can take when new ratings arrive:

* **scratch** — fit a fresh pipeline on the extended split and run a full
  ``compile_artifact`` into a new directory (the only option before
  ``repro compile --update`` existed);
* **update** — load the saved pipeline, delta-refit it
  (:func:`repro.serving.refit_pipeline`), and run
  :func:`repro.serving.compile_artifact_update` against the live artifact,
  which byte-compares shards and rewrites only the ones that changed.

Two delta shapes are measured, because they exercise opposite ends of the
update path:

* **rating delta** (``--delta-events`` appended ratings) — the popularity
  state changes, so every row is recomputed and the win over scratch is
  the avoided full refit plus skipped unchanged shards;
* **cold-start delta** (``--coldstart-users`` new users, no ratings) — the
  model state is bitwise unchanged, so the narrowed path recomputes only
  the arrivals' rows and skips every full shard in place (inode-stable).

After every timed update the artifact is byte-compared against a
from-scratch compile of the extended dataset — shard bytes and manifest
(modulo ``revision``) must match exactly — and ``equal`` is reported in
``BENCH_update.json`` only if all comparisons held.  ``--min-coldstart-speedup``
(default 2.0) gates the cold-start update-vs-scratch wall-clock ratio;
pass ``0`` to disable (CI smoke).

Run directly::

    PYTHONPATH=src python benchmarks/bench_update.py                 # full scale
    PYTHONPATH=src python benchmarks/bench_update.py --scale 0.1 \\
        --delta-events 50 --coldstart-users 20 --repeats 1 \\
        --min-coldstart-speedup 0                                    # CI smoke run
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import extend_split
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Pipeline,
    PipelineSpec,
)
from repro.serving import (
    compile_artifact,
    compile_artifact_update,
    load_manifest,
    refit_pipeline,
)

from bench_json import write_bench_json

N = 5
SHARD_SIZE = 256


def _time(fn, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _spec(scale: float) -> PipelineSpec:
    return PipelineSpec(
        recommender=ComponentSpec("itemknn"),
        dataset=DatasetSpec(key="ml1m", scale=scale),
        evaluation=EvaluationSpec(n=N),
        seed=0,
    )


def _same_artifact(updated: Path, scratch: Path) -> bool:
    """Shard bytes and manifest (modulo revision) must match exactly."""
    left, right = load_manifest(updated), load_manifest(scratch)
    left.pop("revision"), right.pop("revision")
    if left != right:
        return False
    return all(
        (updated / entry[kind]).read_bytes() == (scratch / entry[kind]).read_bytes()
        for entry in left["shards"]
        for kind in ("items", "scores")
    )


def _rating_delta(split, events: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return extend_split(
        split,
        rng.integers(0, split.train.n_users, size=events),
        rng.integers(0, split.train.n_items, size=events),
        np.ones(events),
    )


def _coldstart_delta(split, arrivals: int):
    empty = np.empty(0, dtype=np.int64)
    return extend_split(
        split, empty, empty, np.empty(0), n_users=split.train.n_users + arrivals
    )


def _measure_path(
    label: str,
    scale: float,
    extension,
    pipeline_dir: Path,
    base_artifact: Path,
    workdir: Path,
    repeats: int,
):
    """Time update vs. scratch for one delta; returns (lines, metrics, report)."""

    def scratch():
        scratch_dir = workdir / f"{label}-scratch"
        shutil.rmtree(scratch_dir, ignore_errors=True)
        fresh = Pipeline(_spec(scale)).fit(extension.split)
        compile_artifact(fresh, scratch_dir, shard_size=SHARD_SIZE)
        return scratch_dir

    def update(target: Path):
        refitted, refit_report = refit_pipeline(Pipeline.load(pipeline_dir), extension.split)
        report = compile_artifact_update(
            refitted,
            target,
            changed_users=extension.changed_users,
            state_changed=refit_report.state_changed,
        )
        return report

    scratch_s, scratch_dir = _time(scratch, repeats=repeats)
    # The baseline-artifact copy is harness bookkeeping (each repeat must
    # start from the live artifact, not a half-updated one), so it stays
    # outside the timed region.
    update_s = float("inf")
    update_dir = workdir / f"{label}-update"
    report = None
    for _ in range(repeats):
        shutil.rmtree(update_dir, ignore_errors=True)
        shutil.copytree(base_artifact, update_dir)
        elapsed, report = _time(lambda: update(update_dir))
        update_s = min(update_s, elapsed)
    equal = _same_artifact(update_dir, scratch_dir)
    lines = [
        f"{label}: update {update_s:.3f}s vs scratch {scratch_s:.3f}s "
        f"({scratch_s / update_s:.2f}x) — {report.users_recomputed}/{report.n_users} "
        f"rows recomputed, {report.shards_skipped} shard(s) skipped, "
        f"{report.shards_rewritten} rewritten, {report.shards_appended} appended, "
        f"byte-identical={equal}",
    ]
    metrics = {
        f"{label}_update_s": update_s,
        f"{label}_scratch_s": scratch_s,
        f"{label}_rows_recomputed": report.users_recomputed,
        f"{label}_shards_skipped": report.shards_skipped,
    }
    return lines, metrics, scratch_s / update_s, equal


def run_benchmark(scale: float, repeats: int, delta_events: int, coldstart_users: int):
    """Execute the benchmark; returns (report lines, metrics, speedups, equal)."""
    lines = [
        "delta-update benchmark (compile --update vs from-scratch recompile)",
        f"scale={scale} repeats={repeats} delta_events={delta_events} "
        f"coldstart_users={coldstart_users} n={N} shard_size={SHARD_SIZE}",
        "",
    ]
    metrics: dict[str, float] = {}
    speedups: dict[str, float] = {}
    pipeline = Pipeline(_spec(scale)).fit()
    split = pipeline.split
    lines.append(
        f"baseline: {split.train.n_users} users, {split.train.n_items} items, "
        f"{split.train.n_ratings} train ratings"
    )

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        pipeline_dir = workdir / "pipeline"
        base_artifact = workdir / "artifact"
        pipeline.save(pipeline_dir)
        compile_s, _ = _time(
            lambda: compile_artifact(pipeline_dir, base_artifact, shard_size=SHARD_SIZE),
            repeats=repeats,
        )
        lines.append(f"baseline compile: {compile_s:.3f}s")
        metrics["baseline_compile_s"] = compile_s

        all_equal = True
        for label, extension in (
            ("rating", _rating_delta(split, delta_events)),
            ("coldstart", _coldstart_delta(split, coldstart_users)),
        ):
            path_lines, path_metrics, speedup, equal = _measure_path(
                label, scale, extension, pipeline_dir, base_artifact, workdir, repeats
            )
            lines.extend(path_lines)
            metrics.update(path_metrics)
            speedups[f"{label}_update_vs_scratch"] = speedup
            all_equal = all_equal and equal

    lines.append("")
    lines.append(
        "updated artifacts byte-identical to from-scratch compiles of the "
        f"extended dataset: {all_equal}"
    )
    return lines, metrics, speedups, all_equal


def main(argv=None) -> int:
    """CLI entry point; writes the report and returns an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--delta-events", type=int, default=1000,
        help="appended ratings in the rating-delta scenario",
    )
    parser.add_argument(
        "--coldstart-users", type=int, default=100,
        help="new (ratingless) users in the cold-start scenario",
    )
    parser.add_argument(
        "--min-coldstart-speedup", type=float, default=2.0,
        help="fail unless the cold-start update beats scratch by this factor "
             "(0 disables the gate; default 2.0)",
    )
    args = parser.parse_args(argv)

    lines, metrics, speedups, equal = run_benchmark(
        args.scale, args.repeats, args.delta_events, args.coldstart_users
    )
    report = "\n".join(lines)
    print(report)
    output = Path(__file__).resolve().parent / "output" / "bench_update.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report + "\n", encoding="utf-8")
    print(f"\nwritten to {output}")
    write_bench_json(
        "update",
        config={
            "scale": args.scale,
            "repeats": args.repeats,
            "delta_events": args.delta_events,
            "coldstart_users": args.coldstart_users,
            "n": N,
            "shard_size": SHARD_SIZE,
        },
        metrics=metrics,
        speedups=speedups,
        equal=equal,
    )
    if not equal:
        print("FAIL: an updated artifact diverged from the from-scratch compile")
        return 1
    gate = args.min_coldstart_speedup
    if gate > 0 and speedups["coldstart_update_vs_scratch"] < gate:
        print(
            f"FAIL: cold-start update only {speedups['coldstart_update_vs_scratch']:.2f}x "
            f"faster than scratch (required {gate:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
