"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
:mod:`repro.experiments` modules, at a laptop-friendly scale controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.35).  The rendered
table of each experiment is written to ``benchmarks/output/`` so the artefacts
that correspond to the paper's numbers can be inspected after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Scale factor applied to the surrogate datasets in every benchmark.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
#: OSLG sample size used by the GANC benchmarks (clipped to the user count).
BENCH_SAMPLE_SIZE = int(os.environ.get("REPRO_BENCH_SAMPLE_SIZE", "150"))

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Scale factor for the surrogate datasets."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_sample_size() -> int:
    """OSLG sample size for the GANC benchmarks."""
    return BENCH_SAMPLE_SIZE


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory the rendered experiment tables are written to."""
    _OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def save_table(output_dir):
    """Return a callable that persists a rendered experiment table."""

    def _save(name: str, text: str) -> Path:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and relatively heavy, so a single round
    gives a meaningful wall-clock figure without multiplying the runtime.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
