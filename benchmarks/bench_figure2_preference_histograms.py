"""Benchmark: regenerate Figure 2 (long-tail preference model histograms)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure2 import run_figure2


def test_figure2_preference_histograms(benchmark, bench_scale, save_table):
    results, table = run_once(benchmark, run_figure2, scale=bench_scale, n_bins=10, seed=0)
    save_table("figure2_preference_histograms", table.to_text())
    assert set(results) == {"ml100k", "ml1m", "ml10m", "mt200k", "netflix"}
    # Figure 2's claim: the activity measure is more right-skewed than the
    # generalized estimate on every dataset.
    for histograms in results.values():
        assert histograms["thetaA"].skewness >= histograms["thetaG"].skewness - 0.25
