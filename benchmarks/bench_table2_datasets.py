"""Benchmark: regenerate Table II (dataset statistics) for all five datasets."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table2 import run_table2


def test_table2_dataset_statistics(benchmark, bench_scale, save_table):
    table = run_once(benchmark, run_table2, scale=bench_scale, seed=0)
    save_table("table2_dataset_statistics", table.to_text())
    assert len(table.rows) == 5
    densities = dict(zip(table.column("Dataset"), table.column("d%")))
    # The dense/sparse ordering of the paper's Table II must hold.
    assert densities["ML-100K"] > densities["ML-10M"]
    assert densities["ML-1M"] > densities["MT-200K"]
