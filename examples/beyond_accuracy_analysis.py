"""Beyond-accuracy analysis: novelty, personalization and list diversity.

The paper evaluates accuracy, novelty (LTAccuracy, stratified recall) and
coverage (Coverage, Gini).  Related work adds a few more lenses — expected
popularity complement, average recommendation popularity, personalization and
intra-list dissimilarity — which this example computes for a panel of models,
including the user/item KNN baselines that ship with the library.

    python examples/beyond_accuracy_analysis.py
"""

from __future__ import annotations

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    GeneralizedPreference,
    ItemKNN,
    MostPopular,
    PureSVD,
    RandomRecommender,
    make_dataset,
    split_ratings,
)
from repro.metrics.beyond import (
    average_recommendation_popularity,
    expected_popularity_complement,
    intra_list_dissimilarity,
    personalization,
)
from repro.recommenders.user_knn import UserKNN
from repro.utils.tables import format_table


def main() -> None:
    dataset = make_dataset("ml100k", scale=0.5)
    split = split_ratings(dataset, train_ratio=0.5, seed=0)
    train = split.train
    popularity = train.item_popularity()

    models = {
        "Pop": MostPopular(),
        "Rand": RandomRecommender(seed=0),
        "ItemKNN": ItemKNN(k=30),
        "UserKNN": UserKNN(k=30),
        "PureSVD": PureSVD(n_factors=30),
    }
    collections: dict[str, dict] = {}
    for name, model in models.items():
        model.fit(train)
        collections[name] = model.recommend_all(5).as_dict()

    ganc = GANC(
        PureSVD(n_factors=30),
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=150, seed=0),
    )
    ganc.fit(train)
    collections[ganc.template] = ganc.recommend_all(5).as_dict()

    rows = []
    for name, recs in collections.items():
        rows.append(
            [
                name,
                expected_popularity_complement(recs, popularity),
                average_recommendation_popularity(recs, popularity),
                personalization(recs, max_pairs=2000),
                intra_list_dissimilarity(recs, train),
            ]
        )
    print(
        format_table(
            ["Algorithm", "EPC (novelty)", "Avg rec popularity", "Personalization", "Intra-list dissim."],
            rows,
            title="Beyond-accuracy profile of top-5 recommendations",
        )
    )
    print()
    print(
        "Reading: Pop minimizes novelty and personalization by construction; the GANC\n"
        "variant pushes both novelty (high EPC, low average popularity) and\n"
        "personalization up, which is the behaviour the paper's coverage objective\n"
        "is designed to produce."
    )


if __name__ == "__main__":
    main()
