"""Compare GANC against the published re-ranking baselines on one dataset.

Reproduces a single-dataset slice of the paper's Table IV: every re-ranker
post-processes the same trained RSVD model and is scored on the full Table III
metric suite, including the per-algorithm average rank.

    python examples/compare_rerankers.py [dataset-key]

where ``dataset-key`` is one of ml100k, ml1m, ml10m, mt200k, netflix
(default: ml100k).
"""

from __future__ import annotations

import sys

from repro.experiments.table4 import run_table4_for_dataset
from repro.utils.tables import format_table


def main() -> None:
    dataset_key = sys.argv[1] if len(sys.argv) > 1 else "ml100k"
    rows = run_table4_for_dataset(dataset_key, scale=0.4, sample_size=200, seed=0)

    table_rows = []
    for row in sorted(rows, key=lambda r: r.average_rank):
        table_rows.append(
            [
                row.algorithm,
                row.report.f_measure,
                row.report.stratified_recall,
                row.report.lt_accuracy,
                row.report.coverage,
                row.report.gini,
                round(row.average_rank, 2),
            ]
        )
    print(
        format_table(
            ["Algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "AvgRank"],
            table_rows,
            title=f"Re-ranking comparison on {rows[0].dataset} (sorted by average rank)",
        )
    )
    print()
    print(
        "Lower average rank is better.  The GANC variants trade a controlled amount\n"
        "of accuracy for large coverage gains, which is what pushes their average\n"
        "rank below the other re-rankers — the paper's Table IV conclusion."
    )


if __name__ == "__main__":
    main()
