"""Pipeline API quickstart: declare a run, execute it, persist it, serve it.

Runs in a few seconds on a laptop:

    python examples/pipeline_quickstart.py

Steps
-----
1. Declare GANC(PSVD100, θG, Dyn) on an ML-100K-shaped surrogate as a
   :class:`PipelineSpec` — no component is constructed by hand; every name
   resolves through the unified ``repro.registry``.
2. Round-trip the spec through JSON (what ``python -m repro run --config``
   consumes) and show both directions agree.
3. Fit the pipeline and evaluate the accuracy / novelty / coverage profile
   against the bare accuracy recommender declared by a second, minimal spec.
4. Save the fitted pipeline (spec JSON + fitted arrays) and reload it:
   the reloaded pipeline serves byte-identical top-5 sets without refitting.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.pipeline import ComponentSpec, DatasetSpec, Pipeline, PipelineSpec, ganc_spec
from repro.utils.tables import format_table


def main() -> None:
    # 1. Declare the run.  ganc_spec is shorthand for the nested PipelineSpec.
    spec = ganc_spec(
        dataset="ml100k",
        arec="psvd100",
        theta="thetaG",
        coverage="dyn",
        n=5,
        sample_size=150,
        scale=0.5,
        seed=0,
    )

    # 2. Specs are plain JSON; `python -m repro run --config <file>` executes them.
    document = spec.to_json()
    assert PipelineSpec.from_json(document) == spec
    print("Pipeline spec (JSON):")
    print(document)

    # 3. Fit and evaluate, next to the bare accuracy recommender.
    pipeline = Pipeline(spec).fit()
    ganc_run = pipeline.evaluate()

    # Serving shards the user axis across workers on request; execution is
    # mechanism, not modelling, so the top-N bytes never change with n_jobs.
    serial_top5 = pipeline.recommender.recommend_all(5)
    parallel_top5 = pipeline.recommender.recommend_all(5, n_jobs=2)
    assert np.array_equal(serial_top5.items, parallel_top5.items)

    bare_spec = PipelineSpec(
        recommender=ComponentSpec("psvd100"),
        dataset=DatasetSpec(key="ml100k", scale=0.5),
        seed=0,
    )
    bare_run = Pipeline(bare_spec).fit(pipeline.split).evaluate()

    rows = []
    for run in (bare_run, ganc_run):
        report = run.report
        rows.append(
            [run.algorithm, report.f_measure, report.lt_accuracy, report.coverage, report.gini]
        )
    print(
        format_table(
            ["Algorithm", "F-measure@5", "LTAccuracy@5", "Coverage@5", "Gini@5"],
            rows,
            title="Accuracy / novelty / coverage trade-off (top-5)",
        )
    )

    # 4. Train once, serve many: persist the fitted pipeline and reload it.
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "ml100k-ganc"
        pipeline.save(artifact)
        served = Pipeline.load(artifact)
        original_top5 = pipeline.recommend_all().items
        served_top5 = served.recommend_all().items
        assert np.array_equal(original_top5, served_top5)
        print(
            f"\nSaved to {artifact.name}/ (spec.json + split.npz + state.npz) and "
            "reloaded: top-5 sets are byte-identical, no model was refitted."
        )
        print(f"Top-5 for user 0, served from the artifact: {served.recommend(0)}")


if __name__ == "__main__":
    main()
