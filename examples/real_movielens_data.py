"""Running the pipeline on the real MovieLens files (when available).

The reproduction ships with statistically matched synthetic surrogates, but
every loader for the original files is implemented.  Point this script at a
MovieLens download to run the exact pipeline of the paper on real data:

    python examples/real_movielens_data.py /path/to/ml-100k/u.data
    python examples/real_movielens_data.py /path/to/ml-1m/ratings.dat

The file format is auto-detected from the extension / delimiter.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    Evaluator,
    GeneralizedPreference,
    PureSVD,
    split_ratings,
)
from repro.data.loaders import load_movielens_100k, load_movielens_dat
from repro.utils.tables import format_table


def load(path: Path):
    """Pick the right MovieLens loader from the file name."""
    if path.suffix == ".dat" or "::" in path.read_text(encoding="utf-8", errors="replace")[:200]:
        return load_movielens_dat(path, name=path.parent.name or "MovieLens")
    return load_movielens_100k(path, name=path.parent.name or "ML-100K")


def main() -> None:
    if len(sys.argv) < 2:
        print(__doc__)
        print("No data file supplied - nothing to do.")
        return
    path = Path(sys.argv[1])
    if not path.exists():
        raise SystemExit(f"rating file not found: {path}")

    dataset = load(path)
    print(f"Loaded {dataset}")
    split = split_ratings(dataset, train_ratio=0.5, seed=0)
    evaluator = Evaluator(split, n=5)

    model = GANC(
        PureSVD(n_factors=100),
        GeneralizedPreference(),
        DynamicCoverage(),
        config=GANCConfig(sample_size=500, seed=0),
    )
    model.fit(split.train)
    ganc_run = evaluator.evaluate_recommendations(model.recommend_all(5), algorithm=model.template)
    base_run = evaluator.evaluate_recommender(PureSVD(n_factors=100), algorithm="PSVD100")

    rows = [
        [run.algorithm, run.report.f_measure, run.report.lt_accuracy, run.report.coverage, run.report.gini]
        for run in (base_run, ganc_run)
    ]
    print(
        format_table(
            ["Algorithm", "F-measure@5", "LTAccuracy@5", "Coverage@5", "Gini@5"],
            rows,
            title=f"Top-5 results on {dataset.name}",
        )
    )


if __name__ == "__main__":
    main()
