"""Extending GANC with a custom long-tail preference model.

GANC is generic in all three of its components.  This example shows the
extension point the paper leaves open for future work — user novelty
preferences driven by other signals — by implementing a custom
:class:`~repro.preferences.base.PreferenceModel` and plugging it into the
framework next to the built-in estimators.

    python examples/custom_preference_model.py

The custom model blends the rating-variance of a user's history with their
long-tail fraction: users who both rate diversely *and* already explore the
tail get the highest novelty budget.
"""

from __future__ import annotations

import numpy as np

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    Evaluator,
    GeneralizedPreference,
    PureSVD,
    TfidfPreference,
    make_dataset,
    split_ratings,
)
from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.utils.normalization import min_max_normalize
from repro.utils.tables import format_table


class VarianceBlendPreference(PreferenceModel):
    """Blend of rating variance and long-tail fraction.

    The intuition: a user whose ratings are spread across the scale is
    discriminating rather than rubber-stamping blockbusters, and a user who
    already rates tail items has demonstrated appetite for discovery.  The
    blend weight ``alpha`` controls how much the variance signal contributes.
    """

    name = "variance_blend"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        stats = self._popularity(train, popularity)
        n_users = train.n_users

        counts = np.bincount(train.user_indices, minlength=n_users).astype(float)
        sums = np.bincount(train.user_indices, weights=train.ratings, minlength=n_users)
        sq_sums = np.bincount(
            train.user_indices, weights=train.ratings**2, minlength=n_users
        )
        rated = counts > 0
        means = np.zeros(n_users)
        means[rated] = sums[rated] / counts[rated]
        variances = np.zeros(n_users)
        variances[rated] = sq_sums[rated] / counts[rated] - means[rated] ** 2

        tail_hits = np.bincount(
            train.user_indices,
            weights=stats.long_tail_mask[train.item_indices].astype(float),
            minlength=n_users,
        )
        tail_fraction = np.zeros(n_users)
        tail_fraction[rated] = tail_hits[rated] / counts[rated]

        theta = self.alpha * min_max_normalize(variances) + (1 - self.alpha) * tail_fraction
        return PreferenceResult(theta=np.clip(theta, 0.0, 1.0), model_name=self.name)


def main() -> None:
    dataset = make_dataset("ml100k", scale=0.5)
    split = split_ratings(dataset, train_ratio=0.5, seed=0)
    evaluator = Evaluator(split, n=5)

    arec = PureSVD(n_factors=30).fit(split.train)
    preference_models = {
        "thetaT (built-in)": TfidfPreference(),
        "thetaG (built-in)": GeneralizedPreference(),
        "variance blend (custom)": VarianceBlendPreference(alpha=0.6),
    }

    rows = []
    for label, preference in preference_models.items():
        model = GANC(
            arec,
            preference,
            DynamicCoverage(),
            config=GANCConfig(sample_size=150, seed=0),
        )
        model.fit(split.train)
        run = evaluator.evaluate_recommendations(model.recommend_all(5), algorithm=label)
        rows.append(
            [
                label,
                run.report.f_measure,
                run.report.lt_accuracy,
                run.report.coverage,
                float(model.theta.mean()),
            ]
        )

    print(
        format_table(
            ["Preference model", "F-measure@5", "LTAccuracy@5", "Coverage@5", "mean theta"],
            rows,
            title="GANC(PureSVD, theta, Dyn) with built-in and custom preference models",
        )
    )
    print()
    print(
        "Any object implementing PreferenceModel.estimate() can drive the framework;\n"
        "the custom estimator needs no changes to GANC itself."
    )


if __name__ == "__main__":
    main()
