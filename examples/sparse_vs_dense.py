"""Sparse versus dense settings: choosing the accuracy recommender (Section V-B).

The paper's key practical message is that re-ranking frameworks inherit the
weaknesses of their base model: a rating-prediction model (RSVD) works in
dense settings but falls apart when the data is sparse, while GANC — being
generic — simply plugs in a more suitable accuracy recommender (Pop on the
very sparse MovieTweetings data, PureSVD elsewhere).

    python examples/sparse_vs_dense.py

The script evaluates GANC with two different accuracy recommenders on a dense
(ML-1M-like) and a sparse (MT-200K-like) surrogate and prints the comparison.
"""

from __future__ import annotations

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    Evaluator,
    GeneralizedPreference,
    MostPopular,
    PureSVD,
    RSVD,
    make_dataset,
    split_ratings,
)
from repro.utils.tables import format_table


def evaluate_on(profile: str, train_ratio: float, scale: float = 0.4) -> list[list[object]]:
    """Evaluate GANC with three accuracy recommenders on one dataset profile."""
    dataset = make_dataset(profile, scale=scale)
    split = split_ratings(dataset, train_ratio=train_ratio, seed=0)
    evaluator = Evaluator(split, n=5)
    preference = GeneralizedPreference().estimate(split.train)

    accuracy_recommenders = {
        "RSVD": RSVD(n_factors=20, n_epochs=30, learning_rate=0.02, seed=0),
        "PureSVD": PureSVD(n_factors=max(10, int(30 * scale))),
        "Pop": MostPopular(),
    }
    rows: list[list[object]] = []
    for name, arec in accuracy_recommenders.items():
        model = GANC(
            arec,
            preference,
            DynamicCoverage(),
            config=GANCConfig(sample_size=150, seed=0),
        )
        model.fit(split.train)
        run = evaluator.evaluate_recommendations(
            model.recommend_all(5), algorithm=f"GANC({name}, thetaG, Dyn)"
        )
        rows.append(
            [
                dataset.name,
                run.algorithm,
                run.report.f_measure,
                run.report.stratified_recall,
                run.report.coverage,
            ]
        )
    return rows


def main() -> None:
    rows: list[list[object]] = []
    # Dense setting: ML-1M-like surrogate, kappa = 0.5.
    rows.extend(evaluate_on("ml1m", train_ratio=0.5))
    # Sparse setting: MT-200K-like surrogate, kappa = 0.8, many infrequent users.
    rows.extend(evaluate_on("mt200k", train_ratio=0.8))

    print(
        format_table(
            ["Dataset", "Algorithm", "F-measure@5", "StratRecall@5", "Coverage@5"],
            rows,
            title="GANC with different accuracy recommenders, dense vs sparse",
        )
    )
    print()
    print(
        "Reading: in the dense setting the latent-factor accuracy recommenders are\n"
        "competitive, while in the sparse setting the non-personalized Pop model\n"
        "becomes the strongest accuracy component — exactly the paper's argument for\n"
        "a generic framework that lets you swap the base recommender per dataset."
    )


if __name__ == "__main__":
    main()
