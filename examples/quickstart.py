"""Quickstart: build GANC on a MovieLens-like dataset and inspect the trade-off.

Runs in a few seconds on a laptop:

    python examples/quickstart.py

Steps
-----
1. Generate a popularity-biased synthetic dataset shaped like ML-100K
   (swap in ``load_movielens_100k("path/to/u.data")`` if you have the real file).
2. Split it per user with the paper's κ = 0.5 protocol.
3. Estimate every user's long-tail novelty preference θG from the train data.
4. Assemble GANC(PureSVD, θG, Dyn) and produce top-5 sets for every user.
5. Compare its accuracy / novelty / coverage profile against the bare
   accuracy recommender and the Pop baseline.
"""

from __future__ import annotations

from repro import (
    GANC,
    GANCConfig,
    DynamicCoverage,
    Evaluator,
    GeneralizedPreference,
    MostPopular,
    PureSVD,
    make_dataset,
    split_ratings,
)
from repro.utils.tables import format_table


def main() -> None:
    # 1. Data: an ML-100K-shaped synthetic dataset (use the loaders for real files).
    dataset = make_dataset("ml100k", scale=0.5)
    print(f"Dataset: {dataset}")

    # 2. Per-user ratio split (kappa = 0.5, as in the paper's MovieLens setup).
    split = split_ratings(dataset, train_ratio=0.5, seed=0)
    evaluator = Evaluator(split, n=5)

    # 3. + 4. GANC(PureSVD, thetaG, Dyn) with OSLG optimization.
    preference = GeneralizedPreference()
    ganc = GANC(
        PureSVD(n_factors=30),
        preference,
        DynamicCoverage(),
        config=GANCConfig(sample_size=150, seed=0),
    )
    ganc.fit(split.train)
    ganc_run = evaluator.evaluate_recommendations(ganc.recommend_all(5), algorithm=ganc.template)

    # 5. Reference points: the bare accuracy recommender and Pop.
    psvd_run = evaluator.evaluate_recommender(PureSVD(n_factors=30), algorithm="PureSVD")
    pop_run = evaluator.evaluate_recommender(MostPopular(), algorithm="Pop")

    rows = []
    for run in (pop_run, psvd_run, ganc_run):
        report = run.report
        rows.append(
            [
                run.algorithm,
                report.f_measure,
                report.lt_accuracy,
                report.coverage,
                report.gini,
            ]
        )
    print()
    print(
        format_table(
            ["Algorithm", "F-measure@5", "LTAccuracy@5", "Coverage@5", "Gini@5"],
            rows,
            title="Accuracy / novelty / coverage trade-off (top-5)",
        )
    )
    print()
    theta = ganc.theta
    print(
        "Estimated long-tail preference thetaG: "
        f"mean={theta.mean():.3f}, std={theta.std():.3f}, "
        f"min={theta.min():.3f}, max={theta.max():.3f}"
    )
    print(
        "Reading: GANC keeps accuracy in the same order of magnitude as its "
        "accuracy recommender while covering a much larger share of the catalogue."
    )


if __name__ == "__main__":
    main()
