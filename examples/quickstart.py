"""Quickstart: run GANC on a MovieLens-like dataset and inspect the trade-off.

Runs in a few seconds on a laptop:

    python examples/quickstart.py

Steps
-----
1. Generate a popularity-biased synthetic dataset shaped like ML-100K
   (swap in ``load_movielens_100k("path/to/u.data")`` if you have the real file).
2. Split it per user with the paper's κ = 0.5 protocol.
3. Declare GANC(PureSVD, θG, Dyn) as a :class:`PipelineSpec` — components are
   resolved by registry name, never wired by hand — and fit it on the split.
4. Compare its accuracy / novelty / coverage profile against the bare
   accuracy recommender and the Pop baseline.

See ``examples/pipeline_quickstart.py`` for the JSON round-trip and the
save/load (train-once/serve-many) workflow of the same API.
"""

from __future__ import annotations

from repro import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    Evaluator,
    GANCSpec,
    Pipeline,
    PipelineSpec,
    make_dataset,
    make_recommender,
    split_ratings,
)
from repro.utils.tables import format_table


def main() -> None:
    # 1. Data: an ML-100K-shaped synthetic dataset (use the loaders for real files).
    dataset = make_dataset("ml100k", scale=0.5)
    print(f"Dataset: {dataset}")

    # 2. Per-user ratio split (kappa = 0.5, as in the paper's MovieLens setup).
    split = split_ratings(dataset, train_ratio=0.5, seed=0)
    evaluator = Evaluator(split, n=5)

    # 3. GANC(PureSVD, thetaG, Dyn) with OSLG optimization, declared as a spec.
    spec = PipelineSpec(
        dataset=DatasetSpec(key="ml100k", scale=0.5),
        recommender=ComponentSpec("psvd", params={"n_factors": 30}),
        preference=ComponentSpec("thetaG"),
        coverage=ComponentSpec("dyn"),
        ganc=GANCSpec(sample_size=150),
        evaluation=EvaluationSpec(n=5),
        seed=0,
    )
    pipeline = Pipeline(spec).fit(split)
    ganc_run = evaluator.evaluate_recommendations(
        pipeline.recommend_all(), algorithm=pipeline.algorithm
    )

    # 4. Reference points: the bare accuracy recommender and Pop.
    psvd_run = evaluator.evaluate_recommender(
        make_recommender("psvd", n_factors=30), algorithm="PureSVD"
    )
    pop_run = evaluator.evaluate_recommender(make_recommender("pop"), algorithm="Pop")

    rows = []
    for run in (pop_run, psvd_run, ganc_run):
        report = run.report
        rows.append(
            [
                run.algorithm,
                report.f_measure,
                report.lt_accuracy,
                report.coverage,
                report.gini,
            ]
        )
    print()
    print(
        format_table(
            ["Algorithm", "F-measure@5", "LTAccuracy@5", "Coverage@5", "Gini@5"],
            rows,
            title="Accuracy / novelty / coverage trade-off (top-5)",
        )
    )
    print()
    theta = pipeline.model.theta
    print(
        "Estimated long-tail preference thetaG: "
        f"mean={theta.mean():.3f}, std={theta.std():.3f}, "
        f"min={theta.min():.3f}, max={theta.max():.3f}"
    )
    print(
        "Reading: GANC keeps accuracy in the same order of magnitude as its "
        "accuracy recommender while covering a much larger share of the catalogue."
    )


if __name__ == "__main__":
    main()
