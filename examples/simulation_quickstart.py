"""Simulation quickstart: online GANC feedback under a cold-start wave.

Runs in a few seconds on a laptop:

    python examples/simulation_quickstart.py

Fits a small GANC pipeline with *dynamic* coverage, replays a seeded
``coldstart`` scenario against it with position-biased feedback in the
loop, and prints how coverage, novelty and accuracy drift window by
window.  ``verify=True`` asserts the online invariant at every window
boundary: the delta-updated coverage state must equal a from-scratch
recompute, bitwise.  The same run is reproducible from the CLI::

    python -m repro simulate --source pipeline --pipeline <saved dir> \\
        --scenario coldstart --events 400 --window 100 --verify
"""

from __future__ import annotations

from repro.pipeline import Pipeline, ganc_spec
from repro.simulate import PipelineSource, SimulationConfig, run_simulation
from repro.utils.tables import format_table


def main() -> None:
    # 1. A GANC(Pop, θG, Dyn) pipeline on a small ML-100K-shaped surrogate.
    #    Dynamic coverage is the point: its score c(i) = 1/sqrt(f_i + 1)
    #    changes as consumed items accumulate, so each window of traffic
    #    sees a different optimizer than the last.
    spec = ganc_spec(
        dataset="ml100k",
        arec="pop",
        theta="thetaG",
        coverage="dyn",
        n=10,
        sample_size=100,
        scale=0.3,
        seed=0,
    )
    pipeline = Pipeline(spec).fit()
    source = PipelineSource(pipeline)
    print(f"source online (feedback reaches the optimizer): {source.online}")

    # 2. Replay a cold-start wave: a burst of first-time users arriving
    #    mid-run, the regime where static top-N sets go stale fastest.
    config = SimulationConfig(
        scenario="coldstart",
        n_events=400,
        n=10,
        feedback="position-biased",
        window=100,
        seed=7,
        verify=True,
    )
    result = run_simulation(source, config)

    # 3. Windowed drift.  Coverage climbs as feedback spreads consumption
    #    across the item space; precision/EPC come from the pipeline's own
    #    held-out split.
    rows = [
        [
            window["index"],
            window["events"],
            window["consumed"],
            f"{window['window_coverage']:.4f}",
            f"{window['cumulative_coverage']:.4f}",
            f"{window['cumulative_gini']:.4f}",
            f"{window['precision']:.3f}",
            f"{window['epc']:.3f}",
        ]
        for window in result.report["windows"]
    ]
    print()
    print(
        format_table(
            ["window", "events", "consumed", "w-cov", "cum-cov", "gini", "prec", "epc"],
            rows,
        )
    )

    totals = result.report["totals"]
    print()
    print(
        f"{totals['events']} events ({totals['cold_arrivals']} cold arrivals), "
        f"{totals['consumed']} items consumed, "
        f"cumulative coverage {totals['cumulative_coverage']:.4f}"
    )
    print("online invariant verified at every window boundary")


if __name__ == "__main__":
    main()
