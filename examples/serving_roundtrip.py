"""Compile → serve → query round trip against a live HTTP server.

Loads a saved pipeline, compiles a top-N artifact, stands the serving HTTP
server up on an ephemeral port, queries *every* user over HTTP, and writes
the answers as the same ``user,rank,item`` CSV ``repro run
--save-recommendations`` produces — so the two files can be byte-compared.
CI uses exactly that comparison as its serving smoke test::

    PYTHONPATH=src python -m repro run --config examples/specs/ml100k_tiny.json \\
        --save-pipeline /tmp/pipe --save-recommendations /tmp/run.csv
    PYTHONPATH=src python examples/serving_roundtrip.py \\
        --pipeline /tmp/pipe --output /tmp/serve.csv
    cmp /tmp/run.csv /tmp/serve.csv
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.data.io import save_recommendations_csv
from repro.serving import build_server, compile_artifact, start_in_thread


def main(argv=None) -> int:
    """Run the round trip; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipeline", required=True, help="saved pipeline directory (repro run --save-pipeline)"
    )
    parser.add_argument(
        "--artifact", default=None,
        help="artifact directory (default: compile into a temporary directory)",
    )
    parser.add_argument(
        "--output", required=True, help="write the served top-N sets to this CSV file"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(args.artifact) if args.artifact else Path(tmp) / "artifact"
        if not (artifact_dir / "manifest.json").exists():
            compile_artifact(args.pipeline, artifact_dir)
            print(f"compiled artifact to {artifact_dir}")

        server = build_server(artifact_dir, pipeline=args.pipeline, port=0)
        thread = start_in_thread(server)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"serving on {base}")

        try:
            with urllib.request.urlopen(f"{base}/healthz") as response:
                health = json.loads(response.read().decode("utf-8"))
            assert health["status"] == "ok", health

            recommendations = {}
            for user in range(health["n_users_total"]):
                with urllib.request.urlopen(f"{base}/recommend?user={user}") as response:
                    payload = json.loads(response.read().decode("utf-8"))
                recommendations[user] = payload["items"]
            path = save_recommendations_csv(recommendations, args.output)
            print(f"queried {len(recommendations)} users over HTTP -> {path}")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return 0


if __name__ == "__main__":
    sys.exit(main())
