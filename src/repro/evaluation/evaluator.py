"""End-to-end evaluation pipeline: fit models, generate top-N sets, score them.

The :class:`Evaluator` binds a train/test split together with the popularity
statistics and the relevance threshold, so every algorithm evaluated against
it is measured under identical conditions — which is exactly how the paper's
tables are produced.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.data.split import TrainTestSplit
from repro.evaluation.protocols import AllUnratedItemsProtocol, RankingProtocol
from repro.exceptions import EvaluationError
from repro.metrics.report import MetricReport, evaluate_top_n
from repro.parallel.executor import Executor, resolve_executor
from repro.recommenders.base import FittedTopN, Recommender

RecommendationsLike = Mapping[int, np.ndarray] | FittedTopN


@dataclass
class EvaluationRun:
    """One evaluated algorithm: its recommendations plus the metric report."""

    algorithm: str
    recommendations: dict[int, np.ndarray]
    report: MetricReport


@dataclass
class Evaluator:
    """Shared evaluation context for a dataset split.

    Attributes
    ----------
    split:
        The train/test split every algorithm is evaluated on.
    n:
        Top-N size (5 for most of the paper's tables).
    relevance_threshold:
        Minimum test rating for an item to count as relevant (4.0).
    beta:
        Stratified-recall exponent (0.5).
    protocol:
        The ranking protocol used when evaluating raw recommenders.
    block_size:
        Users scored per matrix block when generating top-N sets (``None``
        uses :data:`repro.utils.topn.DEFAULT_BLOCK_SIZE`); whole-table runs
        therefore go through the batched ``predict_matrix`` path while peak
        memory stays bounded.
    n_jobs, backend, executor:
        Worker fan-out of the score blocks when generating top-N sets: an
        explicit :class:`~repro.parallel.Executor` wins, otherwise
        ``n_jobs`` workers of ``backend`` (default ``thread``) are used, and
        ``n_jobs=1`` stays serial.  Metric outputs are byte-identical for
        every setting.
    """

    split: TrainTestSplit
    n: int = 5
    relevance_threshold: float = 4.0
    beta: float = 0.5
    protocol: RankingProtocol = field(default_factory=AllUnratedItemsProtocol)
    block_size: int | None = None
    n_jobs: int = 1
    backend: str = "thread"
    executor: Executor | None = field(default=None, repr=False)
    _popularity: PopularityStats | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise EvaluationError(f"n must be >= 1, got {self.n}")
        if self.block_size is not None and self.block_size < 1:
            raise EvaluationError(f"block_size must be >= 1, got {self.block_size}")
        self._resolve_executor()  # validates n_jobs/backend eagerly

    def _resolve_executor(self) -> Executor:
        return resolve_executor(self.executor, self.n_jobs, self.backend)

    @property
    def train(self) -> RatingDataset:
        """Train partition of the split."""
        return self.split.train

    @property
    def test(self) -> RatingDataset:
        """Test partition of the split."""
        return self.split.test

    @property
    def popularity(self) -> PopularityStats:
        """Cached popularity statistics of the train set."""
        if self._popularity is None:
            self._popularity = PopularityStats.from_dataset(self.train)
        return self._popularity

    # ------------------------------------------------------------------ #
    def evaluate_recommendations(
        self,
        recommendations: RecommendationsLike,
        *,
        algorithm: str,
        include_ndcg: bool = False,
    ) -> EvaluationRun:
        """Score an explicit top-N collection."""
        recs = (
            recommendations.as_dict()
            if isinstance(recommendations, FittedTopN)
            else {int(u): np.asarray(v, dtype=np.int64) for u, v in recommendations.items()}
        )
        report = evaluate_top_n(
            recs,
            self.train,
            self.test,
            self.n,
            algorithm=algorithm,
            relevance_threshold=self.relevance_threshold,
            beta=self.beta,
            popularity=self.popularity,
            include_ndcg=include_ndcg,
        )
        return EvaluationRun(algorithm=algorithm, recommendations=recs, report=report)

    def evaluate_recommender(
        self,
        recommender: Recommender,
        *,
        algorithm: str | None = None,
        fit: bool = True,
        include_ndcg: bool = False,
    ) -> EvaluationRun:
        """Fit (optionally) and evaluate a plain accuracy recommender."""
        if fit or not recommender.is_fitted:
            recommender.fit(self.train)
        recs = self.protocol.top_n(
            recommender, self.train, self.test, self.n,
            block_size=self.block_size, executor=self._resolve_executor(),
        )
        return self.evaluate_recommendations(
            recs,
            algorithm=algorithm or type(recommender).__name__,
            include_ndcg=include_ndcg,
        )

    def evaluate_pipeline(
        self,
        build_recommendations: Callable[[TrainTestSplit, int], RecommendationsLike],
        *,
        algorithm: str,
        include_ndcg: bool = False,
    ) -> EvaluationRun:
        """Evaluate any callable that maps (split, n) to recommendations.

        Used for re-ranking frameworks (GANC, RBT, 5D, PRA) whose output is a
        full top-N collection rather than a scoring model.  Builders that
        accept an ``executor`` keyword receive this evaluator's executor, so
        framework runs inherit the evaluation fan-out without new plumbing.
        """
        kwargs = {}
        try:
            parameters = inspect.signature(build_recommendations).parameters
        except (TypeError, ValueError):  # builtins / odd callables
            parameters = {}
        if "executor" in parameters:
            kwargs["executor"] = self._resolve_executor()
        recs = build_recommendations(self.split, self.n, **kwargs)
        return self.evaluate_recommendations(
            recs, algorithm=algorithm, include_ndcg=include_ndcg
        )
