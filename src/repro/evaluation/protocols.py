"""Test ranking protocols (Appendix C of the paper).

The protocol determines which items are ranked for each user at test time:

* **All unrated items** — rank every item not in the user's train set.  This
  is the protocol the paper uses for its main results, because it mirrors the
  real task of picking N items out of the whole catalogue and is far less
  popularity-biased.
* **Rated test-items** — rank only the user's observed test items.  This
  protocol strongly rewards popularity-biased algorithms; the appendix study
  (Figures 7-8) quantifies the difference.

The all-unrated protocol runs on the batched scoring path (whole-table
evaluations score users through ``predict_matrix`` blocks); the rated-test
protocol stays candidate-restricted per user, since each user ranks only a
handful of their own test items.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.parallel.executor import Executor
from repro.recommenders.base import Recommender
from repro.utils.topn import top_n_indices


class RankingProtocol(ABC):
    """Produces the per-user top-N sets a metric suite should evaluate."""

    #: short name used in reports
    name: str = "protocol"

    @abstractmethod
    def top_n(
        self,
        recommender: Recommender,
        train: RatingDataset,
        test: RatingDataset,
        n: int,
        *,
        block_size: int | None = None,
        executor: Executor | None = None,
    ) -> dict[int, np.ndarray]:
        """Return ``{user: top-N item array}`` under this protocol.

        ``block_size`` bounds the number of users scored per matrix block;
        ``executor`` optionally fans the blocks out to workers.
        """


class AllUnratedItemsProtocol(RankingProtocol):
    """Rank all items outside the user's train set (the paper's main protocol)."""

    name = "all_unrated_items"

    def top_n(
        self,
        recommender: Recommender,
        train: RatingDataset,
        test: RatingDataset,
        n: int,
        *,
        block_size: int | None = None,
        executor: Executor | None = None,
    ) -> dict[int, np.ndarray]:
        """Delegate to the recommender's own blocked train-excluding top-N."""
        del test  # the candidate pool ignores test information by design
        result = recommender.recommend_all(n, block_size=block_size, executor=executor)
        return result.as_dict()


class RatedTestItemsProtocol(RankingProtocol):
    """Rank only each user's observed test items (the biased protocol)."""

    name = "rated_test_items"

    def top_n(
        self,
        recommender: Recommender,
        train: RatingDataset,
        test: RatingDataset,
        n: int,
        *,
        block_size: int | None = None,
        executor: Executor | None = None,
    ) -> dict[int, np.ndarray]:
        """Score each user's test items and keep the best ``n`` of them.

        Each user ranks only their own (small) test-candidate set, so scoring
        stays candidate-restricted per user — computing full catalogue rows
        here would be asymptotically wasteful for neighbourhood models.
        ``block_size``/``executor`` are accepted for interface symmetry but
        unused.
        """
        del train, block_size, executor
        out: dict[int, np.ndarray] = {}
        for user in range(test.n_users):
            candidates = test.user_items(user)
            if candidates.size == 0:
                out[user] = np.empty(0, dtype=np.int64)
                continue
            scores = recommender.predict_scores(user, candidates)
            top = top_n_indices(scores, n)
            out[user] = candidates[top].astype(np.int64)
        return out


def make_protocol(name: str) -> RankingProtocol:
    """Instantiate a ranking protocol by name."""
    key = name.strip().lower()
    if key in ("all_unrated_items", "all-unrated", "all"):
        return AllUnratedItemsProtocol()
    if key in ("rated_test_items", "rated-test", "rated"):
        return RatedTestItemsProtocol()
    raise ConfigurationError(
        f"unknown ranking protocol {name!r}; use 'all_unrated_items' or 'rated_test_items'"
    )
