"""Evaluation protocols and the end-to-end evaluation pipeline."""

from repro.evaluation.protocols import (
    RankingProtocol,
    AllUnratedItemsProtocol,
    RatedTestItemsProtocol,
    make_protocol,
)
from repro.evaluation.evaluator import Evaluator, EvaluationRun

__all__ = [
    "RankingProtocol",
    "AllUnratedItemsProtocol",
    "RatedTestItemsProtocol",
    "make_protocol",
    "Evaluator",
    "EvaluationRun",
]
