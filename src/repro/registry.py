"""One component registry for every pluggable piece of the GANC framework.

The paper frames GANC as a *generic* framework: any accuracy recommender,
preference model and coverage strategy plug together.  This module is the
single mechanism behind that composability.  Components are registered under a
``(kind, name)`` pair with the :func:`register` decorator::

    @register("recommender", "pop")
    class MostPopular(Recommender): ...

and instantiated by name with :func:`create`::

    model = create("recommender", "psvd100", scale_hint=0.3)

Four kinds exist: ``recommender`` (accuracy models), ``preference`` (long-tail
novelty estimators), ``coverage`` (coverage recommenders) and ``reranker``
(re-ranking baselines).  The built-in components of each kind register
themselves in the per-kind registry modules, which are imported lazily on
first lookup so that ``import repro.registry`` stays cycle-free.

Construction is **strict**: keyword arguments are validated against the
component's ``__init__`` signature and unknown names raise
:class:`~repro.exceptions.ConfigurationError` instead of being silently
swallowed (the failure mode of the old per-kind ``lambda **kw`` factories,
which hid typos like ``n_factor=``).  Two keyword arguments are reserved:

``seed``
    Threaded to components that accept it and dropped for the ones that do
    not (``seed`` is execution context, not a hyper-parameter, so passing it
    uniformly from a pipeline must not fail on seedless models like Pop).
``scale_hint``
    Consumed by the registry itself: entries may declare *scaled parameters*
    (the SVD-family latent ranks) whose default values are multiplied by the
    clamped hint so that the factors-to-items ratio on a scaled-down
    surrogate dataset stays comparable to the paper's full-size datasets.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.exceptions import ConfigurationError

#: Component kinds the registry knows about.
KINDS = ("recommender", "preference", "coverage", "reranker")

#: Modules that register the built-in components of each kind.  Imported
#: lazily by :func:`_ensure_loaded` the first time a kind is looked up.
_KIND_MODULES: Mapping[str, str] = {
    "recommender": "repro.recommenders.registry",
    "preference": "repro.preferences.registry",
    "coverage": "repro.coverage.registry",
    "reranker": "repro.rerankers.registry",
}

#: Bounds applied to ``scale_hint`` before it multiplies a scaled parameter.
_MIN_RANK_SCALE = 0.05
_MAX_RANK_SCALE = 1.0


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component: its class plus name-specific defaults.

    Attributes
    ----------
    kind, name:
        The registry key.  ``name`` is stored lower-cased.
    cls:
        The component class instantiated by :func:`create`.
    defaults:
        Keyword defaults baked into this *name* (e.g. ``psvd10`` is
        :class:`PureSVD` with ``n_factors=10``).  Explicit user kwargs win.
    scaled_params:
        ``{parameter: minimum}`` — parameters whose **default** value is
        multiplied by the clamped ``scale_hint`` and floored at ``minimum``.
        Explicitly passed values are never rescaled.
    """

    kind: str
    name: str
    cls: type
    defaults: Mapping[str, Any] = field(default_factory=dict)
    scaled_params: Mapping[str, int] = field(default_factory=dict)


_ENTRIES: dict[tuple[str, str], ComponentEntry] = {}
_RESOLVERS: dict[str, list[Callable[[str], ComponentEntry | None]]] = {}
_LOADED: set[str] = set()


def _check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; available kinds: {sorted(KINDS)}"
        )


def _ensure_loaded(kind: str) -> None:
    if kind in _LOADED:
        return
    # Mark loaded only after a successful import: a broken registration module
    # must keep raising its real error instead of leaving an empty registry.
    # (Re-entrant calls during that import hit sys.modules, not a re-exec.)
    importlib.import_module(_KIND_MODULES[kind])
    _LOADED.add(kind)


def register(
    kind: str,
    name: str,
    *,
    defaults: Mapping[str, Any] | None = None,
    scaled_params: Mapping[str, int] | None = None,
    aliases: tuple[str, ...] = (),
) -> Callable[[type], type]:
    """Class decorator registering a component under ``(kind, name)``.

    ``aliases`` registers the same class/defaults under additional names.
    Registering a name twice is a :class:`ConfigurationError` — every name
    has exactly one source of truth.
    """
    _check_kind(kind)

    def decorator(cls: type) -> type:
        """Register ``cls`` under every alias and return it unchanged."""
        for alias in (name, *aliases):
            key = (kind, alias.strip().lower())
            if key in _ENTRIES:
                raise ConfigurationError(
                    f"{kind} name {alias!r} is already registered "
                    f"(to {_ENTRIES[key].cls.__name__})"
                )
            _ENTRIES[key] = ComponentEntry(
                kind=kind,
                name=key[1],
                cls=cls,
                defaults=dict(defaults or {}),
                scaled_params=dict(scaled_params or {}),
            )
        return cls

    return decorator


def register_resolver(kind: str, resolver: Callable[[str], ComponentEntry | None]) -> None:
    """Add a fallback resolver for dynamic names of one kind.

    Resolvers run (in registration order) when a name has no static entry and
    may return a synthesized :class:`ComponentEntry` — e.g. ``psvd37`` maps to
    :class:`PureSVD` with ``n_factors=37`` without a dedicated entry.
    """
    _check_kind(kind)
    _RESOLVERS.setdefault(kind, []).append(resolver)


def available(kind: str) -> list[str]:
    """Sorted names registered for ``kind`` (static entries only)."""
    _check_kind(kind)
    _ensure_loaded(kind)
    return sorted(entry_name for entry_kind, entry_name in _ENTRIES if entry_kind == kind)


def component_entry(kind: str, name: str) -> ComponentEntry:
    """Look up the entry of ``(kind, name)``, consulting dynamic resolvers.

    Names are case-insensitive and the paper's ``θ`` spelling is accepted
    everywhere (``θG`` → ``thetag``), so CLI arguments, spec files and direct
    ``create`` calls all resolve identically.
    """
    _check_kind(kind)
    _ensure_loaded(kind)
    key = name.strip().lower().replace("θ", "theta")
    entry = _ENTRIES.get((kind, key))
    if entry is not None:
        return entry
    for resolver in _RESOLVERS.get(kind, ()):
        entry = resolver(key)
        if entry is not None:
            return entry
    raise ConfigurationError(
        f"unknown {kind} {name!r}; available: {available(kind)}"
    )


def _constructor_params(cls: type) -> tuple[frozenset[str], bool]:
    """Names accepted by ``cls.__init__`` and whether it takes ``**kwargs``."""
    if cls.__init__ is object.__init__:  # no explicit constructor anywhere
        return frozenset(), False
    signature = inspect.signature(cls.__init__)
    names = []
    has_var_keyword = False
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            has_var_keyword = True
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.append(parameter.name)
    return frozenset(names), has_var_keyword


def _validated_kwargs(entry: ComponentEntry, kwargs: dict[str, Any]) -> dict[str, Any]:
    accepted, has_var_keyword = _constructor_params(entry.cls)
    if has_var_keyword:
        return kwargs
    if "seed" in kwargs and "seed" not in accepted:
        kwargs = {key: value for key, value in kwargs.items() if key != "seed"}
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        raise ConfigurationError(
            f"{entry.kind} {entry.name!r} ({entry.cls.__name__}) got unexpected "
            f"parameter(s) {unknown}; valid parameters: {sorted(accepted)}"
        )
    return kwargs


def _scaled_rank(requested: Any, scale_hint: float, minimum: int) -> int:
    rank_scale = min(max(float(scale_hint), _MIN_RANK_SCALE), _MAX_RANK_SCALE)
    return max(int(minimum), int(round(float(requested) * rank_scale)))


def create(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the component registered as ``(kind, name)``.

    ``kwargs`` override the entry's defaults.  ``scale_hint`` and ``seed``
    are reserved (see the module docstring); every other unknown keyword
    raises :class:`ConfigurationError`.
    """
    entry = component_entry(kind, name)
    scale_hint = kwargs.pop("scale_hint", None)
    params: dict[str, Any] = dict(entry.defaults)
    if scale_hint is not None:
        for parameter, minimum in entry.scaled_params.items():
            if parameter in params and parameter not in kwargs:
                params[parameter] = _scaled_rank(params[parameter], scale_hint, minimum)
    params.update(kwargs)
    params = _validated_kwargs(entry, params)
    return entry.cls(**params)


def legacy_view(kind: str) -> Mapping[str, Callable[..., Any]]:
    """Name → factory mapping over the statically registered names of a kind.

    Kept for callers that iterate the available names (tests, benchmarks);
    construction itself goes through :func:`create`.
    """

    def factory(name: str) -> Callable[..., Any]:
        """A zero-config builder bound to one registered name."""
        def build(**kwargs: Any) -> Any:
            """Instantiate the bound component with ``kwargs`` overrides."""
            return create(kind, name, **kwargs)

        return build

    return {name: factory(name) for name in available(kind)}


# --------------------------------------------------------------------------- #
# Parameter introspection
# --------------------------------------------------------------------------- #
class ParamsMixin:
    """``get_params()`` / ``from_params()`` via constructor introspection.

    ``get_params`` maps every ``__init__`` parameter onto the attribute the
    component stores it under (``self.<name>``, falling back to
    ``self._<name>``), so a fitted component can always report the exact
    configuration that would rebuild it.  Components whose storage deviates
    from that convention must override :meth:`get_params`.
    """

    def get_params(self) -> dict[str, Any]:
        """The constructor parameters of this component, by introspection."""
        params: dict[str, Any] = {}
        for name in sorted(_constructor_params(type(self))[0]):
            if hasattr(self, name):
                params[name] = getattr(self, name)
            elif hasattr(self, f"_{name}"):
                params[name] = getattr(self, f"_{name}")
            else:
                raise ConfigurationError(
                    f"{type(self).__name__} stores no attribute for constructor "
                    f"parameter {name!r}; override get_params()"
                )
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "ParamsMixin":
        """Instantiate from a :meth:`get_params`-style mapping (strict)."""
        accepted, has_var_keyword = _constructor_params(cls)
        if not has_var_keyword:
            unknown = sorted(set(params) - accepted)
            if unknown:
                raise ConfigurationError(
                    f"{cls.__name__} got unexpected parameter(s) {unknown}; "
                    f"valid parameters: {sorted(accepted)}"
                )
        return cls(**dict(params))
