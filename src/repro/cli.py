"""Command-line interface for the GANC reproduction.

Exposes the experiment harness and the pipeline API without writing Python:

.. code-block:: console

    python -m repro table2 --scale 0.3
    python -m repro figure1 --datasets ml100k ml1m
    python -m repro table4 --datasets ml100k --scale 0.3 --output out.txt
    python -m repro figure6 --scale 0.3
    python -m repro recommend --dataset ml100k --arec psvd100 --theta thetaG --coverage dyn
    python -m repro recommend --dataset ml100k --dump-spec spec.json
    python -m repro run --config spec.json --save-pipeline artifacts/ml100k
    python -m repro run --load-pipeline artifacts/ml100k
    python -m repro ablation-oslg --dataset ml1m

Every experiment subcommand prints the same rows the paper's corresponding
table/figure reports and optionally writes them to ``--output``.  The
``recommend`` subcommand is sugar over a :class:`~repro.pipeline.PipelineSpec`
(``--dump-spec`` writes the equivalent JSON); ``run`` executes any spec file
and can persist/serve fitted pipelines.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.data.io import save_recommendations_csv
from repro.exceptions import ConfigurationError
from repro.parallel.executor import EXECUTOR_BACKENDS
from repro.experiments.ablations import run_ordering_ablation, run_oslg_vs_greedy
from repro.experiments.datasets import EXPERIMENT_DATASETS
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3_4 import run_figure3, run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7_8 import run_figure7_8
from repro.experiments.report_writer import ReportConfig, generate_report, write_report
from repro.experiments.runner import ExperimentTable
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.pipeline import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    ExecutionSpec,
    GANCSpec,
    Pipeline,
    PipelineSpec,
)
from repro.ganc.kde import validate_bandwidth
from repro.simulate.feedback import FEEDBACK_MODELS
from repro.simulate.scenarios import SCENARIOS
from repro.simulate.sources import SOURCE_KINDS
from repro.utils.tables import format_table

#: Valid sequential orderings for ``--theta-order``.
THETA_ORDERS = ("increasing", "decreasing", "arbitrary")


def _positive_int(option: str) -> Callable[[str], int]:
    """Argparse ``type`` validating strictly positive integer options.

    Raises :class:`ConfigurationError` (not ``ValueError``, which argparse
    would swallow into a generic usage message) so a bad ``--jobs 0`` fails
    loudly with the offending option named, instead of surfacing later as an
    opaque numpy error deep inside a scoring block.
    """

    def parse(text: str) -> int:
        """Parse one occurrence of the option, failing with the flag named."""
        try:
            value = int(text)
        except ValueError:
            raise ConfigurationError(f"{option} must be an integer, got {text!r}") from None
        if value < 1:
            raise ConfigurationError(f"{option} must be >= 1, got {value}")
        return value

    return parse


def _non_negative_int(option: str) -> Callable[[str], int]:
    """Argparse ``type`` validating integer options where ``0`` is meaningful.

    Same contract as :func:`_positive_int` but admits zero — e.g.
    ``--coalesce-window-us 0`` means "flush on the next event-loop tick".
    """

    def parse(text: str) -> int:
        """Parse one occurrence of the option, failing with the flag named."""
        try:
            value = int(text)
        except ValueError:
            raise ConfigurationError(f"{option} must be an integer, got {text!r}") from None
        if value < 0:
            raise ConfigurationError(f"{option} must be >= 0, got {value}")
        return value

    return parse


def _positive_float(option: str) -> Callable[[str], float]:
    """Argparse ``type`` validating strictly positive float options.

    Same rationale as :func:`_positive_int`: ``--scale 0`` used to survive
    argument parsing and only blow up deep inside dataset synthesis with an
    opaque error; now it raises :class:`ConfigurationError` naming the flag.
    """

    def parse(text: str) -> float:
        """Parse one occurrence of the option, failing with the flag named."""
        try:
            value = float(text)
        except ValueError:
            raise ConfigurationError(f"{option} must be a number, got {text!r}") from None
        if not math.isfinite(value) or value <= 0:
            raise ConfigurationError(f"{option} must be a positive finite number, got {value}")
        return value

    return parse


def _bandwidth(option: str) -> Callable[[str], "float | str"]:
    """Argparse ``type`` validating KDE bandwidth options at parse time.

    Accepts a positive number or a plug-in rule name; anything else raises
    :class:`ConfigurationError` naming the flag (same contract as
    ``--jobs``/``--scale``) instead of failing deep inside the KDE fit.
    """

    def parse(text: str) -> float | str:
        """Parse one occurrence of the option, failing with the flag named."""
        value: float | str
        try:
            value = float(text)
        except ValueError:
            value = text
        return validate_bandwidth(value, parameter=option)

    return parse


def _one_of(option: str, choices: tuple[str, ...]) -> Callable[[str], str]:
    """Argparse ``type`` validating an enumerated option at parse time.

    Like ``choices=`` but raises :class:`ConfigurationError` naming the flag
    instead of argparse's generic usage error, matching the other validated
    options.
    """

    def parse(text: str) -> str:
        """Parse one occurrence of the option, failing with the flag named."""
        if text not in choices:
            raise ConfigurationError(
                f"{option} must be one of {'/'.join(choices)}, got {text!r}"
            )
        return text

    return parse


def _emit(table: ExperimentTable, output: str | None) -> None:
    text = table.to_text()
    print(text)
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\nwritten to {path}")


def _add_common_arguments(parser: argparse.ArgumentParser, *, with_datasets: bool = True) -> None:
    parser.add_argument(
        "--scale",
        type=_positive_float("--scale"),
        default=0.35,
        help="surrogate dataset scale factor (must be > 0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="split / sampling seed")
    parser.add_argument("--output", type=str, default=None, help="write the rendered table to this file")
    parser.add_argument(
        "--block-size",
        type=_positive_int("--block-size"),
        default=None,
        help="users scored per matrix block in the batched paths "
        "(default: repro.utils.topn.DEFAULT_BLOCK_SIZE); peak memory is "
        "O(block_size x n_items)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int("--jobs"),
        default=1,
        help="workers the batched score paths fan user blocks out to "
        "(1 = serial; results are byte-identical for any value)",
    )
    parser.add_argument(
        "--backend",
        choices=list(EXECUTOR_BACKENDS),
        default="thread",
        help="executor backend used when --jobs > 1 (default: thread)",
    )
    if with_datasets:
        parser.add_argument(
            "--datasets",
            nargs="+",
            choices=sorted(EXPERIMENT_DATASETS),
            default=None,
            help="dataset keys to include (default: all five)",
        )


def _cmd_table2(args: argparse.Namespace) -> int:
    _emit(run_table2(datasets=args.datasets, scale=args.scale, seed=args.seed), args.output)
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    _, table = run_figure1(datasets=args.datasets, scale=args.scale, seed=args.seed)
    _emit(table, args.output)
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    _, table = run_figure2(datasets=args.datasets, scale=args.scale, seed=args.seed)
    _emit(table, args.output)
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    _, table = run_figure3(
        sample_sizes=tuple(args.sample_sizes), bandwidth=args.bandwidth,
        scale=args.scale, seed=args.seed,
        block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    _, table = run_figure4(
        sample_sizes=tuple(args.sample_sizes), bandwidth=args.bandwidth,
        scale=args.scale, seed=args.seed,
        block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    _, table = run_figure5(
        dataset_key=args.dataset,
        n_values=tuple(args.n_values),
        sample_size=args.sample_size,
        scale=args.scale,
        seed=args.seed,
        block_size=args.block_size,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    _, table = run_table4(
        datasets=args.datasets, scale=args.scale, sample_size=args.sample_size,
        seed=args.seed, block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    _, table = run_figure6(
        datasets=args.datasets, scale=args.scale, sample_size=args.sample_size,
        seed=args.seed, block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    _, table = run_table5(datasets=args.datasets, scale=args.scale, seed=args.seed)
    _emit(table, args.output)
    return 0


def _cmd_figure7_8(args: argparse.Namespace) -> int:
    _, table = run_figure7_8(
        datasets=tuple(args.datasets or ("ml100k", "ml1m")), scale=args.scale,
        seed=args.seed, block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_ablation_oslg(args: argparse.Namespace) -> int:
    _, table = run_oslg_vs_greedy(
        dataset_key=args.dataset, scale=args.scale, seed=args.seed,
        block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_ablation_ordering(args: argparse.Namespace) -> int:
    _, table = run_ordering_ablation(
        dataset_key=args.dataset, scale=args.scale, seed=args.seed,
        block_size=args.block_size, n_jobs=args.jobs, backend=args.backend,
    )
    _emit(table, args.output)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Generate the combined markdown report."""
    config = ReportConfig(
        datasets=tuple(args.datasets or ("ml100k", "ml1m")),
        scale=args.scale,
        sample_size=args.sample_size,
        seed=args.seed,
        include_table4=not args.skip_table4,
        include_figure6=not args.skip_figure6,
    )
    if args.output:
        path = write_report(args.output, config)
        print(f"report written to {path}")
    else:
        print(generate_report(config))
    return 0


def _spec_from_recommend_args(args: argparse.Namespace) -> PipelineSpec:
    """The :class:`PipelineSpec` equivalent of a ``recommend`` invocation."""
    return PipelineSpec(
        dataset=DatasetSpec(key=args.dataset, scale=args.scale),
        recommender=ComponentSpec(args.arec),
        preference=ComponentSpec(args.theta),
        coverage=ComponentSpec(args.coverage),
        ganc=GANCSpec(
            sample_size=args.sample_size,
            bandwidth=args.bandwidth,
            theta_order=args.theta_order,
            block_size=args.block_size,
        ),
        evaluation=EvaluationSpec(n=args.n, block_size=args.block_size),
        execution=ExecutionSpec(backend=args.backend, n_jobs=args.jobs),
        seed=args.seed,
    )


def _run_pipeline(
    pipeline: Pipeline,
    *,
    dataset_label: str,
    output: str | None,
    save_recommendations: str | None,
    save_pipeline: str | None,
) -> int:
    """Shared recommend/run tail: serve, score, print and persist."""
    recommendations = pipeline.recommend_all()
    report = pipeline.evaluate(recommendations).report

    n = pipeline.spec.evaluation.n
    rows = [[metric, value] for metric, value in report.as_dict().items()]
    text = format_table(
        ["metric", "value"], rows,
        title=f"{pipeline.algorithm} on {dataset_label} (top-{n})",
    )
    print(text)
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\nwritten to {path}")

    if save_recommendations:
        path = save_recommendations_csv(recommendations.as_dict(), save_recommendations)
        print(f"\nrecommendations written to {path}")
    if save_pipeline:
        directory = pipeline.save(save_pipeline)
        print(f"\nfitted pipeline saved to {directory}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    """Run one GANC configuration end to end and report its metrics."""
    spec = _spec_from_recommend_args(args)
    if args.dump_spec:
        path = spec.to_json_file(args.dump_spec)
        print(f"pipeline spec written to {path}")
    pipeline = Pipeline(spec).fit()
    return _run_pipeline(
        pipeline,
        dataset_label=spec.dataset.key,
        output=args.output,
        save_recommendations=args.save_recommendations,
        save_pipeline=args.save_pipeline,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    """Execute a pipeline spec file (or serve a saved fitted pipeline)."""
    if args.load_pipeline:
        pipeline = Pipeline.load(args.load_pipeline)
    else:
        pipeline = Pipeline.from_json_file(args.config)
    # --jobs/--backend override the spec's execution section: execution is
    # mechanism, not modelling, so overriding it never changes results.
    if args.jobs is not None or args.backend is not None:
        execution = pipeline.spec.execution
        pipeline.set_execution(
            ExecutionSpec(
                backend=args.backend or execution.backend,
                n_jobs=args.jobs if args.jobs is not None else execution.n_jobs,
            )
        )
    # --sample-size/--bandwidth/--theta-order override the ganc section:
    # these are optimizer knobs, applied without refitting any component.
    if (
        args.sample_size is not None
        or args.bandwidth is not None
        or args.theta_order is not None
    ):
        ganc = pipeline.spec.ganc
        pipeline.set_ganc(
            dataclasses.replace(
                ganc,
                sample_size=args.sample_size if args.sample_size is not None else ganc.sample_size,
                bandwidth=args.bandwidth if args.bandwidth is not None else ganc.bandwidth,
                theta_order=args.theta_order if args.theta_order is not None else ganc.theta_order,
            )
        )
    if not args.load_pipeline:
        pipeline.fit()
    return _run_pipeline(
        pipeline,
        dataset_label=pipeline.spec.dataset.key,
        output=args.output,
        save_recommendations=args.save_recommendations,
        save_pipeline=args.save_pipeline,
    )


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile a saved pipeline into a serveable top-N artifact."""
    if args.delta is not None and not args.update:
        raise ConfigurationError("--delta requires --update")
    if args.update:
        # The artifact's own layout is authoritative for an update.
        for flag, value in (
            ("--n", args.n),
            ("--shard-size", args.shard_size),
            ("--max-users", args.max_users),
        ):
            if value is not None:
                raise ConfigurationError(
                    f"{flag} cannot be changed by --update; run a full compile"
                )
        return _cmd_compile_update(args)
    from repro.serving import compile_artifact

    directory = compile_artifact(
        args.pipeline,
        args.artifact,
        n=args.n,
        shard_size=args.shard_size,
        max_users=args.max_users,
        block_size=args.block_size,
        n_jobs=args.jobs,
        backend=args.backend,
    )
    from repro.serving import load_manifest

    manifest = load_manifest(directory)
    print(
        f"compiled top-{manifest['n']} artifact for {manifest['n_users']}/"
        f"{manifest['n_users_total']} users ({len(manifest['shards'])} shard(s)) "
        f"of {manifest['algorithm']} to {directory}"
    )
    return 0


def _cmd_compile_update(args: argparse.Namespace) -> int:
    """Delta-only recompilation of a live artifact (``repro compile --update``)."""
    from repro.serving import compile_artifact_update, ingest_and_update

    if args.delta is not None:
        _, refit_report, report = ingest_and_update(
            args.pipeline,
            args.artifact,
            args.delta,
            block_size=args.block_size,
            n_jobs=args.jobs,
            backend=args.backend,
        )
        print(
            f"ingested {args.delta} ({refit_report.kind} refit) into {args.pipeline}"
        )
    else:
        report = compile_artifact_update(
            args.pipeline,
            args.artifact,
            block_size=args.block_size,
            n_jobs=args.jobs,
            backend=args.backend,
        )
    print(
        f"updated artifact {report.artifact_dir} to revision {report.revision}: "
        f"{report.users_recomputed}/{report.n_users} rows recomputed, "
        f"{report.shards_skipped} shard(s) unchanged, "
        f"{report.shards_rewritten} rewritten, {report.shards_appended} appended"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a ratings CSV into an out-of-core shard store."""
    from repro.data.outofcore import ingest_csv

    report = ingest_csv(
        args.csv,
        args.output,
        chunk_size=args.chunk_size,
        default_rating=args.rating_default,
        append=args.append,
    )
    print(
        f"ingested {report.n_new_ratings} rating(s) from {args.csv} into "
        f"{report.directory} (revision {report.revision}): now "
        f"{report.n_ratings} ratings, {report.n_users} users, "
        f"{report.n_items} items in {report.n_shards} shard(s)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a compiled artifact over HTTP (with optional live fallback)."""
    if not args.async_tier:
        for flag, value in (
            ("--workers", args.workers),
            ("--coalesce-max", args.coalesce_max),
            ("--coalesce-window-us", args.coalesce_window_us),
        ):
            if value is not None:
                raise ConfigurationError(f"{flag} requires --async")
        from repro.serving import serve

        return serve(
            args.artifact,
            pipeline=args.pipeline,
            host=args.host,
            port=args.port,
            fallback_cache_size=args.fallback_cache_size,
        )
    from repro.serving import serve_async

    return serve_async(
        args.artifact,
        pipeline=args.pipeline,
        host=args.host,
        port=args.port,
        workers=1 if args.workers is None else args.workers,
        fallback_cache_size=args.fallback_cache_size,
        coalesce_max=args.coalesce_max,
        coalesce_window_us=args.coalesce_window_us,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Replay a traffic scenario against a source and report windowed drift."""
    from repro.parallel.executor import get_executor
    from repro.simulate import (
        SimulationConfig,
        create_source,
        run_simulation,
        write_report,
    )

    source = create_source(
        args.source,
        artifact_dir=args.artifact,
        pipeline_dir=args.pipeline,
        url=args.url,
    )
    config = SimulationConfig(
        scenario=args.scenario,
        n_events=args.events,
        n=args.n,
        feedback=args.feedback,
        window=args.window,
        seed=args.seed,
        shards=args.shards,
        verify=args.verify,
    )
    # A saved pipeline's split gives the store/http replay held-out futures
    # for the accuracy proxies and train popularity for novelty; the live
    # pipeline source carries its own split.
    split = None
    if args.pipeline is not None and args.source != "pipeline":
        from repro.pipeline.persistence import load_split_npz

        split = load_split_npz(Path(args.pipeline) / "split.npz")
    executor = get_executor(args.backend, args.jobs)
    try:
        result = run_simulation(source, config, split=split, executor=executor)
    finally:
        source.close()
    report = result.report

    def _cell(value: float | None) -> str:
        return "-" if value is None else f"{value:.4f}"

    rows = [
        [
            window["index"],
            window["events"],
            window["consumed"],
            f"{window['window_coverage']:.4f}",
            f"{window['cumulative_coverage']:.4f}",
            f"{window['cumulative_gini']:.4f}",
            _cell(window["precision"]),
            _cell(window["epc"]),
        ]
        for window in report["windows"]
    ]
    mode = "online" if report["config"]["online"] else "offline"
    print(
        format_table(
            ["window", "events", "consumed", "cov", "cum-cov", "cum-gini", "prec", "epc"],
            rows,
            title=(
                f"{config.scenario} x {config.feedback} on {args.source} "
                f"({mode}, {report['totals']['events']} events)"
            ),
        )
    )
    totals = report["totals"]
    print(
        f"\ntotals: consumed={totals['consumed']} "
        f"unique_users={totals['unique_users']} "
        f"cold={totals['cold_arrivals']} returning={totals['returning_arrivals']} "
        f"coverage={totals['cumulative_coverage']:.4f} "
        f"gini={totals['cumulative_gini']:.4f}"
    )
    if config.verify:
        print("online invariant verified at every window boundary")
    if args.out:
        path = write_report(report, args.out)
        print(f"\nreport written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GANC reproduction: regenerate the paper's tables/figures or run the framework.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simple_commands: dict[str, tuple[str, Callable[[argparse.Namespace], int]]] = {
        "table2": ("Table II: dataset statistics", _cmd_table2),
        "figure1": ("Figure 1: popularity vs activity", _cmd_figure1),
        "figure2": ("Figure 2: preference histograms", _cmd_figure2),
        "table5": ("Table V: RSVD hyper-parameter selection", _cmd_table5),
        "figure7-8": ("Figures 7-8: ranking protocol comparison", _cmd_figure7_8),
    }
    for name, (help_text, handler) in simple_commands.items():
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_arguments(sub)
        sub.set_defaults(handler=handler)

    for name, handler, dataset_key in (("figure3", _cmd_figure3, "ml1m"), ("figure4", _cmd_figure4, "mt200k")):
        sub = subparsers.add_parser(name, help=f"OSLG sample-size sweep ({dataset_key})")
        _add_common_arguments(sub, with_datasets=False)
        sub.add_argument("--sample-sizes", nargs="+", type=int, default=[100, 300, 500])
        sub.add_argument(
            "--bandwidth", type=_bandwidth("--bandwidth"), default="silverman",
            help="KDE bandwidth for OSLG sampling: a positive number or scott/silverman",
        )
        sub.set_defaults(handler=handler)

    figure5 = subparsers.add_parser("figure5", help="Figure 5: preference models x ARec x N")
    _add_common_arguments(figure5, with_datasets=False)
    figure5.add_argument("--dataset", choices=sorted(EXPERIMENT_DATASETS), default="ml1m")
    figure5.add_argument("--n-values", nargs="+", type=int, default=[5, 10, 15, 20])
    figure5.add_argument("--sample-size", type=_positive_int("--sample-size"), default=500)
    figure5.set_defaults(handler=_cmd_figure5)

    for name, help_text, handler in (
        ("table4", "Table IV: re-ranking comparison", _cmd_table4),
        ("figure6", "Figure 6: accuracy/coverage/novelty trade-offs", _cmd_figure6),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_arguments(sub)
        sub.add_argument("--sample-size", type=_positive_int("--sample-size"), default=500)
        sub.set_defaults(handler=handler)

    for name, help_text, handler in (
        ("ablation-oslg", "Ablation: OSLG vs exact Locally Greedy", _cmd_ablation_oslg),
        ("ablation-ordering", "Ablation: sequential user ordering", _cmd_ablation_ordering),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_arguments(sub, with_datasets=False)
        sub.add_argument("--dataset", choices=sorted(EXPERIMENT_DATASETS), default="ml1m")
        sub.set_defaults(handler=handler)

    report = subparsers.add_parser("report", help="generate the combined markdown report")
    _add_common_arguments(report)
    report.add_argument("--sample-size", type=_positive_int("--sample-size"), default=200)
    report.add_argument("--skip-table4", action="store_true", help="omit the Table IV comparison")
    report.add_argument("--skip-figure6", action="store_true", help="omit the Figure 6 trade-off section")
    report.set_defaults(handler=_cmd_report)

    recommend = subparsers.add_parser("recommend", help="run one GANC configuration and report metrics")
    _add_common_arguments(recommend, with_datasets=False)
    recommend.add_argument("--dataset", choices=sorted(EXPERIMENT_DATASETS), default="ml100k")
    recommend.add_argument("--arec", default="psvd100", help="accuracy recommender (pop, rand, rsvd, psvd10, psvd100, cofir100)")
    recommend.add_argument("--theta", default="thetaG", help="preference model (thetaA/N/T/G/R/C)")
    recommend.add_argument("--coverage", default="dyn", help="coverage recommender (rand, stat, dyn)")
    recommend.add_argument("--n", type=int, default=5, help="top-N size")
    recommend.add_argument(
        "--sample-size", type=_positive_int("--sample-size"), default=500,
        help="OSLG sample size S (sequential users; clipped to the user count)",
    )
    recommend.add_argument(
        "--bandwidth", type=_bandwidth("--bandwidth"), default="silverman",
        help="KDE bandwidth for OSLG sampling: a positive number or scott/silverman",
    )
    recommend.add_argument(
        "--theta-order", type=_one_of("--theta-order", THETA_ORDERS), default="increasing",
        help="sequential user ordering: increasing (paper), decreasing or arbitrary",
    )
    recommend.add_argument(
        "--save-recommendations", type=str, default=None, help="write the top-N sets to this CSV file"
    )
    recommend.add_argument(
        "--dump-spec", type=str, default=None,
        help="write the equivalent pipeline spec JSON to this file",
    )
    recommend.add_argument(
        "--save-pipeline", type=str, default=None,
        help="save the fitted pipeline (spec + arrays) to this directory",
    )
    recommend.set_defaults(handler=_cmd_recommend)

    run = subparsers.add_parser(
        "run", help="execute a pipeline spec JSON (or serve a saved fitted pipeline)"
    )
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--config", type=str, default=None, help="pipeline spec JSON file")
    source.add_argument(
        "--load-pipeline", type=str, default=None,
        help="directory of a fitted pipeline saved with --save-pipeline",
    )
    run.add_argument("--output", type=str, default=None, help="write the metric table to this file")
    run.add_argument(
        "--jobs", type=_positive_int("--jobs"), default=None,
        help="override the spec's execution.n_jobs (results are unchanged)",
    )
    run.add_argument(
        "--backend", choices=list(EXECUTOR_BACKENDS), default=None,
        help="override the spec's execution.backend",
    )
    run.add_argument(
        "--sample-size", type=_positive_int("--sample-size"), default=None,
        help="override the spec's ganc.sample_size (OSLG sequential sample)",
    )
    run.add_argument(
        "--bandwidth", type=_bandwidth("--bandwidth"), default=None,
        help="override the spec's ganc.bandwidth (number or scott/silverman)",
    )
    run.add_argument(
        "--theta-order", type=_one_of("--theta-order", THETA_ORDERS), default=None,
        help="override the spec's ganc.theta_order",
    )
    run.add_argument(
        "--save-recommendations", type=str, default=None, help="write the top-N sets to this CSV file"
    )
    run.add_argument(
        "--save-pipeline", type=str, default=None,
        help="save the fitted pipeline (spec + arrays) to this directory",
    )
    run.set_defaults(handler=_cmd_run)

    compile_cmd = subparsers.add_parser(
        "compile",
        help="precompute a saved pipeline's top-N into a serveable artifact",
    )
    compile_cmd.add_argument(
        "--pipeline", type=str, required=True,
        help="directory of a fitted pipeline saved with --save-pipeline",
    )
    compile_cmd.add_argument(
        "--artifact", type=str, required=True,
        help="output directory for the compiled artifact",
    )
    compile_cmd.add_argument(
        "--n", type=_positive_int("--n"), default=None,
        help="top-N size to compile (default: the spec's evaluation.n)",
    )
    compile_cmd.add_argument(
        "--shard-size", type=_positive_int("--shard-size"), default=None,
        help="users per .npy shard file (default: 4096)",
    )
    compile_cmd.add_argument(
        "--max-users", type=_positive_int("--max-users"), default=None,
        help="store only the first K users (the rest serve via live fallback)",
    )
    compile_cmd.add_argument(
        "--block-size", type=_positive_int("--block-size"), default=None,
        help="users scored per matrix block during the compile pass",
    )
    compile_cmd.add_argument(
        "--jobs", type=_positive_int("--jobs"), default=None,
        help="workers the compile pass fans user blocks out to",
    )
    compile_cmd.add_argument(
        "--backend", choices=list(EXECUTOR_BACKENDS), default=None,
        help="executor backend for the compile pass",
    )
    compile_cmd.add_argument(
        "--update", action="store_true",
        help="delta-recompile an existing artifact in place: recompute only "
        "what changed, rewrite only shards whose rows differ, bump the "
        "manifest revision (layout flags are taken from the artifact)",
    )
    compile_cmd.add_argument(
        "--delta", type=str, default=None,
        help="ingest this user,item[,rating] CSV into the saved pipeline "
        "before updating (requires --update; the pipeline directory is "
        "refitted and saved back in place)",
    )
    compile_cmd.set_defaults(handler=_cmd_compile)

    ingest_cmd = subparsers.add_parser(
        "ingest",
        help="stream a user,item[,rating] CSV into an out-of-core shard "
        "store loadable as a memmap-backed dataset (dataset.path in specs)",
    )
    ingest_cmd.add_argument(
        "--csv", type=str, required=True,
        help="ratings CSV to ingest (same format as `repro compile --delta`)",
    )
    ingest_cmd.add_argument(
        "--output", type=str, required=True,
        help="ingest-store directory (created fresh unless --append)",
    )
    ingest_cmd.add_argument(
        "--chunk-size", type=_positive_int("--chunk-size"), default=1_000_000,
        help="rows buffered per .npy shard; bounds ingest memory "
        "(default: 1000000)",
    )
    ingest_cmd.add_argument(
        "--rating-default", type=float, default=1.0,
        help="rating assigned to two-column rows (default: 1.0)",
    )
    ingest_cmd.add_argument(
        "--append", action="store_true",
        help="add ratings to an existing store, preserving its id maps "
        "(first-appearance dense indexing, like RatingDataset.extend)",
    )
    ingest_cmd.set_defaults(handler=_cmd_ingest)

    serve_cmd = subparsers.add_parser(
        "serve",
        help="serve a compiled artifact over HTTP (stdlib http.server, "
        "or the asyncio coalescing tier with --async)",
    )
    serve_cmd.add_argument(
        "--artifact", type=str, required=True,
        help="directory of an artifact written by `repro compile`",
    )
    serve_cmd.add_argument(
        "--pipeline", type=str, default=None,
        help="saved pipeline directory used as live fallback for lookups "
        "the artifact does not cover",
    )
    serve_cmd.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8000, help="bind port (0 picks an ephemeral port)"
    )
    serve_cmd.add_argument(
        "--fallback-cache-size", type=_positive_int("--fallback-cache-size"), default=2,
        help="distinct n values whose live recommend_all tables stay cached",
    )
    serve_cmd.add_argument(
        "--async", dest="async_tier", action="store_true",
        help="serve with the high-concurrency asyncio tier: keep-alive, "
        "request coalescing into batched store lookups, POST /recommend/batch",
    )
    serve_cmd.add_argument(
        "--workers", type=_positive_int("--workers"), default=None,
        help="pre-forked worker processes sharing the listening socket, one "
        "mmap store handle each (requires --async; default 1)",
    )
    serve_cmd.add_argument(
        "--coalesce-max", type=_positive_int("--coalesce-max"), default=None,
        help="flush a micro-batch at this many queued lookups "
        "(requires --async; default 64)",
    )
    serve_cmd.add_argument(
        "--coalesce-window-us", type=_non_negative_int("--coalesce-window-us"), default=None,
        help="max microseconds a queued lookup waits before its batch is "
        "flushed; 0 flushes on the next event-loop tick "
        "(requires --async; default 500)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    simulate_cmd = subparsers.add_parser(
        "simulate",
        help="replay a traffic scenario against a pipeline/artifact/HTTP tier "
        "and report windowed coverage/novelty/accuracy drift",
    )
    simulate_cmd.add_argument(
        "--scenario", type=_one_of("--scenario", SCENARIOS), default="steady",
        help=f"traffic preset: {'/'.join(SCENARIOS)} (default: steady)",
    )
    simulate_cmd.add_argument(
        "--events", type=_positive_int("--events"), default=1000,
        help="number of arrival events to generate and replay (default: 1000)",
    )
    simulate_cmd.add_argument(
        "--feedback", type=_one_of("--feedback", FEEDBACK_MODELS),
        default="position-biased",
        help=f"consumption model: {'/'.join(FEEDBACK_MODELS)} "
        "(default: position-biased)",
    )
    simulate_cmd.add_argument(
        "--source", type=_one_of("--source", SOURCE_KINDS), default="pipeline",
        help="where top-N rows come from: pipeline (live, online feedback for "
        "dynamic coverage), store (compiled artifact), http (running tier)",
    )
    simulate_cmd.add_argument(
        "--pipeline", type=str, default=None,
        help="saved pipeline directory (--source pipeline, or fallback for "
        "--source store)",
    )
    simulate_cmd.add_argument(
        "--artifact", type=str, default=None,
        help="compiled artifact directory (--source store)",
    )
    simulate_cmd.add_argument(
        "--url", type=str, default=None,
        help="base URL of a running serving tier (--source http)",
    )
    simulate_cmd.add_argument(
        "--n", type=_positive_int("--n"), default=10,
        help="top-N size requested per event (default: 10)",
    )
    simulate_cmd.add_argument(
        "--window", type=_positive_int("--window"), default=100,
        help="events per drift-metric window (default: 100)",
    )
    simulate_cmd.add_argument("--seed", type=int, default=0, help="run seed")
    simulate_cmd.add_argument(
        "--shards", type=_positive_int("--shards"), default=4,
        help="trace shards for the parallel replay path; part of the run "
        "configuration, so results are identical for any --jobs (default: 4)",
    )
    simulate_cmd.add_argument(
        "--jobs", type=_positive_int("--jobs"), default=1,
        help="workers shards fan out to (results are byte-identical for any value)",
    )
    simulate_cmd.add_argument(
        "--backend", choices=list(EXECUTOR_BACKENDS), default="thread",
        help="executor backend used when --jobs > 1 (default: thread)",
    )
    simulate_cmd.add_argument(
        "--out", type=str, default=None,
        help="write the canonical JSON run report to this file",
    )
    simulate_cmd.add_argument(
        "--verify", action="store_true",
        help="assert the online invariant (delta coverage state == "
        "from-scratch recompute) at every window boundary",
    )
    simulate_cmd.set_defaults(handler=_cmd_simulate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.handler
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
