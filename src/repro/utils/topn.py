"""Canonical top-N selection shared by the per-user and batched score paths.

Every ranking operation in the library — ``Recommender.recommend``, the GANC
optimizers, the evaluation protocols — reduces to "take the ``n`` best items
of a score vector".  This module pins down one tie-breaking convention for all
of them:

* items are ordered by **decreasing score**;
* exact score ties are broken by **increasing item index** (the behaviour of a
  stable sort on the negated scores);
* non-finite scores (``-inf`` exclusion masks, ``NaN``, ``+inf``) are never
  selected.

Both the 1-D (:func:`top_n_indices`) and the row-wise 2-D
(:func:`top_n_matrix`) implementations realize exactly this ordering, which is
what makes the blocked batch paths bit-for-bit equivalent to the historical
per-user loops.  The 2-D variant avoids a full-width sort: an
``argpartition`` per row finds the ``n``-th largest value, boundary ties are
resolved by index, and only the selected ``n`` entries are sorted.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Default number of users processed per block by batched score paths.  Keeps
#: peak memory at ``O(block_size * n_items)`` regardless of the user count.
DEFAULT_BLOCK_SIZE = 1024


def iter_user_blocks(n_users: int, block_size: int | None = None) -> Iterator[np.ndarray]:
    """Yield contiguous user-index blocks of at most ``block_size`` users."""
    size = DEFAULT_BLOCK_SIZE if block_size is None else int(block_size)
    if size < 1:
        raise ValueError(f"block_size must be >= 1, got {size}")
    for start in range(0, int(n_users), size):
        yield np.arange(start, min(start + size, int(n_users)), dtype=np.int64)


def top_n_indices(
    scores: np.ndarray,
    n: int,
    *,
    work: np.ndarray | None = None,
    assume_finite: bool = False,
) -> np.ndarray:
    """Indices of the top-``n`` finite entries of a 1-D score vector.

    Returns at most ``n`` indices in decreasing score order, ties broken by
    increasing index; may return fewer when fewer finite entries exist.
    Selection is ``O(n_items + n log n)`` via ``argpartition`` in the common
    case, with a full stable sort only when a tie spans the selection
    boundary (same fallback rule as :func:`top_n_matrix`).

    ``work`` is an optional preallocated float64 scratch buffer of the same
    shape as ``scores``; tight sequential callers (the incremental GANC pass
    calls this once per user) reuse one buffer instead of allocating the
    negated copy every call.  Its contents are clobbered.

    ``assume_finite=True`` asserts the caller's guarantee that ``scores``
    contains no ``NaN`` and no ``+inf`` (``-inf`` exclusion masks are fine —
    negation maps them to ``+inf``, which the selection already never
    returns).  This skips the non-finite scrub pass; results are identical
    whenever the guarantee holds.  The incremental GANC engine establishes
    it once per prefetched block instead of once per user.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = int(n)
    k = min(n, scores.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)

    if work is None:
        work = -scores
    else:
        if work.shape != scores.shape or work.dtype != np.float64:
            raise ValueError(
                f"work buffer must be float64 with shape {scores.shape}, "
                f"got {work.dtype} {work.shape}"
            )
        np.negative(scores, out=work)
    if not assume_finite:
        work[~np.isfinite(work)] = np.inf

    if k < work.size:
        part = np.argpartition(work, k - 1)[:k]
        part_vals = work[part]
        thresh = part_vals.max()
        if np.count_nonzero(work == thresh) == np.count_nonzero(part_vals == thresh):
            # Every entry tied with the boundary is inside the partition, so
            # the selected set is forced; order it by (value, index).
            cols = np.sort(part)
            order = np.argsort(work[cols], kind="stable")
            cols = cols[order]
            if thresh != np.inf:
                # No excluded entry was selected; skip the finiteness filter.
                return cols.astype(np.int64, copy=False)
            return cols[np.isfinite(work[cols])].astype(np.int64, copy=False)

    order = np.argsort(work, kind="stable")
    order = order[np.isfinite(work[order])]
    return order[:k].astype(np.int64, copy=False)


def top_n_matrix(scores: np.ndarray, n: int) -> np.ndarray:
    """Row-wise top-``n`` of a 2-D score block, padded with ``-1``.

    Parameters
    ----------
    scores:
        Array of shape ``(n_rows, n_items)``.  Non-finite entries are treated
        as excluded.  The array is not modified.
    n:
        Number of columns of the result.  Rows with fewer than ``n`` finite
        entries are right-padded with ``-1``.

    Returns
    -------
    ``(n_rows, n)`` int64 array whose row ``r`` lists the top items of
    ``scores[r]`` under the canonical ordering of this module.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected a 2-D score block, got shape {scores.shape}")
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    n_rows, n_items = scores.shape
    if n_rows == 0:
        return np.empty((0, n), dtype=np.int64)
    k = min(n, n_items)

    # Work in ascending order: negate the scores and push every non-finite
    # entry (exclusion masks, NaN, +inf model scores) to +inf so it sorts
    # last and is never selected.
    work = -scores
    work[~np.isfinite(work)] = np.inf

    if k == n_items:
        cols = np.argsort(work, axis=1, kind="stable")
        vals = np.take_along_axis(work, cols, axis=1)
    else:
        part = np.argpartition(work, k - 1, axis=1)[:, :k]
        part_vals = np.take_along_axis(work, part, axis=1)
        # The k-th best value bounds the selection.  When every entry tied
        # with the bound already sits inside the partition, the selected SET
        # is forced and ``argpartition``'s arbitrary tie choice is harmless;
        # otherwise (rare) the row needs the exact index tie-break of a full
        # stable sort.
        thresh = part_vals.max(axis=1, keepdims=True)
        ambiguous = np.flatnonzero(
            (work == thresh).sum(axis=1) > (part_vals == thresh[:, :1]).sum(axis=1)
        )
        cols = np.sort(part, axis=1)
        if ambiguous.size:
            exact = np.argsort(work[ambiguous], axis=1, kind="stable")[:, :k]
            cols[ambiguous] = np.sort(exact, axis=1)
        vals = np.take_along_axis(work, cols, axis=1)
        # ``cols`` is in increasing index order per row, so a stable sort on
        # the values yields decreasing score with index tie-breaking.
        order = np.argsort(vals, axis=1, kind="stable")
        cols = np.take_along_axis(cols, order, axis=1)
        vals = np.take_along_axis(vals, order, axis=1)

    top = cols[:, :k].astype(np.int64, copy=True)
    top[np.isinf(vals[:, :k])] = -1

    if k < n:
        pad = np.full((n_rows, n - k), -1, dtype=np.int64)
        top = np.concatenate([top, pad], axis=1)
    return top


def mask_pairs(scores: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Set ``scores[rows, cols] = -inf`` in place and return ``scores``.

    ``scores`` must be a writable float64 block; ``rows``/``cols`` are the
    flattened (block-row, item) exclusion pairs of the block, as produced by
    :meth:`repro.data.dataset.RatingDataset.user_items_batch`.
    """
    if rows.size:
        scores[rows, cols] = -np.inf
    return scores
