"""Argument-validation helpers with informative error messages."""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import ConfigurationError


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_unit_interval(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        val = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a float in [0, 1], got {value!r}") from exc
    if not 0.0 <= val <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {val}")
    return val


def check_probability(value: Any, name: str) -> float:
    """Validate a probability that must be strictly inside (0, 1)."""
    val = check_unit_interval(value, name)
    if val in (0.0, 1.0):
        raise ConfigurationError(f"{name} must be strictly between 0 and 1, got {val}")
    return val


def check_in_choices(value: Any, name: str, choices: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``choices`` and return it."""
    allowed = list(choices)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value
