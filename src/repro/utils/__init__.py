"""Small shared utilities: RNG handling, normalization, top-N selection, tables."""

from repro.utils.normalization import (
    min_max_normalize,
    normalize_rows,
    clip_unit_interval,
)
from repro.utils.topn import (
    DEFAULT_BLOCK_SIZE,
    iter_user_blocks,
    top_n_indices,
    top_n_matrix,
)
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    check_positive_int,
    check_unit_interval,
    check_probability,
    check_in_choices,
)
from repro.utils.tables import format_table, format_float
from repro.utils.plotting import Series, ascii_plot, ascii_histogram, ascii_bars

__all__ = [
    "min_max_normalize",
    "normalize_rows",
    "clip_unit_interval",
    "DEFAULT_BLOCK_SIZE",
    "iter_user_blocks",
    "top_n_indices",
    "top_n_matrix",
    "ensure_rng",
    "spawn_rng",
    "check_positive_int",
    "check_unit_interval",
    "check_probability",
    "check_in_choices",
    "format_table",
    "format_float",
    "Series",
    "ascii_plot",
    "ascii_histogram",
    "ascii_bars",
]
