"""Random-number-generator helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` converts any of those into
a Generator so the rest of the code never has to branch on the input type.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing Generator
        (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Used when a parallel-style loop needs per-task deterministic streams that
    do not depend on iteration order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seed_sequences(seed: int | None, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent child seed sequences from one root seed.

    Thin wrapper over ``numpy.random.SeedSequence.spawn``: child ``i`` is a
    pure function of ``(seed, i)``, so a parallel fan-out that derives the
    children *before* scattering work gets identical per-block streams
    regardless of backend, worker count or completion order.  ``seed=None``
    draws the root from OS entropy (children are then only reproducible
    within the call).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return np.random.SeedSequence(seed).spawn(count)
