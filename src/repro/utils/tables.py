"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows the paper's tables report.  We keep
formatting dependency-free: a simple fixed-width ASCII layout that is easy to
diff across runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_float(value: float, digits: int = 4) -> str:
    """Format a float with a fixed number of decimal digits."""
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_digits: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with ``float_digits`` decimals; everything else goes
    through ``str``.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell, float_digits))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but table has {columns} columns: {row}"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(_line([str(h) for h in headers]))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(_line(row) for row in rendered_rows)
    return "\n".join(parts)
