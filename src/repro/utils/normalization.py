"""Vector and matrix normalization helpers used across the library.

The paper normalizes generic vectors with ``x_i = (x_i - min(x)) / (max(x) -
min(x))`` (Section II-A) and requires accuracy / coverage scores as well as
preference estimates to live on the ``[0, 1]`` interval so that the value
function in Eq. III.1 combines commensurable quantities.
"""

from __future__ import annotations

import numpy as np


def min_max_normalize(values: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Min-max normalize ``values`` to the unit interval.

    A constant vector (max == min) normalizes to all zeros, which matches the
    convention used in the paper's preprocessing: a user whose per-item
    preference values are all identical carries no ordering information.
    """
    arr = np.asarray(values, dtype=np.float64)
    if copy:
        arr = arr.copy()
    if arr.size == 0:
        return arr
    lo = float(np.min(arr))
    hi = float(np.max(arr))
    span = hi - lo
    if span <= 0.0:
        return np.zeros_like(arr)
    return (arr - lo) / span


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Min-max normalize each row of a dense 2-D array independently.

    Used to map predicted rating rows of RSVD / PureSVD into ``[0, 1]`` before
    they are consumed as accuracy scores ``a(i)``.
    """
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {mat.shape}")
    lo = mat.min(axis=1, keepdims=True)
    hi = mat.max(axis=1, keepdims=True)
    span = hi - lo
    span[span <= 0.0] = 1.0
    out = (mat - lo) / span
    return out


def clip_unit_interval(values: np.ndarray) -> np.ndarray:
    """Clip ``values`` into ``[0, 1]`` without modifying the input."""
    return np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
