"""Dependency-free ASCII plotting for experiment figures.

The paper's figures are line plots, scatter plots and histograms.  The
experiment harness renders them as plain-text charts so the shapes can be
inspected in a terminal or a log file without a plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Series:
    """A named series of points for ASCII plotting."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r} has {len(self.x)} x values but {len(self.y)} y values"
            )


_MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, size: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(values.size, dtype=np.int64)
    positions = (values - lo) / span * (size - 1)
    return np.clip(np.round(positions).astype(np.int64), 0, size - 1)


def ascii_plot(
    series: Sequence[Series],
    *,
    width: int = 60,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Each series gets its own marker character; the legend maps markers back to
    series labels.  Points that collide on the character grid keep the marker
    of the last series drawn.
    """
    if not series:
        raise ConfigurationError("ascii_plot needs at least one series")
    if width < 10 or height < 5:
        raise ConfigurationError("plot area must be at least 10x5 characters")

    all_x = np.concatenate([np.asarray(s.x, dtype=np.float64) for s in series])
    all_y = np.concatenate([np.asarray(s.y, dtype=np.float64) for s in series])
    if all_x.size == 0:
        raise ConfigurationError("cannot plot empty series")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())

    grid = [[" "] * width for _ in range(height)]
    for index, current in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        xs = _scale(np.asarray(current.x, dtype=np.float64), x_lo, x_hi, width)
        ys = _scale(np.asarray(current.y, dtype=np.float64), y_lo, y_hi, height)
        for col, row in zip(xs, ys):
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_hi:.4g}, bottom={y_lo:.4g})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = 40,
    title: str | None = None,
    value_range: tuple[float, float] | None = None,
) -> str:
    """Render a horizontal-bar histogram of ``values``."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot build a histogram from no values")
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(data, bins=bins, range=value_range)
    peak = max(int(counts.max()), 1)

    lines: list[str] = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:6.3f}, {hi:6.3f}) {bar} {count}")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render labelled horizontal bars (used for per-algorithm metric summaries)."""
    if len(labels) != len(values):
        raise ConfigurationError(
            f"labels and values must align, got {len(labels)} vs {len(values)}"
        )
    if not labels:
        raise ConfigurationError("ascii_bars needs at least one bar")
    data = np.asarray(list(values), dtype=np.float64)
    peak = float(np.max(np.abs(data))) or 1.0
    label_width = max(len(str(label)) for label in labels)

    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, data):
        bar = "#" * int(round(width * abs(value) / peak))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4f}")
    return "\n".join(lines)
