"""Prometheus-text serving metrics: request counters + latency histogram.

Both serving tiers expose ``GET /metrics`` in the Prometheus exposition
format (text version 0.0.4), built from one :class:`ServingMetrics`
instance per server: per-endpoint request counters and a fixed-bucket
request-latency histogram, merged at render time with the counters the
tiers already keep for ``/healthz`` (store row provenance, warm reloads,
coalescing).  Everything is stdlib + a lock — no client library — so the
endpoint is available in every environment that can import :mod:`repro`.

The bucket boundaries are fixed at construction (Prometheus histograms are
cumulative per-bucket counters, so boundaries must never change while a
scraper is watching) and default to a 250µs–1s ladder matched to the
measured serving latencies in ``BENCH_serving.json`` (p50 ~1.3ms async,
~4.5ms legacy).
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError

#: Default latency ladder (seconds): 250µs .. 1s, then +Inf implicitly.
DEFAULT_BUCKETS = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Content type of the exposition format (returned by both tiers).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    """Prometheus number formatting: integers without a trailing ``.0``."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class LatencyHistogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe`` is O(#buckets) with a plain scan — the ladders used here
    are a dozen entries, where a scan beats bisect overhead — and takes the
    owning lock, so concurrent request threads can observe safely.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds) or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"bucket bounds must be positive and strictly increasing, got {bounds}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the implicit +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one observation (seconds)."""
        seconds = float(seconds)
        position = 0
        for bound in self.bounds:
            if seconds <= bound:
                break
            position += 1
        with self._lock:
            self._counts[position] += 1
            self._sum += seconds
            self._count += 1

    def snapshot(self) -> tuple[list[tuple[str, int]], int, float]:
        """``(cumulative_buckets, count, sum)`` under the lock.

        ``cumulative_buckets`` pairs each ``le`` label (including ``+Inf``)
        with the cumulative count at that bound, ready for exposition.
        """
        with self._lock:
            counts = list(self._counts)
            total, observed_sum = self._count, self._sum
        cumulative: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append((_format_value(bound), running))
        cumulative.append(("+Inf", total))
        return cumulative, total, observed_sum


class ServingMetrics:
    """Per-endpoint request counters plus one request-latency histogram."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.histogram = LatencyHistogram(buckets)
        self._requests: dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(self, endpoint: str, seconds: float) -> None:
        """Count one request to ``endpoint`` and record its latency."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
        self.histogram.observe(seconds)

    def request_counts(self) -> dict[str, int]:
        """Current per-endpoint request counts (a copy)."""
        with self._lock:
            return dict(self._requests)

    def render(
        self,
        *,
        store_stats: Mapping[str, int] | None = None,
        reloads: int = 0,
        reload_failures: int = 0,
        extra_counters: Mapping[str, int] | None = None,
    ) -> str:
        """The full ``/metrics`` exposition text.

        ``store_stats`` is the store's ``/healthz`` counter dict
        (``artifact_rows`` / ``fallback_rows`` / ``fallback_builds``);
        ``extra_counters`` adds tier-specific counters (the async tier's
        coalescing stats) as ``repro_<name>`` gauges.
        """
        lines: list[str] = []

        lines.append("# HELP repro_requests_total Requests served, by endpoint.")
        lines.append("# TYPE repro_requests_total counter")
        for endpoint, count in sorted(self.request_counts().items()):
            lines.append(f'repro_requests_total{{endpoint="{endpoint}"}} {count}')

        buckets, count, observed_sum = self.histogram.snapshot()
        lines.append(
            "# HELP repro_request_latency_seconds Request handling latency."
        )
        lines.append("# TYPE repro_request_latency_seconds histogram")
        for le, cumulative in buckets:
            lines.append(
                f'repro_request_latency_seconds_bucket{{le="{le}"}} {cumulative}'
            )
        lines.append(f"repro_request_latency_seconds_sum {_format_value(observed_sum)}")
        lines.append(f"repro_request_latency_seconds_count {count}")

        if store_stats is not None:
            lines.append(
                "# HELP repro_store_rows_total Rows served, by provenance."
            )
            lines.append("# TYPE repro_store_rows_total counter")
            lines.append(
                f'repro_store_rows_total{{source="artifact"}} '
                f"{int(store_stats.get('artifact_rows', 0))}"
            )
            lines.append(
                f'repro_store_rows_total{{source="fallback"}} '
                f"{int(store_stats.get('fallback_rows', 0))}"
            )
            lines.append(
                "# HELP repro_fallback_builds_total Live recommend_all table builds."
            )
            lines.append("# TYPE repro_fallback_builds_total counter")
            lines.append(
                f"repro_fallback_builds_total {int(store_stats.get('fallback_builds', 0))}"
            )

        lines.append("# HELP repro_reloads_total Successful warm artifact reloads.")
        lines.append("# TYPE repro_reloads_total counter")
        lines.append(f"repro_reloads_total {int(reloads)}")
        lines.append("# HELP repro_reload_failures_total Failed warm artifact reloads.")
        lines.append("# TYPE repro_reload_failures_total counter")
        lines.append(f"repro_reload_failures_total {int(reload_failures)}")

        for name, value in sorted((extra_counters or {}).items()):
            lines.append(f"# TYPE repro_{name} counter")
            lines.append(f"repro_{name} {int(value)}")

        return "\n".join(lines) + "\n"


def parse_metrics(text: str) -> dict[str, float]:
    """Parse exposition text into ``{sample_name_with_labels: value}``.

    A deliberately small parser for the simulator's HTTP-source scrape and
    the tests — handles exactly the format :meth:`ServingMetrics.render`
    emits (comments, ``name{labels} value`` and ``name value`` lines).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        samples[name] = float(value)
    return samples
