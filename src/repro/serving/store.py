"""Memory-mapped lookup store over a compiled top-N artifact.

A :class:`RecommendationStore` is the online half of the paper's offline
precompute design: the artifact compiler (:mod:`repro.serving.artifact`)
batches the expensive assignment once, and the store answers
"what are user ``u``'s recommendations?" with an O(1) memory-mapped row
read — no model, no scoring, no Python process holding the table in RAM.

Lookups that the artifact cannot answer — users beyond its coverage, a
top-``n`` size it was not compiled for — fall back to a live
:class:`~repro.pipeline.Pipeline` when one is attached: the store runs
``pipeline.recommend_all(n)`` once per requested ``n`` and keeps the
resulting tables in a small LRU cache, so the fallback serves the *same
bytes* live scoring would (per-user shortcuts such as ``Pipeline.recommend``
are deliberately not used — for dynamic-coverage GANC they answer against
the current coverage state, not the full-collection assignment).

Thread safety and reload atomicity: everything derived from one artifact
read — manifest, shard maps, fallback pipeline and caches — lives in a
single immutable :class:`_StoreState` that :meth:`RecommendationStore.reload`
builds completely *before* swapping it in: the spec hash is validated and
every shard listed in the manifest is memory-mapped eagerly and
shape-checked against the manifest's layout.  A request thread captures the
state once and works against that snapshot, so a warm reload can never mix
two artifact layouts inside one lookup, and a failed reload leaves the
previous state fully intact.  (Mapping is cheap — pages load lazily — and
doing it at reload time means a recompile-in-place can never be observed
half-written: the compiler replaces files via rename and writes the
manifest last.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError, ServingError
from repro.pipeline.pipeline import Pipeline
from repro.serving.artifact import _resolve_pipeline, load_manifest, spec_hash


class _StoreState:
    """One consistent view of the artifact: manifest + shard maps + fallback.

    Instances are built fully before being swapped into the store — every
    shard the manifest lists is mapped and shape-checked here, so a state
    can never lazily map a file that a later recompile replaced with a
    different layout.  Only the fallback-table cache mutates afterwards,
    under the owning store's lock.
    """

    __slots__ = (
        "manifest",
        "pipeline",
        "shards",
        "fallback_tables",
        "artifact_n",
        "coverage",
        "n_items",
        "prefix_consistent",
    )

    def __init__(
        self,
        artifact_dir: Path,
        manifest: dict[str, Any],
        pipeline: Pipeline | None,
    ) -> None:
        self.manifest = manifest
        self.pipeline = pipeline
        self.fallback_tables: OrderedDict[int, np.ndarray] = OrderedDict()
        n = int(manifest["n"])
        # Routing invariants, precomputed once per (re)load: `covers` runs
        # on every request in the async tier, so it must not re-parse the
        # manifest each time.
        self.artifact_n = n
        self.coverage = int(manifest["n_users"])
        n_items = manifest.get("n_items")
        self.n_items = None if n_items is None else int(n_items)
        self.prefix_consistent = bool(manifest.get("prefix_consistent", False))
        self.shards: list[tuple[np.ndarray, np.ndarray]] = []
        for entry in manifest["shards"]:
            items = np.load(artifact_dir / entry["items"], mmap_mode="r")
            scores = np.load(artifact_dir / entry["scores"], mmap_mode="r")
            expected = (int(entry["stop"]) - int(entry["start"]), n)
            if tuple(items.shape) != expected or tuple(scores.shape) != expected:
                raise DataFormatError(
                    f"shard {entry['items']} in {artifact_dir} has shape "
                    f"{tuple(items.shape)}/{tuple(scores.shape)}, expected {expected}; "
                    "the artifact looks half-recompiled — re-run repro compile"
                )
            self.shards.append((items, scores))


class RecommendationStore:
    """Serves ``top_n`` lookups from a compiled artifact with live fallback.

    Parameters
    ----------
    artifact_dir:
        Directory written by :func:`repro.serving.compile_artifact`.
    pipeline:
        Optional live fallback: a fitted :class:`~repro.pipeline.Pipeline`
        or a saved-pipeline directory.  Its spec hash must match the one the
        artifact was compiled from.
    fallback_cache_size:
        Number of distinct ``n`` values whose live ``recommend_all`` tables
        are kept in the LRU cache.
    """

    def __init__(
        self,
        artifact_dir: str | Path,
        *,
        pipeline: Pipeline | str | Path | None = None,
        fallback_cache_size: int = 2,
    ) -> None:
        if fallback_cache_size < 1:
            raise ConfigurationError(
                f"fallback_cache_size must be >= 1, got {fallback_cache_size}"
            )
        self.artifact_dir = Path(artifact_dir)
        self._fallback_cache_size = int(fallback_cache_size)
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._pipeline_source = pipeline
        #: Cumulative serving counters (survive warm reloads).
        self.stats: dict[str, int] = {
            "artifact_rows": 0, "fallback_rows": 0, "fallback_builds": 0,
        }
        self.reload()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def reload(self) -> "RecommendationStore":
        """(Re-)read the manifest and swap in a fresh, validated state.

        This is the warm-reload hook of ``repro serve``: after an artifact
        is recompiled in place, a reload picks up the new shards without
        restarting the process.  The new state — manifest, spec-hash check
        against the fallback pipeline, empty caches — is built completely
        before the atomic swap, so a reload that raises (broken manifest,
        mismatched spec) leaves the store serving its previous state.
        """
        manifest = load_manifest(self.artifact_dir)
        pipeline = self._pipeline_source
        if pipeline is not None:
            pipeline = _resolve_pipeline(pipeline)
            expected = manifest.get("spec_sha256")
            if expected and spec_hash(pipeline) != expected:
                raise ConfigurationError(
                    f"fallback pipeline spec does not match the artifact in "
                    f"{self.artifact_dir}: the artifact was compiled from spec "
                    f"{expected[:12]}…, the pipeline hashes to {spec_hash(pipeline)[:12]}…"
                )
        self._state = _StoreState(self.artifact_dir, manifest, pipeline)
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> dict[str, Any]:
        """The artifact manifest of the currently served state."""
        return self._state.manifest

    @property
    def n(self) -> int:
        """Top-N size the artifact was compiled for."""
        return self._state.artifact_n

    @property
    def coverage(self) -> int:
        """Number of users the artifact stores rows for (``[0, coverage)``)."""
        return self._state.coverage

    @property
    def n_users_total(self) -> int:
        """Total users of the compiled pipeline (may exceed :attr:`coverage`)."""
        return int(self.manifest.get("n_users_total", self.manifest["n_users"]))

    @property
    def revision(self) -> int:
        """Monotone per-directory compile counter of the served artifact.

        Bumped by every compile or :func:`~repro.serving.update.compile_artifact_update`
        that swaps the manifest; artifacts from before the field existed
        count as revision 1.
        """
        return int(self.manifest.get("revision", 1))

    @property
    def prefix_consistent(self) -> bool:
        """Whether top-``k`` for ``k < n`` may be served by slicing stored rows."""
        return self._state.prefix_consistent

    @property
    def has_fallback(self) -> bool:
        """Whether a live pipeline is attached for uncovered lookups."""
        return self._state.pipeline is not None

    def covers(self, users: int | np.ndarray, n: int | None = None) -> bool:
        """Whether every requested row is served straight from mapped shards.

        This is the cheap routing predicate of the async serving tier: rows
        the artifact covers can be coalesced into one batched lookup that is
        guaranteed not to touch the (potentially slow) live fallback, while
        anything else — uncovered users, an ``n`` the artifact cannot slice,
        out-of-range values that :meth:`top_n` would reject — goes through
        the individual path so one bad request cannot fail a whole batch.
        """
        state = self._state
        artifact_n = state.artifact_n
        if n is None:
            n = artifact_n
        elif type(n) is not int:
            try:
                n = int(n)
            except (TypeError, ValueError):
                return False
        if n < 1:
            return False
        if state.n_items is not None and n > state.n_items:
            return False
        if n != artifact_n and not (n < artifact_n and state.prefix_consistent):
            return False
        if type(users) is int:  # the async tier's per-request hot path
            return 0 <= users < state.coverage
        try:
            with np.errstate(invalid="ignore"):  # NaN→int64 casts warn, not raise
                user_block = np.atleast_1d(np.asarray(users, dtype=np.int64))
        except (TypeError, ValueError, OverflowError):
            # A routing predicate must answer, not raise: NaN floats, object
            # dtypes and out-of-range values cannot be artifact rows, so they
            # route to the individual path (which rejects them per request).
            return False
        if user_block.size == 0:
            return True
        return bool(user_block.min() >= 0) and bool(user_block.max() < state.coverage)

    # ------------------------------------------------------------------ #
    # Artifact path
    # ------------------------------------------------------------------ #
    def _artifact_rows(
        self, state: _StoreState, users: np.ndarray, n: int, *, want_scores: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        shard_size = int(state.manifest["shard_size"])
        items_out = np.empty((users.size, n), dtype=np.int64)
        scores_out = np.empty((users.size, n), dtype=np.float64) if want_scores else None
        for row, user in enumerate(users):
            index = int(user) // shard_size
            items, scores = state.shards[index]
            offset = int(user) - index * shard_size
            items_out[row] = items[offset, :n]
            if scores_out is not None:
                scores_out[row] = scores[offset, :n]
        return items_out, scores_out

    # ------------------------------------------------------------------ #
    # Fallback path
    # ------------------------------------------------------------------ #
    def _fallback_table(self, state: _StoreState, n: int) -> np.ndarray:
        """The live ``recommend_all(n)`` item table, LRU-cached per ``n``."""
        if state.pipeline is None:
            raise ServingError(
                f"lookup needs live scoring (n={n}, artifact n={int(state.manifest['n'])}, "
                f"coverage={int(state.manifest['n_users'])} users) but no "
                "fallback pipeline is attached; pass pipeline= / --pipeline"
            )
        with self._lock:
            table = state.fallback_tables.get(n)
            if table is not None:
                state.fallback_tables.move_to_end(n)
                return table
        # Builds run under their own lock, not self._lock, so a slow
        # recommend_all never stalls artifact lookups.  They MUST serialize
        # against each other, though: recommend_all on a dynamic-coverage
        # GANC pipeline resets and mutates shared optimizer state, so
        # overlapping builds (even for different n) corrupt each other's
        # tables rather than merely duplicating work.
        with self._build_lock:
            with self._lock:
                table = state.fallback_tables.get(n)
                if table is not None:
                    state.fallback_tables.move_to_end(n)
                    return table
            table = state.pipeline.recommend_all(n).items
            with self._lock:
                self.stats["fallback_builds"] += 1
                state.fallback_tables[n] = table
                state.fallback_tables.move_to_end(n)
                while len(state.fallback_tables) > self._fallback_cache_size:
                    state.fallback_tables.popitem(last=False)
        return table

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def top_n(self, users: int | np.ndarray, n: int | None = None) -> np.ndarray:
        """Top-``n`` item rows for one user (1-D) or a block of users (2-D).

        Rows come from the memory-mapped artifact whenever it covers the
        (user, ``n``) pair and from the live fallback pipeline otherwise;
        both paths return exactly the bytes ``Pipeline.recommend_all(n)``
        would.  Rows are ``-1``-padded like every top-N block in the
        library.
        """
        items, _, _ = self._lookup(users, n, want_scores=False)
        return items

    def lookup(
        self, users: int | np.ndarray, n: int | None = None
    ) -> tuple[np.ndarray, np.ndarray | None, str]:
        """Like :meth:`top_n` but also returns scores and the serving source.

        Returns ``(items, scores, source)`` where ``scores`` is the stored
        diagnostic score block (``None`` when any requested row came from
        live fallback, which does not produce them) and ``source`` is
        ``"artifact"``, ``"live"`` or ``"mixed"``.
        """
        return self._lookup(users, n, want_scores=True)

    def lookup_rows(
        self, users: np.ndarray, n: int | None = None
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Batched lookup with *per-row* provenance for coalesced serving.

        Unlike :meth:`lookup` — whose single ``source`` string and
        all-or-nothing ``scores`` describe the batch as a whole — this
        returns ``(items, scores, covered)`` where ``covered`` marks, row by
        row, whether the answer came from the memory-mapped artifact.  A
        serving tier that coalesces many independent requests into one
        batched call uses the mask to rebuild each per-request response
        (``source``, diagnostic scores) exactly as an individual
        :meth:`lookup` would have produced it.

        ``scores`` is ``None`` when no row came from the artifact; otherwise
        it is a full block with the stored diagnostic scores in covered rows
        and NaN elsewhere (fallback rows do not produce scores).
        """
        user_block = np.atleast_1d(np.asarray(users, dtype=np.int64))
        return self._lookup_block(user_block, n, want_scores=True)

    def _lookup(
        self, users: int | np.ndarray, n: int | None, *, want_scores: bool
    ) -> tuple[np.ndarray, np.ndarray | None, str]:
        single = np.isscalar(users) or (isinstance(users, np.ndarray) and users.ndim == 0)
        user_block = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items, scores, covered = self._lookup_block(user_block, n, want_scores=want_scores)
        if not covered.all():
            scores = None  # live fallback does not produce diagnostic scores
        source = "artifact" if covered.all() else ("live" if not covered.any() else "mixed")
        if single:
            return items[0], None if scores is None else scores[0], source
        return items, scores, source

    def _lookup_block(
        self, user_block: np.ndarray, n: int | None, *, want_scores: bool
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        state = self._state  # one snapshot for the whole lookup
        manifest = state.manifest
        artifact_n = int(manifest["n"])
        coverage = int(manifest["n_users"])
        n_users_total = int(manifest.get("n_users_total", coverage))
        prefix_ok = bool(manifest.get("prefix_consistent", False))

        n = artifact_n if n is None else int(n)
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        # Bound n by the item universe: beyond it every extra column is -1
        # padding, and an absurd request (n=10**9) would otherwise allocate
        # an (n_users x n) fallback table before failing.
        n_items = manifest.get("n_items")
        if n_items is not None and n > int(n_items):
            raise ConfigurationError(
                f"n={n} exceeds the compiled item universe ({int(n_items)} items)"
            )
        if user_block.size and (user_block.min() < 0 or user_block.max() >= n_users_total):
            out_of_range = int(user_block.min()) if user_block.min() < 0 else int(user_block.max())
            raise ServingError(
                f"user index out of range: got {out_of_range}, "
                f"valid range is [0, {n_users_total})"
            )

        served_by_artifact = n == artifact_n or (n < artifact_n and prefix_ok)
        covered = (
            (user_block < coverage)
            if served_by_artifact
            else np.zeros(user_block.shape, dtype=bool)
        )
        items = np.full((user_block.size, n), -1, dtype=np.int64)
        scores: np.ndarray | None = None

        if covered.any():
            got_items, got_scores = self._artifact_rows(
                state, user_block[covered], n, want_scores=want_scores
            )
            items[covered] = got_items
            if want_scores and got_scores is not None:
                scores = np.full((user_block.size, n), np.nan, dtype=np.float64)
                scores[covered] = got_scores
        if not covered.all():
            table = self._fallback_table(state, n)
            items[~covered] = table[user_block[~covered]]

        with self._lock:
            self.stats["artifact_rows"] += int(covered.sum())
            self.stats["fallback_rows"] += int((~covered).sum())

        return items, scores, covered

    def __repr__(self) -> str:
        return (
            f"RecommendationStore(n={self.n}, coverage={self.coverage}/"
            f"{self.n_users_total}, fallback={self.has_fallback})"
        )


def open_store(
    artifact_dir: str | Path,
    pipeline_dir: str | Path | None = None,
    **kwargs: Any,
) -> RecommendationStore:
    """Convenience constructor mirroring the ``repro serve`` CLI arguments."""
    return RecommendationStore(artifact_dir, pipeline=pipeline_dir, **kwargs)
