"""Delta-only artifact recompilation: the ``repro compile --update`` engine.

The offline half of the paper's design recomputes everything from scratch on
every compile; once streaming ingestion (:mod:`repro.data.incremental`) can
append ratings to a fitted split, most of that work is redundant — a small
delta touches few users, and the shards of everyone else would come out byte
for byte identical.  This module closes the loop in three layers:

:func:`refit_pipeline`
    Absorb an extended split into a fitted pipeline, using the recommender's
    exact :meth:`~repro.recommenders.base.Recommender.delta_refit` when it
    has one and falling back to a full :meth:`fit` otherwise, and report
    whether the fitted state actually moved.
:func:`compile_artifact_update`
    Recompute top-N rows — for every covered user by default, or only for
    the users whose inputs changed when that is provably safe — then
    byte-compare each fresh shard against the live artifact and rewrite
    *only* the shards whose rows differ (identical shards are skipped,
    shards past the old coverage are appended).  The manifest, carrying a
    bumped ``revision``, is swapped last, so the documented
    recompile-then-SIGHUP workflow keeps working unchanged: a live store
    serves the old revision until it reloads, and a crash mid-update leaves
    it serving the old revision byte-identically.
:func:`ingest_and_update`
    The CLI composition: load a saved pipeline, ingest a delta CSV, refit,
    save the pipeline back in place, delta-compile the artifact.

Correctness contract (asserted in ``tests/test_serving_update.py``): after
an update, the artifact directory is byte-identical — every shard file and
every manifest field except ``revision`` — to a from-scratch
:func:`~repro.serving.artifact.compile_artifact` of the extended dataset.

When is the narrowed recompute safe?
------------------------------------
Skipping a user's recompute assumes their row could not have moved.  That
holds only when (a) the pipeline is a bare recommender — GANC's greedy
assignment couples every user through the shared coverage state, so any
change anywhere can reshuffle any row — and (b) the recommender's fitted
state is bitwise unchanged by the refit (``state_changed=False``), so
unchanged users score identically; the users whose *exclusion sets* changed
are exactly the ``changed_users`` the ingestion layer reports, and they are
recomputed.  In practice that narrows to cold-start arrivals (universe
growth without new ratings touching the model).  Everything else recomputes
all rows — the per-shard byte diff is the universal work-saving net either
way, and the one the ``rewrites only changed shards`` guarantee rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.incremental import extend_split_interactions, read_delta_csv
from repro.data.split import TrainTestSplit
from repro.exceptions import ConfigurationError
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import RecommendBlockTask, TopNScoresTask
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.spec import ExecutionSpec
from repro.serving.artifact import (
    ARTIFACT_FORMAT_VERSION,
    MANIFEST_FILE,
    _atomic_save,
    _atomic_write_json,
    _compute_rows,
    _resolve_pipeline,
    _shard_name,
    _sweep_stale,
    load_manifest,
    serving_environment,
    spec_hash,
)
from repro.utils.topn import iter_user_blocks


@dataclass(frozen=True)
class RefitReport:
    """How :func:`refit_pipeline` absorbed an extension.

    Attributes
    ----------
    kind:
        ``"delta"`` when the recommender's exact delta path ran, ``"full"``
        when it fell back to a from-scratch fit.
    state_changed:
        Whether the recommender's persisted state differs bitwise from
        before the refit.  ``False`` is what licenses the narrowed recompute
        of :func:`compile_artifact_update`.
    """

    kind: str
    state_changed: bool


@dataclass(frozen=True)
class UpdateReport:
    """What :func:`compile_artifact_update` did to the artifact directory.

    ``shards_skipped + shards_rewritten + shards_appended`` equals the shard
    count of the updated artifact; ``users_recomputed`` is how many top-N
    rows were actually recomputed (the rest were carried over from the live
    artifact and proven unchanged by the byte diff).
    """

    artifact_dir: Path
    revision: int
    n_users: int
    users_recomputed: int
    shards_skipped: int
    shards_rewritten: int
    shards_appended: int


def refit_pipeline(
    pipeline: Pipeline, split: TrainTestSplit
) -> tuple[Pipeline, RefitReport]:
    """Absorb an extended split into a fitted pipeline.

    ``split`` must be the extension produced by
    :func:`repro.data.incremental.extend_split` (or its raw-id/CSV
    front-ends) over ``pipeline.split``.  The recommender is refitted via
    its exact :meth:`~repro.recommenders.base.Recommender.delta_refit` when
    supported, with a full :meth:`fit` fallback otherwise — the refitted
    model is bit-identical to a from-scratch fit either way.  Everything
    else is rebuilt from the spec on the new split: for GANC pipelines the
    preference θ is re-estimated and the coverage state re-initialized,
    exactly as a fresh ``Pipeline(spec).fit(split)`` would (a loaded
    pipeline's injected θ belongs to the *old* train and must not leak
    forward).

    The refit mutates ``pipeline``'s recommender in place (it is shared with
    the returned pipeline); the old pipeline object should be discarded.
    """
    pipeline._check_fitted()
    recommender = pipeline.recommender
    try:
        recommender.delta_refit(split.train)
        kind = "delta"
        # Implementations record whether any persisted state actually moved
        # (pure cold-start arrivals leave it bitwise intact); True is the
        # conservative default for models that never set it.
        state_changed = bool(getattr(recommender, "delta_changed_state", True))
    except ConfigurationError:
        recommender.fit(split.train)
        kind = "full"
        state_changed = True
    refitted = Pipeline(pipeline.spec, recommender=recommender).fit(split)
    return refitted, RefitReport(kind=kind, state_changed=state_changed)


def _narrowed_rows(
    pipeline: Pipeline,
    artifact_dir: Path,
    manifest: dict[str, Any],
    n: int,
    coverage: int,
    changed_users: np.ndarray,
    *,
    block_size: int | None,
    executor: Executor | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Carry over live rows, recompute only changed + newly-arrived users."""
    old_coverage = int(manifest["n_users"])
    items = np.full((coverage, n), -1, dtype=np.int64)
    scores = np.full((coverage, n), np.nan, dtype=np.float64)
    for entry in manifest["shards"]:
        start, stop = int(entry["start"]), int(entry["stop"])
        items[start:stop] = np.load(artifact_dir / entry["items"], mmap_mode="r")
        scores[start:stop] = np.load(artifact_dir / entry["scores"], mmap_mode="r")

    changed = np.atleast_1d(np.asarray(changed_users, dtype=np.int64))
    arrived = np.arange(old_coverage, coverage, dtype=np.int64)
    todo = np.union1d(changed, arrived)
    todo = todo[(todo >= 0) & (todo < coverage)]
    if todo.size:
        fan_out = pipeline._executor() if executor is None else executor
        blocks = [todo[block] for block in iter_user_blocks(todo.size, block_size)]
        rec_task = RecommendBlockTask(pipeline.recommender, n)
        for block, rows in zip(blocks, fan_out.map_blocks(rec_task, blocks)):
            items[block] = rows
        # Second pass so the score task sees the final item table (it
        # indexes the table globally, like the full compile's score pass).
        score_task = TopNScoresTask(pipeline.recommender, items)
        for block, rows in zip(blocks, fan_out.map_blocks(score_task, blocks)):
            scores[block] = rows
    return items, scores, int(todo.size)


def compile_artifact_update(
    pipeline: Pipeline | str | Path,
    artifact_dir: str | Path,
    *,
    changed_users: np.ndarray | None = None,
    state_changed: bool = True,
    block_size: int | None = None,
    executor: Executor | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> UpdateReport:
    """Bring a live artifact up to date with a refitted pipeline, delta-only.

    The artifact's own layout (``n``, ``shard_size``, coverage policy) is
    authoritative — an update never changes how an artifact is sharded, only
    which shard files need new bytes.  Partial artifacts (compiled with
    ``--max-users``) stay partial; full artifacts grow to cover newly
    arrived users with appended shards.

    Parameters
    ----------
    pipeline:
        The refitted pipeline (see :func:`refit_pipeline`) or the directory
        of one saved with :meth:`Pipeline.save`.  Its spec must hash to the
        artifact's ``spec_sha256`` and its train data must extend the
        compiled dataset.
    changed_users:
        Dense indices of users whose train inputs changed (the ingestion
        layer's :attr:`~repro.data.incremental.SplitExtension.changed_users`).
        ``None`` means unknown — every covered row is recomputed.
    state_changed:
        Whether the refit changed the recommender's fitted state
        (:attr:`RefitReport.state_changed`).  Only ``False`` — together with
        ``changed_users`` and a bare-recommender pipeline — enables the
        narrowed recompute; the default assumes the worst.
    block_size, executor, n_jobs, backend:
        Fan-out of the recompute pass, exactly as in
        :func:`~repro.serving.artifact.compile_artifact`.
    """
    started = time.time()
    pipeline = _resolve_pipeline(pipeline)
    if not pipeline.is_fitted:
        raise ConfigurationError(
            "compile_artifact_update needs a fitted pipeline (call fit() or load a saved one)"
        )
    artifact_dir = Path(artifact_dir)
    manifest = load_manifest(artifact_dir)

    expected = manifest.get("spec_sha256")
    if expected and spec_hash(pipeline) != expected:
        raise ConfigurationError(
            f"pipeline spec does not match the artifact in {artifact_dir}: the "
            f"artifact was compiled from spec {expected[:12]}…, the pipeline "
            f"hashes to {spec_hash(pipeline)[:12]}…; run a full repro compile "
            "for a new configuration"
        )

    n = int(manifest["n"])
    shard_size = int(manifest["shard_size"])
    old_coverage = int(manifest["n_users"])
    old_total = int(manifest.get("n_users_total", old_coverage))
    new_total = pipeline.split.train.n_users
    if new_total < old_total:
        raise ConfigurationError(
            f"--update needs an extension of the compiled dataset: the pipeline "
            f"has {new_total} users but the artifact in {artifact_dir} was "
            f"compiled from {old_total}"
        )
    coverage = old_coverage if old_coverage < old_total else new_total

    original_execution = None
    if executor is not None or n_jobs is not None or backend is not None:
        chosen = executor if executor is not None else resolve_executor(None, n_jobs, backend)
        original_execution = pipeline.spec.execution
        pipeline.set_execution(ExecutionSpec(backend=chosen.backend, n_jobs=chosen.n_jobs))

    narrowed = (
        changed_users is not None
        and not state_changed
        and pipeline.model is None
    )
    try:
        if narrowed:
            items, scores, users_recomputed = _narrowed_rows(
                pipeline,
                artifact_dir,
                manifest,
                n,
                coverage,
                changed_users,
                block_size=block_size,
                executor=executor,
            )
        else:
            items, scores = _compute_rows(
                pipeline, n, coverage, block_size=block_size, executor=executor
            )
            users_recomputed = coverage
    finally:
        if original_execution is not None:
            pipeline.set_execution(original_execution)

    old_shards = manifest["shards"]
    shards: list[dict[str, Any]] = []
    skipped = rewritten = appended = 0
    for index, start in enumerate(range(0, coverage, shard_size)):
        stop = min(start + shard_size, coverage)
        items_name = _shard_name("items", index)
        scores_name = _shard_name("scores", index)
        items_block = items[start:stop]
        scores_block = scores[start:stop]
        unchanged = False
        if index < len(old_shards):
            entry = old_shards[index]
            old_items = np.load(artifact_dir / entry["items"], mmap_mode="r")
            old_scores = np.load(artifact_dir / entry["scores"], mmap_mode="r")
            unchanged = (
                entry["items"] == items_name
                and entry["scores"] == scores_name
                and int(entry["start"]) == start
                and int(entry["stop"]) == stop
                and old_items.shape == items_block.shape
                and old_items.dtype == items_block.dtype
                and old_scores.shape == scores_block.shape
                and old_scores.dtype == scores_block.dtype
                and old_items.tobytes() == items_block.tobytes()
                and old_scores.tobytes() == scores_block.tobytes()
            )
        if unchanged:
            # The live file already holds exactly these bytes; leaving it in
            # place (same inode) is what makes the update delta-only.
            skipped += 1
        else:
            _atomic_save(artifact_dir / items_name, items_block)
            _atomic_save(artifact_dir / scores_name, scores_block)
            if index < len(old_shards):
                rewritten += 1
            else:
                appended += 1
        shards.append(
            {"items": items_name, "scores": scores_name, "start": start, "stop": stop}
        )

    revision = int(manifest.get("revision", 1)) + 1
    new_manifest: dict[str, Any] = {
        "format": ARTIFACT_FORMAT_VERSION,
        "n": n,
        "n_items": pipeline.split.train.n_items,
        "n_users": coverage,
        "n_users_total": new_total,
        "revision": revision,
        "shard_size": shard_size,
        "shards": shards,
        "spec_sha256": spec_hash(pipeline),
        "algorithm": pipeline.algorithm,
        "mode": "ganc" if pipeline.model is not None else "recommender",
        "prefix_consistent": pipeline.model is None,
        "environment": serving_environment(),
        "exact": bool(getattr(pipeline.recommender, "exact", True)),
        "score_dtype": str(getattr(pipeline.recommender, "dtype", "float64")),
    }
    _atomic_write_json(artifact_dir / MANIFEST_FILE, new_manifest)

    referenced = {entry["items"].split("/")[-1] for entry in shards}
    referenced |= {entry["scores"].split("/")[-1] for entry in shards}
    _sweep_stale(artifact_dir, referenced, started)
    return UpdateReport(
        artifact_dir=artifact_dir,
        revision=revision,
        n_users=coverage,
        users_recomputed=users_recomputed,
        shards_skipped=skipped,
        shards_rewritten=rewritten,
        shards_appended=appended,
    )


def ingest_and_update(
    pipeline_dir: str | Path,
    artifact_dir: str | Path,
    delta: str | Path,
    *,
    block_size: int | None = None,
    executor: Executor | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> tuple[Pipeline, RefitReport, UpdateReport]:
    """The full ``repro compile --update --delta FILE`` round trip.

    Loads the saved pipeline, ingests the delta CSV
    (:func:`~repro.data.incremental.read_delta_csv` +
    :func:`~repro.data.incremental.extend_split_interactions`), refits,
    saves the extended pipeline back into ``pipeline_dir`` (so the next
    update extends from here), then delta-compiles the artifact.
    """
    pipeline_dir = Path(pipeline_dir)
    pipeline = Pipeline.load(pipeline_dir)
    extension = extend_split_interactions(pipeline.split, read_delta_csv(delta))
    refitted, refit_report = refit_pipeline(pipeline, extension.split)
    refitted.save(pipeline_dir)
    update_report = compile_artifact_update(
        refitted,
        artifact_dir,
        changed_users=extension.changed_users,
        state_changed=refit_report.state_changed,
        block_size=block_size,
        executor=executor,
        n_jobs=n_jobs,
        backend=backend,
    )
    return refitted, refit_report, update_report
