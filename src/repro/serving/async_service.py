"""High-concurrency asyncio serving tier with request coalescing.

``repro serve --async`` stands this tier up.  The legacy
:mod:`repro.serving.service` answers every request with its own
single-user store lookup; under concurrency that leaves the batched lookup
path — ~10x cheaper per row than single lookups in ``BENCH_serving.json``
— unused.  This tier harvests it:

Request coalescing
    In-flight ``GET /recommend`` requests whose rows the memory-mapped
    artifact covers are queued in a :class:`CoalescingBatcher` and flushed
    as one ``store.lookup_rows(users, n)`` call — at ``coalesce_max``
    queued lookups (default 64) or after ``coalesce_window_us``
    microseconds (default 500; ``0`` flushes on the next event-loop tick),
    whichever comes first.  Requests the artifact cannot answer directly
    (uncovered users, an ``n`` needing live fallback, out-of-range values)
    resolve individually in a thread so one bad or slow request never
    stalls a batch.

Explicit batching
    ``POST /recommend/batch`` with ``{"users": [...], "n": N}`` answers a
    multi-user query through the same batched path in one round trip; each
    element of ``results`` is byte-identical to the corresponding single
    ``GET /recommend`` response payload.

Pre-fork workers
    ``serve_async(..., workers=K)`` binds one listening socket, forks ``K``
    worker processes that share it (the kernel load-balances accepts), and
    gives every worker its *own* event loop and its own
    :class:`~repro.serving.store.RecommendationStore` mmap handles.  The
    parent forwards ``SIGHUP`` (warm swap in every worker) and
    ``SIGTERM``/``SIGINT`` (shutdown).

Everything user-visible is unchanged: responses are built by the payload
helpers shared with the legacy tier (:func:`repro.serving.service.json_body`
and friends), so ``/recommend`` bodies are byte-identical across tiers, and
``/healthz``, ``/manifest`` and the ``SIGHUP`` warm swap keep working.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.exceptions import ConfigurationError, ReproError, ServingError
from repro.pipeline.pipeline import Pipeline
from repro.serving.metrics import METRICS_CONTENT_TYPE, ServingMetrics
from repro.serving.service import healthz_payload, json_body, recommend_body, recommend_payload
from repro.serving.store import RecommendationStore

logger = logging.getLogger("repro.serving")

#: Flush a micro-batch once this many lookups are queued.
DEFAULT_COALESCE_MAX = 64
#: ... or once the oldest queued lookup has waited this long (microseconds).
DEFAULT_COALESCE_WINDOW_US = 500

#: Upper bound on a request head and on a POST body (separately).
MAX_REQUEST_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class _HTTPError(Exception):
    """Internal: an HTTP error response with a status code and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _TextPayload:
    """A non-JSON response body (the ``/metrics`` exposition text)."""

    __slots__ = ("body",)

    def __init__(self, body: bytes) -> None:
        self.body = body


class CoalescingBatcher:
    """Coalesces concurrent artifact lookups into batched store calls.

    Lookups are grouped by their resolved ``n`` (one store call serves one
    ``n``) and flushed when ``max_batch`` lookups are queued or after
    ``window_us`` microseconds, whichever comes first; ``window_us=0``
    flushes on the next event-loop tick, which coalesces exactly the
    requests that arrived in the same loop iteration with no added latency.

    Only lookups that :meth:`RecommendationStore.covers` approved are
    submitted, so a flush is a pure memory-mapped read.  If a warm swap
    shrinks the artifact between enqueue and flush, the affected batch is
    re-resolved request by request in worker threads — a live-fallback
    build must never run on the event loop.
    """

    def __init__(
        self,
        store: RecommendationStore,
        stats: dict[str, int],
        *,
        max_batch: int = DEFAULT_COALESCE_MAX,
        window_us: int = DEFAULT_COALESCE_WINDOW_US,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"coalesce_max must be >= 1, got {max_batch}")
        if window_us < 0:
            raise ConfigurationError(f"coalesce_window_us must be >= 0, got {window_us}")
        self._store = store
        self._max_batch = int(max_batch)
        self._window_s = int(window_us) / 1e6
        self.stats = stats
        self._pending: dict[int, list[tuple[int, asyncio.Future]]] = {}
        self._count = 0
        self._handle: asyncio.Handle | None = None
        #: Strong refs to in-flight individual re-resolutions (task GC guard).
        self._tasks: set[asyncio.Task] = set()

    def submit(self, user: int, n: int) -> "asyncio.Future[tuple]":
        """Queue one covered ``(user, n)`` lookup; resolves to a lookup row.

        The returned future resolves to ``(items, scores, source)`` exactly
        as :meth:`RecommendationStore.lookup` would return for the single
        user.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.setdefault(n, []).append((user, future))
        self._count += 1
        if self._count >= self._max_batch:
            if self._handle is not None:
                self._handle.cancel()
                self._handle = None
            self.flush()
        elif self._handle is None:
            if self._window_s <= 0:
                self._handle = loop.call_soon(self._scheduled_flush)
            else:
                self._handle = loop.call_later(self._window_s, self._scheduled_flush)
        return future

    def _scheduled_flush(self) -> None:
        self._handle = None
        self.flush()

    def flush(self) -> None:
        """Dispatch every queued lookup now (one store call per ``n``)."""
        pending, self._pending = self._pending, {}
        count, self._count = self._count, 0
        if not pending:
            return
        self.stats["largest_batch"] = max(self.stats["largest_batch"], count)
        for n, batch in pending.items():
            self._dispatch(n, batch)

    def _dispatch(self, n: int, batch: list[tuple[int, asyncio.Future]]) -> None:
        users = np.fromiter((user for user, _ in batch), dtype=np.int64, count=len(batch))
        store = self._store
        if store.covers(users, n):
            try:
                items, scores, covered = store.lookup_rows(users, n)
            except ReproError:
                pass  # fall through to individual resolution below
            else:
                self.stats["batches"] += 1
                self.stats["batched_rows"] += len(batch)
                for row, (_, future) in enumerate(batch):
                    if future.done():
                        continue
                    row_scores = scores[row] if scores is not None and covered[row] else None
                    source = "artifact" if covered[row] else "live"
                    future.set_result((items[row], row_scores, source))
                return
        # The artifact no longer covers this batch (a warm swap happened
        # between enqueue and flush): resolve each row individually off the
        # loop so a fallback build cannot block every other response.
        loop = asyncio.get_running_loop()
        for user, future in batch:
            task = loop.create_task(self._resolve_single(user, n, future))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _resolve_single(self, user: int, n: int, future: asyncio.Future) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, self._store.lookup, user, n)
        except Exception as exc:  # noqa: BLE001 - mapped to an HTTP status upstream
            if not future.done():
                future.set_exception(exc)
        else:
            if not future.done():
                future.set_result(result)


class AsyncRecommendationService:
    """Asyncio HTTP service over one :class:`RecommendationStore`.

    One instance owns one store handle, one coalescing batcher and the
    serving counters surfaced by ``/healthz``.  :meth:`start` opens the
    listening socket on the running event loop; under pre-fork each worker
    process builds its own instance.
    """

    def __init__(
        self,
        store: RecommendationStore,
        *,
        coalesce_max: int = DEFAULT_COALESCE_MAX,
        coalesce_window_us: int = DEFAULT_COALESCE_WINDOW_US,
        verbose: bool = False,
    ) -> None:
        self.store = store
        self.verbose = verbose
        self.started = time.monotonic()
        self.reloads = 0
        self.reload_failures = 0
        #: Coalescing counters: store calls, rows through them, the largest
        #: flushed batch, and rows that took the individual path.
        self.coalescing: dict[str, int] = {
            "batches": 0, "batched_rows": 0, "largest_batch": 0, "single_rows": 0,
        }
        self.metrics = ServingMetrics()
        self._batcher = CoalescingBatcher(
            store, self.coalescing, max_batch=coalesce_max, window_us=coalesce_window_us
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        sock: socket.socket | None = None,
    ) -> asyncio.AbstractServer:
        """Open the listening socket and begin accepting connections.

        Pass ``sock`` to serve on an already-bound socket (the pre-fork
        path); otherwise binds ``host:port`` (``port=0`` picks an ephemeral
        port).
        """
        loop = asyncio.get_running_loop()
        if sock is not None:
            server = await loop.create_server(lambda: _HttpProtocol(self), sock=sock)
        else:
            server = await loop.create_server(lambda: _HttpProtocol(self), host=host, port=port)
        self._server = server
        return server

    def reload(self) -> None:
        """Warm-reload the store (the SIGHUP hook); never raises."""
        try:
            self.store.reload()
            self.reloads += 1
        except ReproError as exc:
            # Same contract as the legacy tier: a broken artifact
            # mid-rewrite must not kill a serving process.
            self.reload_failures += 1
            logger.error("reload failed, keeping previous state: %s", exc)

    #: /metrics endpoint labels (anything else counts as "other").
    _ENDPOINTS = {
        "/recommend": "recommend",
        "/recommend/batch": "recommend_batch",
        "/healthz": "healthz",
        "/manifest": "manifest",
        "/metrics": "metrics",
    }

    async def _respond(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any] | bytes | "_TextPayload"]:
        """Route one request; returns (status, JSON payload or encoded body)."""
        parsed = urlsplit(target)
        path = parsed.path
        start = time.perf_counter()
        try:
            if path == "/recommend":
                self._require_method(method, "GET", path)
                return 200, await self._recommend(parsed.query)
            if path == "/recommend/batch":
                self._require_method(method, "POST", path)
                return 200, await self._recommend_batch(body)
            if path == "/healthz":
                self._require_method(method, "GET", path)
                return 200, self._healthz()
            if path == "/manifest":
                self._require_method(method, "GET", path)
                return 200, self.store.manifest
            if path == "/metrics":
                self._require_method(method, "GET", path)
                return 200, self._metrics()
            raise _HTTPError(404, f"unknown path {path!r}")
        except _HTTPError as exc:
            return exc.status, {"error": exc.message}
        except ServingError as exc:
            return 404, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        finally:
            self.metrics.observe(
                self._ENDPOINTS.get(path, "other"), time.perf_counter() - start
            )

    @staticmethod
    def _require_method(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed for {path!r}")

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    async def _lookup_row(self, user: int, n: int | None) -> tuple:
        """One ``(items, scores, source)`` row, coalescing when possible."""
        store = self.store
        if store.covers(user, n):
            resolved = store.n if n is None else int(n)
            return await self._batcher.submit(int(user), resolved)
        # Anything the artifact cannot answer directly — live fallback,
        # out-of-range values that must raise the store's own error —
        # resolves individually in a worker thread.
        self.coalescing["single_rows"] += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.store.lookup, int(user), n)

    async def _recommend(self, query: str) -> bytes:
        simple = _simple_query_params(query)
        if simple is None:  # escaped or ambiguous query: defer to the stdlib parser
            parsed = parse_qs(query)
            user_text = parsed["user"][0] if "user" in parsed else None
            n_text = parsed["n"][0] if "n" in parsed else None
        else:
            user_text, n_text = simple
        if user_text is None:
            raise _HTTPError(400, "missing required query parameter 'user'")
        try:
            user = int(user_text)
            n = int(n_text) if n_text is not None else None
        except ValueError:
            raise _HTTPError(400, "'user' and 'n' must be integers") from None
        items, scores, source = await self._lookup_row(user, n)
        return recommend_body(recommend_payload(self.store, user, n, items, scores, source))

    async def _recommend_batch(self, body: bytes) -> dict[str, Any]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(parsed, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        unknown = set(parsed) - {"users", "n"}
        if unknown:
            raise _HTTPError(400, f"unknown key(s) in batch request: {sorted(unknown)}")
        users = parsed.get("users")
        if (
            not isinstance(users, list)
            or not users
            or not all(isinstance(u, int) and not isinstance(u, bool) for u in users)
        ):
            raise _HTTPError(400, "'users' must be a non-empty array of integers")
        n = parsed.get("n")
        if n is not None and (isinstance(n, bool) or not isinstance(n, int)):
            raise _HTTPError(400, "'n' must be an integer")

        user_block = np.asarray(users, dtype=np.int64)
        loop = asyncio.get_running_loop()
        items, scores, covered = await loop.run_in_executor(
            None, self.store.lookup_rows, user_block, n
        )
        results = [
            recommend_payload(
                self.store,
                int(user),
                n,
                items[row],
                scores[row] if scores is not None and covered[row] else None,
                "artifact" if covered[row] else "live",
            )
            for row, user in enumerate(users)
        ]
        return {"count": len(results), "results": results}

    def _healthz(self) -> dict[str, Any]:
        payload = healthz_payload(
            self.store,
            uptime_seconds=round(time.monotonic() - self.started, 3),
            reloads=self.reloads,
            reload_failures=self.reload_failures,
        )
        payload["tier"] = "async"
        payload["coalescing"] = dict(self.coalescing)
        return payload

    def _metrics(self) -> "_TextPayload":
        text = self.metrics.render(
            store_stats=self.store.stats,
            reloads=self.reloads,
            reload_failures=self.reload_failures,
            extra_counters={
                f"coalesce_{name}": value for name, value in self.coalescing.items()
            },
        )
        return _TextPayload(text.encode("utf-8"))


class _HttpProtocol(asyncio.Protocol):
    """One keep-alive HTTP/1.1 connection, handled straight on the transport.

    A raw :class:`asyncio.Protocol` instead of the streams API: under
    sustained load every request pays the connection machinery, and
    dropping the per-read futures (``readuntil``/``drain``) roughly halves
    the fixed per-request event-loop cost.  ``data_received`` accumulates
    bytes, slices complete requests out of the buffer, and spawns one task
    per request; pipelined responses are written strictly in request order
    (each handler awaits its predecessor before writing).
    """

    def __init__(self, service: AsyncRecommendationService) -> None:
        self.service = service
        self.transport: asyncio.Transport | None = None
        self.buffer = bytearray()
        #: Head of the request whose body is still incomplete.
        self.head: tuple[str, str, str, dict[str, str]] | None = None
        self.body_length = 0
        self.closing = False
        #: The previous request's handler task — or, on the fast path, the
        #: batcher future whose callback writes the response (the
        #: response-ordering chain; both are awaitable).
        self.tail: asyncio.Task | asyncio.Future | None = None
        #: Strong refs to in-flight handler tasks (task GC guard).
        self.tasks: set[asyncio.Task] = set()

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        """Keep the transport; responses are written straight to it."""
        self.transport = transport  # type: ignore[assignment]

    def connection_lost(self, exc: Exception | None) -> None:
        """Drop the transport so in-flight handlers skip their writes."""
        self.transport = None

    def data_received(self, data: bytes) -> None:
        """Buffer bytes, carve out complete requests, dispatch handlers."""
        if self.closing:
            return
        buf = self.buffer
        buf += data
        while True:
            if self.head is None:
                end = buf.find(b"\r\n\r\n")
                if end < 0:
                    if len(buf) > MAX_REQUEST_BYTES:
                        self._reject(431, "request head too large")
                    return
                head = _parse_head(bytes(buf[:end]))
                if head is None:
                    self._reject(400, "malformed HTTP request")
                    return
                del buf[: end + 4]
                length_text = head[3].get("content-length")
                if length_text is None:
                    if head[0] == "POST":
                        self._reject(411, "POST requires a Content-Length header")
                        return
                    length = 0
                else:
                    try:
                        length = int(length_text)
                    except ValueError:
                        length = -1
                    if length < 0:
                        self._reject(400, f"invalid Content-Length {length_text!r}")
                        return
                    if length > MAX_REQUEST_BYTES:
                        self._reject(413, f"request body exceeds {MAX_REQUEST_BYTES} bytes")
                        return
                self.head = head
                self.body_length = length
            if len(buf) < self.body_length:
                return
            body = bytes(buf[: self.body_length])
            del buf[: self.body_length]
            method, target, version, headers = self.head
            self.head = None
            keep_alive = _keep_alive(version, headers)
            if (
                keep_alive
                and method == "GET"
                and not body
                and (self.tail is None or self.tail.done())
                and target.startswith("/recommend?")
                and "#" not in target
                and self._dispatch_fast(target[11:])
            ):
                continue
            task = asyncio.get_running_loop().create_task(
                self._handle(method, target, body, keep_alive, self.tail)
            )
            self.tail = task
            self.tasks.add(task)
            task.add_done_callback(self.tasks.discard)
            if not keep_alive:
                # The handler closes the transport after this response; any
                # pipelined bytes behind a Connection: close request are dead.
                self.closing = True
                return

    def _dispatch_fast(self, query: str) -> bool:
        """Dispatch a covered keep-alive ``GET /recommend`` without a task.

        The hot path under sustained load: the coalesced lookup's future
        gets one done-callback that writes the response straight to the
        transport, skipping per-request task creation and the coroutine
        round trip.  Returns ``False`` — leaving the request to the general
        handler, which produces identical bytes — for anything unusual:
        escaped queries, malformed values, rows the artifact cannot
        coalesce, or an in-flight predecessor (response ordering).
        """
        simple = _simple_query_params(query)
        if simple is None:
            return False
        user_text, n_text = simple
        if user_text is None:
            return False
        try:
            user = int(user_text)
            n = None if n_text is None else int(n_text)
        except ValueError:
            return False
        store = self.service.store
        if not store.covers(user, n):
            return False
        start = time.perf_counter()
        future = self.service._batcher.submit(user, store.n if n is None else n)
        self.tail = future
        future.add_done_callback(self._fast_callback(user, n, start))
        return True

    def _fast_callback(self, user: int, n: int | None, start: float):
        """Build the done-callback that writes one fast-path response."""

        def finish(future: asyncio.Future) -> None:
            """Encode the resolved lookup row and write it to the transport."""
            self.service.metrics.observe("recommend", time.perf_counter() - start)
            transport = self.transport
            if transport is None or transport.is_closing():
                future.exception()  # consume; the peer is gone
                return
            try:
                items, scores, source = future.result()
                body = recommend_body(
                    recommend_payload(self.service.store, user, n, items, scores, source)
                )
                transport.write(b"%s%d\r\n\r\n%s" % (_HEAD_200_KEEP_ALIVE, len(body), body))
            except ServingError as exc:
                transport.write(_response_bytes(404, {"error": str(exc)}, keep_alive=True))
            except ReproError as exc:
                transport.write(_response_bytes(400, {"error": str(exc)}, keep_alive=True))
            except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
                logger.exception("unhandled error serving /recommend for user %s", user)
                transport.write(
                    _response_bytes(500, {"error": "internal server error"}, keep_alive=False)
                )
                transport.close()

        return finish

    async def _handle(
        self,
        method: str,
        target: str,
        body: bytes,
        keep_alive: bool,
        previous: "asyncio.Task | asyncio.Future | None",
    ) -> None:
        try:
            status, payload = await self.service._respond(method, target, body)
        except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
            logger.exception("unhandled error serving %s", target)
            status, payload = 500, {"error": "internal server error"}
            keep_alive = False
        response = _response_bytes(status, payload, keep_alive=keep_alive)
        if previous is not None:
            with contextlib.suppress(Exception):
                await previous  # pipelined responses leave in request order
        transport = self.transport
        if transport is not None and not transport.is_closing():
            transport.write(response)
            if not keep_alive:
                transport.close()

    def _reject(self, status: int, message: str) -> None:
        """Answer a malformed request and close; parsing cannot continue."""
        self.closing = True
        self.buffer.clear()
        response = _response_bytes(status, {"error": message}, keep_alive=False)
        if self.tail is None or self.tail.done():
            self._write_closing(response)
        else:  # keep response order even behind in-flight pipelined requests
            task = asyncio.get_running_loop().create_task(
                self._write_closing_after(self.tail, response)
            )
            self.tasks.add(task)
            task.add_done_callback(self.tasks.discard)

    async def _write_closing_after(
        self, previous: "asyncio.Task | asyncio.Future", response: bytes
    ) -> None:
        with contextlib.suppress(Exception):
            await previous
        self._write_closing(response)

    def _write_closing(self, response: bytes) -> None:
        transport = self.transport
        if transport is not None and not transport.is_closing():
            transport.write(response)
            transport.close()


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
def _simple_query_params(query: str) -> tuple[str | None, str | None] | None:
    """``(user, n)`` raw values for an unambiguous ``/recommend`` query.

    The per-request fast path: ``user=U[&n=N]`` with no escapes costs a
    split instead of a full ``parse_qs`` pass.  Anything else — percent
    escapes, blank or repeated parameters, unknown keys — returns ``None``
    so the caller falls back to ``parse_qs`` and keeps behaviour (and error
    bodies) identical to the legacy tier.
    """
    if "%" in query or "+" in query or ";" in query:
        return None
    user_text = n_text = None
    if query:
        for part in query.split("&"):
            key, sep, value = part.partition("=")
            if not sep or not value:
                return None
            if key == "user" and user_text is None:
                user_text = value
            elif key == "n" and n_text is None:
                n_text = value
            else:
                return None
    return user_text, n_text


def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]] | None:
    """Parse a request head into (method, target, version, headers)."""
    try:
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, version = parts
        headers: dict[str, str] = {}
        for raw in header_block.split(b"\r\n"):
            if not raw:
                continue
            name, sep, value = raw.partition(b":")
            if not sep:
                return None
            headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
        return method, target, version, headers
    except UnicodeDecodeError:
        return None


def _keep_alive(version: str, headers: dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        return connection != "close"
    return connection == "keep-alive"


_HEAD_200_KEEP_ALIVE = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: "


def _response_bytes(
    status: int, payload: dict[str, Any] | bytes | _TextPayload, *, keep_alive: bool
) -> bytes:
    if type(payload) is _TextPayload:
        body = payload.body
        content_type = METRICS_CONTENT_TYPE
    else:
        body = payload if type(payload) is bytes else json_body(payload)
        content_type = "application/json"
        if status == 200 and keep_alive:  # the hot path: one prebuilt head
            return b"%s%d\r\n\r\n%s" % (_HEAD_200_KEEP_ALIVE, len(body), body)
    reason = _REASONS.get(status, "Error")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if not keep_alive:
        head += "Connection: close\r\n"
    return head.encode("latin-1") + b"\r\n" + body


# --------------------------------------------------------------------------- #
# Construction and embedding helpers
# --------------------------------------------------------------------------- #
def build_async_service(
    artifact_dir: str | Path,
    *,
    pipeline: Pipeline | str | Path | None = None,
    fallback_cache_size: int = 2,
    coalesce_max: int | None = None,
    coalesce_window_us: int | None = None,
    verbose: bool = False,
) -> AsyncRecommendationService:
    """Construct a (not yet started) async service over a fresh store handle."""
    store = RecommendationStore(
        artifact_dir, pipeline=pipeline, fallback_cache_size=fallback_cache_size
    )
    return AsyncRecommendationService(
        store,
        coalesce_max=DEFAULT_COALESCE_MAX if coalesce_max is None else coalesce_max,
        coalesce_window_us=(
            DEFAULT_COALESCE_WINDOW_US if coalesce_window_us is None else coalesce_window_us
        ),
        verbose=verbose,
    )


class AsyncServiceHandle:
    """A running async service in a daemon thread (tests, benchmarks)."""

    def __init__(
        self,
        service: AsyncRecommendationService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop_event: asyncio.Event,
        address: tuple[str, int],
    ) -> None:
        self.service = service
        self.thread = thread
        self._loop = loop
        self._stop = stop_event
        self.address = address

    @property
    def base_url(self) -> str:
        """The ``http://host:port`` root of the running service."""
        host, port = self.address
        return f"http://{host}:{port}"

    def reload(self) -> None:
        """Trigger a warm reload on the service's event loop (thread-safe)."""
        self._loop.call_soon_threadsafe(self.service.reload)

    def stop(self) -> None:
        """Stop the server and join its thread."""
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout=10)


def start_async_in_thread(
    service: AsyncRecommendationService, *, host: str = "127.0.0.1", port: int = 0
) -> AsyncServiceHandle:
    """Run ``service`` on its own event loop in a daemon thread.

    The embedding counterpart of :func:`repro.serving.service.start_in_thread`
    for the async tier — used by the tests and the load benchmark.  Returns
    once the listening socket is bound.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            server = await service.start(host=host, port=port)
            box["address"] = server.sockets[0].getsockname()[:2]
            started.set()
            await box["stop"].wait()
            server.close()
            await server.wait_closed()

        try:
            asyncio.run(_main())
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller below
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=_run, name="repro-serve-async", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise ServingError("async serving tier failed to start within 30s")
    if "error" in box:
        raise ServingError(f"async serving tier failed to start: {box['error']}") from box["error"]
    return AsyncServiceHandle(service, thread, box["loop"], box["stop"], box["address"])


# --------------------------------------------------------------------------- #
# Blocking entry point (CLI) and pre-fork workers
# --------------------------------------------------------------------------- #
def _listening_socket(host: str, port: int, *, backlog: int = 512) -> socket.socket:
    """Bind one listening TCP socket that forked workers can share."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    sock.setblocking(False)
    return sock


async def _worker_main(
    artifact_dir: str | Path,
    *,
    sock: socket.socket,
    pipeline: Pipeline | str | Path | None,
    fallback_cache_size: int,
    coalesce_max: int | None,
    coalesce_window_us: int | None,
    verbose: bool,
) -> int:
    """One worker: its own store handle + event loop on a shared socket."""
    service = build_async_service(
        artifact_dir,
        pipeline=pipeline,
        fallback_cache_size=fallback_cache_size,
        coalesce_max=coalesce_max,
        coalesce_window_us=coalesce_window_us,
        verbose=verbose,
    )
    loop = asyncio.get_running_loop()
    if hasattr(signal, "SIGHUP"):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signal.SIGHUP, service.reload)
    server = await service.start(sock=sock)
    if verbose:
        print(f"  artifact: {service.store.artifact_dir}  ({service.store!r})", flush=True)
    async with server:
        await server.serve_forever()
    return 0


def serve_async(
    artifact_dir: str | Path,
    *,
    pipeline: Pipeline | str | Path | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
    fallback_cache_size: int = 2,
    coalesce_max: int | None = None,
    coalesce_window_us: int | None = None,
    verbose: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve --async``; returns an exit code.

    ``workers=1`` serves from the calling process.  ``workers=K`` pre-forks
    ``K`` processes sharing one listening socket, each with its own event
    loop and its own memory-mapped store handle; the parent forwards
    ``SIGHUP`` (warm swap everywhere) and ``SIGTERM``/``SIGINT``
    (shutdown) to every worker.
    """
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers > 1 and not hasattr(os, "fork"):
        raise ConfigurationError("workers > 1 requires os.fork (POSIX)")

    sock = _listening_socket(host, port)
    bound_host, bound_port = sock.getsockname()[:2]
    if verbose:
        print(
            f"repro serve: listening on http://{bound_host}:{bound_port} "
            f"(async tier, workers={workers})",
            flush=True,
        )
        if hasattr(signal, "SIGHUP"):
            print("  SIGHUP triggers a warm reload in every worker", flush=True)

    if workers == 1:
        try:
            return asyncio.run(
                _worker_main(
                    artifact_dir,
                    sock=sock,
                    pipeline=pipeline,
                    fallback_cache_size=fallback_cache_size,
                    coalesce_max=coalesce_max,
                    coalesce_window_us=coalesce_window_us,
                    verbose=verbose,
                )
            )
        except KeyboardInterrupt:
            if verbose:
                print("repro serve: shutting down")
            return 0
        finally:
            sock.close()

    return _serve_prefork(
        artifact_dir,
        sock=sock,
        pipeline=pipeline,
        workers=workers,
        fallback_cache_size=fallback_cache_size,
        coalesce_max=coalesce_max,
        coalesce_window_us=coalesce_window_us,
        verbose=verbose,
    )


def _serve_prefork(
    artifact_dir: str | Path,
    *,
    sock: socket.socket,
    pipeline: Pipeline | str | Path | None,
    workers: int,
    fallback_cache_size: int,
    coalesce_max: int | None,
    coalesce_window_us: int | None,
    verbose: bool,
) -> int:
    """Fork ``workers`` children sharing ``sock``; parent supervises."""
    children: list[int] = []
    for _ in range(workers):
        pid = os.fork()
        if pid == 0:
            # Worker process: never unwind into the parent's stack.
            status = 1
            try:
                signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates shutdown
                status = asyncio.run(
                    _worker_main(
                        artifact_dir,
                        sock=sock,
                        pipeline=pipeline,
                        fallback_cache_size=fallback_cache_size,
                        coalesce_max=coalesce_max,
                        coalesce_window_us=coalesce_window_us,
                        verbose=False,
                    )
                )
            except BaseException:  # noqa: BLE001
                logger.exception("serving worker crashed")
            finally:
                os._exit(status)
        children.append(pid)
    sock.close()  # only workers accept

    def _forward(signum: int) -> None:
        for pid in children:
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signum)

    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, lambda signum, frame: _forward(signal.SIGHUP))
    signal.signal(signal.SIGTERM, lambda signum, frame: _forward(signal.SIGTERM))

    try:
        for pid in children:
            os.waitpid(pid, 0)
    except KeyboardInterrupt:
        _forward(signal.SIGTERM)
        for pid in children:
            with contextlib.suppress(ChildProcessError):
                os.waitpid(pid, 0)
    if verbose:
        print("repro serve: all workers exited")
    return 0
