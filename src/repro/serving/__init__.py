"""Serving layer: compiled top-N artifacts and an HTTP lookup service.

The paper's framework is an *offline precompute* design — top-N lists are
generated in batch, then looked up per user.  PRs 1–3 built the offline
half (batched scoring, persistable pipelines, parallel fan-out); this
package is the online half:

:mod:`repro.serving.artifact`
    :func:`compile_artifact` runs a saved pipeline's batched
    ``recommend_all`` once — fanned out over :mod:`repro.parallel` — and
    writes memory-mappable ``.npy`` shards of item ids + scores plus a
    ``manifest.json`` (spec hash, N, shard layout, numpy/scipy line).
:mod:`repro.serving.update`
    Delta-only recompilation (``repro compile --update``):
    :func:`refit_pipeline` absorbs a split extension via the recommenders'
    exact delta refits (full-fit fallback), and
    :func:`compile_artifact_update` byte-compares fresh rows against the
    live artifact and rewrites only the shards that changed, bumping the
    manifest ``revision`` for warm reloads.
:mod:`repro.serving.store`
    :class:`RecommendationStore` memory-maps the shards and answers
    ``top_n(users, n)`` with O(1) row reads, falling back to a live
    :class:`~repro.pipeline.Pipeline` (LRU-cached ``recommend_all`` tables)
    for users or ``n`` the artifact does not cover.
:mod:`repro.serving.service`
    A stdlib ``http.server`` service (``repro serve``) exposing
    ``GET /recommend``, ``GET /healthz`` and ``GET /manifest``, with warm
    reload on ``SIGHUP``.
:mod:`repro.serving.async_service`
    The high-concurrency tier (``repro serve --async``): an asyncio
    keep-alive server that coalesces in-flight ``/recommend`` requests
    into batched store lookups, adds ``POST /recommend/batch``, and
    pre-forks ``--workers K`` processes sharing one listening socket with
    one mmap store handle each.

Every lookup — artifact row or fallback, either tier — returns exactly the
bytes ``Pipeline.recommend_all`` produces for the same persisted pipeline
(asserted in ``tests/test_serving.py`` / ``tests/test_serving_async.py``
for every registered recommender family).
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT_VERSION,
    DEFAULT_SHARD_SIZE,
    compile_artifact,
    load_manifest,
    serving_environment,
    spec_hash,
)
from repro.serving.async_service import (
    DEFAULT_COALESCE_MAX,
    DEFAULT_COALESCE_WINDOW_US,
    AsyncRecommendationService,
    AsyncServiceHandle,
    CoalescingBatcher,
    build_async_service,
    serve_async,
    start_async_in_thread,
)
from repro.serving.service import (
    RecommendationHandler,
    RecommendationServer,
    build_server,
    install_sighup_reload,
    serve,
    start_in_thread,
)
from repro.serving.store import RecommendationStore, open_store
from repro.serving.update import (
    RefitReport,
    UpdateReport,
    compile_artifact_update,
    ingest_and_update,
    refit_pipeline,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_COALESCE_MAX",
    "DEFAULT_COALESCE_WINDOW_US",
    "compile_artifact",
    "load_manifest",
    "serving_environment",
    "spec_hash",
    "RefitReport",
    "UpdateReport",
    "compile_artifact_update",
    "ingest_and_update",
    "refit_pipeline",
    "RecommendationStore",
    "open_store",
    "RecommendationServer",
    "RecommendationHandler",
    "build_server",
    "start_in_thread",
    "install_sighup_reload",
    "serve",
    "AsyncRecommendationService",
    "AsyncServiceHandle",
    "CoalescingBatcher",
    "build_async_service",
    "serve_async",
    "start_async_in_thread",
]
