"""The artifact compiler: fitted pipelines → memory-mappable top-N shards.

The paper's framework is an *offline precompute* design: top-N sets are
generated in batch and then looked up per user at serve time.
:func:`compile_artifact` is that precompute step — it takes a fitted
:class:`~repro.pipeline.Pipeline` (typically a directory saved with
:meth:`Pipeline.save`), runs the batched, executor-fanned
:meth:`Pipeline.recommend_all` once, and writes the result as a compact
on-disk artifact:

``manifest.json``
    Format version, top-N size, user coverage, shard layout, the SHA-256 of
    the compiled spec (so a store can verify a fallback pipeline matches),
    and the numpy/scipy line the floats were produced under (same
    ``major.minor`` convention as ``tests/golden/environment.json``).
``shards/items_XXXXX.npy``
    ``(users_in_shard, n)`` int64 blocks of item indices in rank order,
    ``-1``-padded — the exact rows ``recommend_all`` produced.
``shards/scores_XXXXX.npy``
    ``(users_in_shard, n)`` float64 blocks holding the accuracy
    recommender's raw scores of the stored items (``NaN`` on padding).
    Diagnostic only: the *ranking* comes from the full pipeline (which for
    GANC runs trades accuracy off against coverage and novelty), so these
    scores are not necessarily monotone along a row.

Shards are written with plain :func:`numpy.save`, so a store can map them
with ``np.load(..., mmap_mode="r")`` and serve lookups without loading the
table into memory.

Byte-identity contract
----------------------
The stored item rows are exactly ``pipeline.recommend_all(n).items`` — the
compiler adds no post-processing — so artifact lookups reproduce live
scoring byte for byte.  ``manifest["prefix_consistent"]`` records whether
top-``k`` for ``k < n`` may be served by slicing a stored row: true for bare
recommender pipelines (the canonical ordering of :mod:`repro.utils.topn` is
prefix-stable), false for GANC pipelines (the greedy assignment is specific
to the compiled ``n``, so smaller ``k`` must fall back to live scoring).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import TopNScoresTask
from repro.pipeline.persistence import read_json
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.spec import ExecutionSpec
from repro.utils.topn import iter_user_blocks

#: Current artifact format version.
ARTIFACT_FORMAT_VERSION = 1

#: Users stored per shard file by default.
DEFAULT_SHARD_SIZE = 4096

MANIFEST_FILE = "manifest.json"
_SHARD_DIR = "shards"


def spec_hash(pipeline: Pipeline) -> str:
    """SHA-256 hex digest of a pipeline's canonical spec JSON.

    Stored in the artifact manifest and re-checked when a store attaches a
    live fallback pipeline, so an artifact is never silently mixed with a
    pipeline compiled from a different configuration.  The ``execution``
    section is excluded: it is mechanism, not modelling (results are
    byte-identical for every backend/worker count), so two pipelines
    differing only in how they fan out are interchangeable for serving.
    """
    config = pipeline.spec.to_config()
    config.pop("execution", None)
    document = json.dumps(config, indent=2, sort_keys=True)
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def serving_environment() -> dict[str, str]:
    """The ``major.minor`` numpy/scipy line the artifact floats came from.

    Byte-exact float output is only guaranteed against the same library
    line (SVD results can differ in the last ulp across BLAS builds); the
    convention mirrors ``tests/golden/environment.json``.
    """
    import numpy
    import scipy

    def major_minor(version: str) -> str:
        """Truncate a version string to its first two components."""
        return ".".join(version.split(".")[:2])

    return {"numpy": major_minor(numpy.__version__), "scipy": major_minor(scipy.__version__)}


def _resolve_pipeline(pipeline: Pipeline | str | Path) -> Pipeline:
    """Accept a fitted pipeline or a saved-pipeline directory."""
    if isinstance(pipeline, Pipeline):
        return pipeline
    return Pipeline.load(pipeline)


def _shard_name(kind: str, index: int) -> str:
    return f"{_SHARD_DIR}/{kind}_{index:05d}.npy"


#: Per-process monotone counter making tmp names unique within a process;
#: the pid makes them unique across processes sharing an artifact dir.
_TMP_COUNTER = itertools.count()


def _tmp_path(path: Path) -> Path:
    """A collision-free temporary sibling of ``path``.

    Two compiles writing into the same artifact directory (two processes,
    or two threads of one) must never share a tmp name: a fixed
    ``<name>.tmp`` would interleave their writes and rename a corrupt file
    into place.  pid + per-process counter keeps every in-flight tmp
    distinct; the ``.tmp`` suffix keeps it visible to the stale sweep.
    """
    return path.with_name(f"{path.name}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp")


def _atomic_save(path: Path, array: np.ndarray) -> None:
    """Write one ``.npy`` file via rename, never truncating an existing file.

    The documented serving workflow is "recompile in place, then SIGHUP":
    a live :class:`~repro.serving.store.RecommendationStore` may hold
    memory maps of the files being replaced.  ``os.replace`` swaps the
    directory entry atomically, so existing maps keep reading the old inode
    until the store reloads — overwriting in place would mutate (or, after
    truncation, SIGBUS) pages under a serving process.
    """
    tmp = _tmp_path(path)
    with open(tmp, "wb") as handle:
        np.save(handle, array)
    os.replace(tmp, path)


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Write JSON via rename for the same live-reader reasons as shards."""
    tmp = _tmp_path(path)
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _sweep_stale(output_dir: Path, referenced: set[str], started: float) -> None:
    """Delete shard files the fresh manifest no longer references.

    Recompiling in place with a different shard layout (or ``--max-users``)
    can leave ``.npy`` files behind; live stores that mapped them keep
    reading their (unlinked) inodes until they reload.  Leftover ``.tmp``
    files are swept only when they predate this compile's start — a tmp
    younger than that may belong to another in-flight compile, whose rename
    must not be sabotaged.  ``missing_ok`` tolerates two concurrent sweeps
    racing over the same stale file.
    """
    for stale in (output_dir / _SHARD_DIR).iterdir():
        if stale.suffix == ".npy" and stale.name not in referenced:
            stale.unlink(missing_ok=True)
        elif stale.name.endswith(".tmp"):
            try:
                if stale.stat().st_mtime < started:
                    stale.unlink(missing_ok=True)
            except FileNotFoundError:
                pass


def _previous_revision(output_dir: Path) -> int:
    """The revision of an artifact already in ``output_dir`` (0 when none).

    ``revision`` is a per-directory monotone counter: every compile or
    update that swaps the manifest bumps it, so a live store (or anything
    watching ``/healthz``) can tell warm reloads apart.  A missing or
    unreadable manifest counts as no previous artifact.
    """
    try:
        manifest = read_json(output_dir / MANIFEST_FILE)
    except DataFormatError:
        return 0
    revision = manifest.get("revision", 1)
    return int(revision) if isinstance(revision, (int, float)) else 0


def _compute_rows(
    pipeline: Pipeline,
    n: int,
    coverage: int,
    *,
    block_size: int | None,
    executor: Executor | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The compile pass: top-N item rows plus diagnostic score rows.

    Shared by :func:`compile_artifact` and the delta updater
    (:func:`repro.serving.update.compile_artifact_update`) so both produce
    the same bytes for the same pipeline.
    """
    # The tentpole contract: stored rows ARE recommend_all's rows.  The
    # call fans out over the spec'd executor exactly as a live run would.
    items = pipeline.recommend_all(n, block_size=block_size).items[:coverage]

    # Diagnostic score pass: gather the accuracy recommender's raw scores
    # of the chosen items, fanned out over the same executor.
    scores = np.full((coverage, n), np.nan, dtype=np.float64)
    blocks = list(iter_user_blocks(coverage, block_size))
    task = TopNScoresTask(pipeline.recommender, items)
    fan_out = pipeline._executor() if executor is None else executor
    for users, rows in zip(blocks, fan_out.map_blocks(task, blocks)):
        scores[users] = rows
    return items, scores


def compile_artifact(
    pipeline: Pipeline | str | Path,
    output_dir: str | Path,
    *,
    n: int | None = None,
    shard_size: int | None = None,
    max_users: int | None = None,
    block_size: int | None = None,
    executor: Executor | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> Path:
    """Precompute top-``n`` for all users and write a serveable artifact.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.pipeline.Pipeline` or the directory of one
        saved with :meth:`Pipeline.save`.
    output_dir:
        Destination directory (created if missing).
    n:
        Top-N size to compile; defaults to the spec's ``evaluation.n``.
    shard_size:
        Users stored per ``.npy`` shard file (default
        :data:`DEFAULT_SHARD_SIZE`).
    max_users:
        Store only the first ``max_users`` users (the full assignment still
        runs, so stored rows are identical to a full compile); remaining
        users are served by the store's live fallback.
    block_size:
        Scoring block size override, as in :meth:`Pipeline.recommend_all`.
    executor, n_jobs, backend:
        Fan-out of the compile pass, resolved exactly like every other
        batched path (:func:`repro.parallel.resolve_executor`).  When any is
        given it overrides the pipeline spec's ``execution`` section for the
        duration of the compile.

    Returns
    -------
    Path
        The artifact directory.
    """
    started = time.time()
    pipeline = _resolve_pipeline(pipeline)
    if not pipeline.is_fitted:
        raise ConfigurationError("compile_artifact needs a fitted pipeline (call fit() or load a saved one)")
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else int(shard_size)
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")

    n = pipeline.spec.evaluation.n if n is None else int(n)
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")

    original_execution = None
    if executor is not None or n_jobs is not None or backend is not None:
        chosen = executor if executor is not None else resolve_executor(None, n_jobs, backend)
        original_execution = pipeline.spec.execution
        pipeline.set_execution(ExecutionSpec(backend=chosen.backend, n_jobs=chosen.n_jobs))

    n_users_total = pipeline.split.train.n_users
    coverage = n_users_total if max_users is None else min(int(max_users), n_users_total)
    if coverage < 1:
        raise ConfigurationError(f"max_users must be >= 1, got {max_users}")

    try:
        items, scores = _compute_rows(
            pipeline, n, coverage, block_size=block_size, executor=executor
        )
    finally:
        # The override applies for the duration of the compile only; a
        # caller-owned pipeline must not come back with its execution spec
        # (or a fitted GANC model's config) silently rewritten.
        if original_execution is not None:
            pipeline.set_execution(original_execution)

    output_dir = Path(output_dir)
    (output_dir / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
    revision = _previous_revision(output_dir) + 1

    shards: list[dict[str, Any]] = []
    for index, start in enumerate(range(0, coverage, shard_size)):
        stop = min(start + shard_size, coverage)
        items_name = _shard_name("items", index)
        scores_name = _shard_name("scores", index)
        _atomic_save(output_dir / items_name, items[start:stop])
        _atomic_save(output_dir / scores_name, scores[start:stop])
        shards.append({"items": items_name, "scores": scores_name, "start": start, "stop": stop})

    manifest: dict[str, Any] = {
        "format": ARTIFACT_FORMAT_VERSION,
        "n": n,
        "n_items": pipeline.split.train.n_items,
        "n_users": coverage,
        "n_users_total": n_users_total,
        "revision": revision,
        "shard_size": int(shard_size),
        "shards": shards,
        "spec_sha256": spec_hash(pipeline),
        "algorithm": pipeline.algorithm,
        "mode": "ganc" if pipeline.model is not None else "recommender",
        "prefix_consistent": pipeline.model is None,
        "environment": serving_environment(),
        # Scoring provenance (additive keys; absent in pre-scale manifests):
        # whether the recommender used its exact path and at what precision,
        # so a served artifact's tolerance contract is auditable.
        "exact": bool(getattr(pipeline.recommender, "exact", True)),
        "score_dtype": str(getattr(pipeline.recommender, "dtype", "float64")),
    }
    _atomic_write_json(output_dir / MANIFEST_FILE, manifest)

    referenced = {entry["items"].split("/")[-1] for entry in shards}
    referenced |= {entry["scores"].split("/")[-1] for entry in shards}
    _sweep_stale(output_dir, referenced, started)
    return output_dir


def load_manifest(artifact_dir: str | Path) -> dict[str, Any]:
    """Read and validate an artifact's ``manifest.json``.

    Every key the :class:`~repro.serving.store.RecommendationStore`
    dereferences — top-level layout fields and the per-shard entries — is
    checked here, so a hand-edited or truncated manifest fails at load time
    with a :class:`~repro.exceptions.DataFormatError` naming the file,
    never with a bare ``KeyError`` in the middle of a lookup.
    """
    artifact_dir = Path(artifact_dir)
    manifest_path = artifact_dir / MANIFEST_FILE
    manifest = read_json(manifest_path)
    if manifest.get("format") != ARTIFACT_FORMAT_VERSION:
        raise DataFormatError(
            f"unsupported artifact format {manifest.get('format')!r} in "
            f"{artifact_dir} (expected {ARTIFACT_FORMAT_VERSION})"
        )
    for key in ("n", "n_items", "n_users", "shard_size", "shards"):
        if key not in manifest:
            raise DataFormatError(f"artifact manifest {manifest_path} is missing {key!r}")
    shards = manifest["shards"]
    if not isinstance(shards, list):
        raise DataFormatError(
            f"artifact manifest {manifest_path} has a non-list 'shards' entry "
            f"({type(shards).__name__})"
        )
    for position, entry in enumerate(shards):
        if not isinstance(entry, dict):
            raise DataFormatError(
                f"shard {position} in artifact manifest {manifest_path} is not "
                f"an object ({type(entry).__name__})"
            )
        for key in ("items", "scores", "start", "stop"):
            if key not in entry:
                raise DataFormatError(
                    f"shard {position} in artifact manifest {manifest_path} "
                    f"is missing {key!r}"
                )
    return manifest
