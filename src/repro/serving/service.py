"""A stdlib HTTP service over a :class:`RecommendationStore`.

``repro serve --artifact DIR [--pipeline DIR]`` stands this server up.  It
is deliberately dependency-free (``http.server`` + ``json``): the store does
O(1) memory-mapped row reads, so a threading server is enough for the repro
round trip, and the whole service remains runnable in any environment that
can import :mod:`repro`.  For sustained concurrent traffic, the asyncio
tier in :mod:`repro.serving.async_service` (``repro serve --async``)
coalesces in-flight requests into the batched store path; it shares this
module's payload builders, so both tiers answer with byte-identical JSON.

Endpoints
---------
``GET /recommend?user=U[&n=N]``
    The top-``N`` items of user ``U`` as JSON:
    ``{"user", "n", "items", "scores", "source"}``.  ``items`` is trimmed of
    ``-1`` padding; ``scores`` holds the artifact's diagnostic scores (or
    ``null`` when the row came from live fallback); ``source`` is
    ``"artifact"`` or ``"live"``.
``GET /healthz``
    Liveness plus serving counters: uptime, rows served from the artifact
    vs. the fallback pipeline, and the number of warm reloads.
``GET /manifest``
    The artifact's ``manifest.json`` verbatim.
``GET /metrics``
    Prometheus exposition text: per-endpoint request counters, a
    fixed-bucket request-latency histogram, store row provenance and
    reload counters (:mod:`repro.serving.metrics`).

Warm reload
-----------
``SIGHUP`` re-reads the manifest and drops shard maps and fallback caches
(:meth:`RecommendationStore.reload`) without restarting the process, so an
artifact recompiled in place starts serving immediately.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from math import isfinite
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.exceptions import ReproError, ServingError
from repro.pipeline.pipeline import Pipeline
from repro.serving.metrics import METRICS_CONTENT_TYPE, ServingMetrics
from repro.serving.store import RecommendationStore

logger = logging.getLogger("repro.serving")


def _jsonable_row(items: np.ndarray, scores: np.ndarray | None) -> tuple[list[int], list[float | None] | None]:
    """Trim ``-1`` padding and convert non-finite scores to ``None``.

    Runs on every ``/recommend`` response in both serving tiers.  One bulk
    ``tolist()`` per array converts to Python scalars, then plain-``int``
    comparisons trim the padding: for the short rows served here that beats
    both per-element numpy scalar iteration and mask/fancy-index chains,
    whose fixed per-call overhead exceeds the whole row.
    """
    item_row = items.tolist()
    out_items = [item for item in item_row if item >= 0]
    if scores is None:
        return out_items, None
    out_scores = [
        score if isfinite(score) else None
        for item, score in zip(item_row, scores.tolist())
        if item >= 0
    ]
    return out_items, out_scores


def json_body(payload: dict[str, Any]) -> bytes:
    """The canonical JSON response encoding shared by both serving tiers.

    Both the legacy ``http.server`` tier and the asyncio tier emit exactly
    these bytes, which is what makes the tiers' responses byte-comparable.
    """
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def recommend_body(payload: dict[str, Any]) -> bytes:
    """:func:`json_body` specialised to the fixed ``/recommend`` payload.

    Byte-for-byte identical to ``json_body(payload)`` for every payload
    :func:`recommend_payload` can build — the keys are already in sorted
    order, the values are ints, finite floats, ``None`` and clean strings,
    and ``repr`` of a finite float is exactly what ``json.dumps`` emits.
    Asserted against ``json_body`` in the test suite; runs for every
    ``/recommend`` response in both tiers.
    """
    scores = payload["scores"]
    if scores is None:
        scores_text = "null"
    else:
        scores_text = f"[{', '.join('null' if s is None else repr(s) for s in scores)}]"
    return (
        f'{{"items": [{", ".join(map(str, payload["items"]))}], '
        f'"n": {payload["n"]}, "scores": {scores_text}, '
        f'"source": "{payload["source"]}", "user": {payload["user"]}}}\n'
    ).encode("utf-8")


def recommend_payload(
    store: RecommendationStore,
    user: int,
    n: int | None,
    items: np.ndarray,
    scores: np.ndarray | None,
    source: str,
) -> dict[str, Any]:
    """Build one ``/recommend`` response payload from a store lookup row."""
    out_items, out_scores = _jsonable_row(items, scores)
    return {
        "user": user,
        "n": store.n if n is None else n,
        "items": out_items,
        "scores": out_scores,
        "source": source,
    }


def healthz_payload(
    store: RecommendationStore,
    *,
    uptime_seconds: float,
    reloads: int,
    reload_failures: int,
) -> dict[str, Any]:
    """Build the ``/healthz`` payload fields common to both serving tiers."""
    return {
        "status": "ok",
        "artifact": str(store.artifact_dir),
        "algorithm": store.manifest.get("algorithm"),
        "n": store.n,
        "revision": store.revision,
        "coverage": store.coverage,
        "n_users_total": store.n_users_total,
        "fallback": store.has_fallback,
        "uptime_seconds": uptime_seconds,
        "reloads": reloads,
        "reload_failures": reload_failures,
        "served": dict(store.stats),
    }


class RecommendationServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`RecommendationStore`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        store: RecommendationStore,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, RecommendationHandler)
        self.store = store
        self.verbose = verbose
        self.started = time.monotonic()
        self.reloads = 0
        self.reload_failures = 0
        self.metrics = ServingMetrics()

    def reload(self) -> None:
        """Warm-reload the store (the SIGHUP hook); never raises."""
        try:
            self.store.reload()
            self.reloads += 1
        except ReproError as exc:
            # A broken artifact mid-rewrite must not kill a serving process;
            # the old mapped shards keep serving until the next HUP.
            self.reload_failures += 1
            logger.error("reload failed, keeping previous state: %s", exc)


class RecommendationHandler(BaseHTTPRequestHandler):
    """Routes ``/recommend``, ``/healthz`` and ``/manifest``."""

    server: RecommendationServer
    server_version = "repro-serve/1"
    #: HTTP/1.1 keeps client connections alive between requests (every
    #: response carries Content-Length), so closed-loop clients are not
    #: charged a TCP handshake per lookup and load comparisons against the
    #: asyncio tier measure the same transport.
    protocol_version = "HTTP/1.1"
    #: A keep-alive response is two socket writes (headers, then body);
    #: without TCP_NODELAY the body write stalls ~40ms behind Nagle waiting
    #: on the client's delayed ACK of the header segment.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Suppress per-request logging unless the owning server is verbose."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, payload: dict[str, Any], status: int = 200) -> None:
        self._send_body(json_body(payload), status)

    def _send_body(
        self,
        body: bytes,
        status: int = 200,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    #: /metrics endpoint labels (anything else counts as "other").
    _ENDPOINTS = {
        "/recommend": "recommend",
        "/healthz": "healthz",
        "/manifest": "manifest",
        "/metrics": "metrics",
    }

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        """Dispatch a GET request to the matching endpoint."""
        parsed = urlsplit(self.path)
        start = time.perf_counter()
        try:
            if parsed.path == "/recommend":
                self._handle_recommend(parse_qs(parsed.query))
            elif parsed.path == "/healthz":
                self._handle_healthz()
            elif parsed.path == "/manifest":
                self._send_json(self.server.store.manifest)
            elif parsed.path == "/metrics":
                self._handle_metrics()
            else:
                self._error(f"unknown path {parsed.path!r}", 404)
        except ServingError as exc:
            self._error(str(exc), 404)
        except ReproError as exc:
            self._error(str(exc), 400)
        finally:
            self.server.metrics.observe(
                self._ENDPOINTS.get(parsed.path, "other"),
                time.perf_counter() - start,
            )

    def _handle_recommend(self, query: dict[str, list[str]]) -> None:
        if "user" not in query:
            self._error("missing required query parameter 'user'", 400)
            return
        try:
            user = int(query["user"][0])
            n = int(query["n"][0]) if "n" in query else None
        except ValueError:
            self._error("'user' and 'n' must be integers", 400)
            return
        store = self.server.store
        items, scores, source = store.lookup(user, n)
        self._send_body(recommend_body(recommend_payload(store, user, n, items, scores, source)))

    def _handle_healthz(self) -> None:
        self._send_json(
            healthz_payload(
                self.server.store,
                uptime_seconds=round(time.monotonic() - self.server.started, 3),
                reloads=self.server.reloads,
                reload_failures=self.server.reload_failures,
            )
        )

    def _handle_metrics(self) -> None:
        text = self.server.metrics.render(
            store_stats=self.server.store.stats,
            reloads=self.server.reloads,
            reload_failures=self.server.reload_failures,
        )
        self._send_body(text.encode("utf-8"), content_type=METRICS_CONTENT_TYPE)


def build_server(
    artifact_dir: str | Path,
    *,
    pipeline: Pipeline | str | Path | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    fallback_cache_size: int = 2,
    verbose: bool = False,
) -> RecommendationServer:
    """Construct a (not yet serving) server; ``port=0`` picks an ephemeral port."""
    store = RecommendationStore(
        artifact_dir, pipeline=pipeline, fallback_cache_size=fallback_cache_size
    )
    return RecommendationServer((host, port), store, verbose=verbose)


def start_in_thread(server: RecommendationServer) -> threading.Thread:
    """Run ``serve_forever`` in a daemon thread (tests, smoke scripts)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def install_sighup_reload(server: RecommendationServer) -> bool:
    """Bind SIGHUP to a warm reload; returns False where that is impossible.

    Signal handlers can only be installed from the main thread (and SIGHUP
    does not exist on Windows), so callers embedding the server elsewhere
    fall back to calling :meth:`RecommendationServer.reload` directly.
    """
    if not hasattr(signal, "SIGHUP"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False
    signal.signal(signal.SIGHUP, lambda signum, frame: server.reload())
    return True


def serve(
    artifact_dir: str | Path,
    *,
    pipeline: Pipeline | str | Path | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    fallback_cache_size: int = 2,
    verbose: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve``; returns an exit code."""
    server = build_server(
        artifact_dir,
        pipeline=pipeline,
        host=host,
        port=port,
        fallback_cache_size=fallback_cache_size,
        verbose=verbose,
    )
    hup = install_sighup_reload(server)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}")
    print(f"  artifact: {server.store.artifact_dir}  ({server.store!r})")
    if hup:
        print("  SIGHUP triggers a warm reload")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
    return 0
