"""Abstract interface of long-tail novelty preference estimators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError
from repro.registry import ParamsMixin


@dataclass(frozen=True)
class PreferenceResult:
    """A fitted preference vector θ together with the model that produced it.

    Attributes
    ----------
    theta:
        Array of shape ``(n_users,)`` with values in ``[0, 1]``.
    model_name:
        Short identifier (``"activity"``, ``"tfidf"``, ``"generalized"``, ...)
        used in experiment reports.
    """

    theta: np.ndarray
    model_name: str

    def __post_init__(self) -> None:
        arr = np.asarray(self.theta, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(f"theta must be 1-D, got shape {arr.shape}")
        if arr.size and (arr.min() < -1e-9 or arr.max() > 1.0 + 1e-9):
            raise ConfigurationError(
                f"theta values must lie in [0, 1]; got range [{arr.min()}, {arr.max()}]"
            )
        object.__setattr__(self, "theta", np.clip(arr, 0.0, 1.0))

    @property
    def n_users(self) -> int:
        """Number of users covered by the estimate."""
        return int(self.theta.size)

    def for_user(self, user: int) -> float:
        """Preference value of a single user."""
        return float(self.theta[user])


class PreferenceModel(ParamsMixin, ABC):
    """Base class: estimate per-user long-tail novelty preferences from train data."""

    #: short name used in reports and in the registry
    name: str = "preference"

    @abstractmethod
    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Return a :class:`PreferenceResult` for every user in ``train``.

        ``popularity`` may be supplied to reuse precomputed statistics; models
        that need it compute it from ``train`` when omitted.
        """

    def _popularity(
        self, train: RatingDataset, popularity: PopularityStats | None
    ) -> PopularityStats:
        return popularity if popularity is not None else PopularityStats.from_dataset(train)
