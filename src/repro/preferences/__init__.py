"""User long-tail novelty preference models (Section II of the paper).

Each estimator maps a train :class:`~repro.data.dataset.RatingDataset` to a
vector ``θ`` with one entry per user, always inside ``[0, 1]``:

* ``θA`` — Activity (number of rated items),
* ``θN`` — Normalized long-tail fraction (Eq. II.1),
* ``θT`` — TFIDF-based measure combining user interest and inverse item
  popularity (Eq. II.2),
* ``θG`` — Generalized preference learned by the paper's alternating minimax
  optimization over item weights and user preferences (Eq. II.4–II.6),
* ``θR`` / ``θC`` — random / constant control models used in Figure 5.
"""

from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.preferences.simple import (
    ActivityPreference,
    NormalizedLongTailPreference,
    TfidfPreference,
    RandomPreference,
    ConstantPreference,
    per_user_item_preference,
)
from repro.preferences.generalized import GeneralizedPreference, MinimaxTrace
from repro.preferences.registry import make_preference_model, PREFERENCE_REGISTRY

__all__ = [
    "PreferenceModel",
    "PreferenceResult",
    "ActivityPreference",
    "NormalizedLongTailPreference",
    "TfidfPreference",
    "RandomPreference",
    "ConstantPreference",
    "per_user_item_preference",
    "GeneralizedPreference",
    "MinimaxTrace",
    "make_preference_model",
    "PREFERENCE_REGISTRY",
]
