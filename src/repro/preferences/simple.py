"""Simple long-tail novelty preference measures (Section II-B of the paper).

All estimators return values in ``[0, 1]``:

* :class:`ActivityPreference` — ``θA_u = |I^R_u|``, min-max normalized across
  users.  Motivated by Figure 1: the more a user rates, the less popular their
  rated items tend to be, but activity alone says nothing about which items.
* :class:`NormalizedLongTailPreference` — ``θN_u = |I^R_u ∩ L| / |I^R_u|``
  (Eq. II.1), the fraction of the user's rated items that are long-tail.
* :class:`TfidfPreference` — ``θT_u`` (Eq. II.2) averages the per-user-item
  preference values ``θ_ui = r_ui · log(|U| / |U^R_i|)``, combining the user's
  interest (rating) with the inverse popularity of the item.
* :class:`RandomPreference` / :class:`ConstantPreference` — the θR / θC
  control models of Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.utils.normalization import min_max_normalize
from repro.utils.rng import SeedLike, ensure_rng


def per_user_item_preference(
    train: RatingDataset,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Per-interaction preference values ``θ_ui = r_ui · log(|U| / |U^R_i|)``.

    Returns an array aligned with ``train``'s interaction arrays.  When
    ``normalize`` is True the values are min-max projected onto ``[0, 1]``,
    which the paper requires before running the generalized (minimax)
    optimization so that ``|θ_ui − θG_u| <= 1``.
    """
    popularity = train.item_popularity().astype(np.float64)
    item_pop = popularity[train.item_indices]
    # Items can only appear in interactions if they have at least one rating,
    # so item_pop is strictly positive here.
    inverse_popularity = np.log(train.n_users / item_pop)
    theta_ui = train.ratings * inverse_popularity
    if normalize:
        theta_ui = min_max_normalize(theta_ui)
    return theta_ui


class ActivityPreference(PreferenceModel):
    """``θA``: user activity (number of rated items), normalized to [0, 1]."""

    name = "activity"

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Count each user's train ratings and min-max normalize."""
        del popularity  # not needed
        activity = train.user_activity().astype(np.float64)
        return PreferenceResult(theta=min_max_normalize(activity), model_name=self.name)


class NormalizedLongTailPreference(PreferenceModel):
    """``θN``: fraction of the user's rated items that are long-tail (Eq. II.1)."""

    name = "long_tail_fraction"

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Compute ``|I_u ∩ L| / |I_u|`` per user."""
        stats = self._popularity(train, popularity)
        tail_mask = stats.long_tail_mask
        is_tail = tail_mask[train.item_indices].astype(np.float64)

        totals = np.bincount(train.user_indices, minlength=train.n_users).astype(np.float64)
        tail_counts = np.bincount(
            train.user_indices, weights=is_tail, minlength=train.n_users
        )
        theta = np.zeros(train.n_users, dtype=np.float64)
        rated = totals > 0
        theta[rated] = tail_counts[rated] / totals[rated]
        return PreferenceResult(theta=theta, model_name=self.name)


class TfidfPreference(PreferenceModel):
    """``θT``: TFIDF-style combination of user interest and item rarity (Eq. II.2)."""

    name = "tfidf"

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Average the normalized per-user-item values ``θ_ui`` per user."""
        del popularity  # popularity is implicit in θ_ui
        theta_ui = per_user_item_preference(train, normalize=True)
        totals = np.bincount(train.user_indices, minlength=train.n_users).astype(np.float64)
        sums = np.bincount(train.user_indices, weights=theta_ui, minlength=train.n_users)
        theta = np.zeros(train.n_users, dtype=np.float64)
        rated = totals > 0
        theta[rated] = sums[rated] / totals[rated]
        return PreferenceResult(theta=theta, model_name=self.name)


class RandomPreference(PreferenceModel):
    """``θR``: uniform random preferences, the stochastic control of Figure 5."""

    name = "random"

    def __init__(self, *, seed: SeedLike = None) -> None:
        self._seed = seed

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Draw θ_u ~ Uniform(0, 1) independently per user."""
        del popularity
        rng = ensure_rng(self._seed)
        return PreferenceResult(theta=rng.random(train.n_users), model_name=self.name)


class ConstantPreference(PreferenceModel):
    """``θC``: the same constant preference for every user (0.5 in the paper)."""

    name = "constant"

    def __init__(self, value: float = 0.5) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"constant preference must be in [0, 1], got {value}")
        self.value = float(value)

    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Return a constant vector."""
        del popularity
        theta = np.full(train.n_users, self.value, dtype=np.float64)
        return PreferenceResult(theta=theta, model_name=self.name)
