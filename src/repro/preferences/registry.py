"""Name-based construction of preference models.

The experiment harness refers to preference models by the symbols the paper
uses in Figure 5: ``thetaA``, ``thetaN``, ``thetaT``, ``thetaG``, ``thetaR``,
``thetaC``.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.preferences.base import PreferenceModel
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import (
    ActivityPreference,
    ConstantPreference,
    NormalizedLongTailPreference,
    RandomPreference,
    TfidfPreference,
)

PreferenceFactory = Callable[..., PreferenceModel]

PREFERENCE_REGISTRY: Mapping[str, PreferenceFactory] = {
    "thetaa": lambda **kw: ActivityPreference(),
    "thetan": lambda **kw: NormalizedLongTailPreference(),
    "thetat": lambda **kw: TfidfPreference(),
    "thetag": lambda **kw: GeneralizedPreference(
        max_iterations=kw.get("max_iterations", 50),
        tolerance=kw.get("tolerance", 1e-6),
    ),
    "thetar": lambda **kw: RandomPreference(seed=kw.get("seed", None)),
    "thetac": lambda **kw: ConstantPreference(value=kw.get("value", 0.5)),
    # Long-form aliases.
    "activity": lambda **kw: ActivityPreference(),
    "long_tail_fraction": lambda **kw: NormalizedLongTailPreference(),
    "tfidf": lambda **kw: TfidfPreference(),
    "generalized": lambda **kw: GeneralizedPreference(),
    "random": lambda **kw: RandomPreference(seed=kw.get("seed", None)),
    "constant": lambda **kw: ConstantPreference(value=kw.get("value", 0.5)),
}


def make_preference_model(name: str, **kwargs: object) -> PreferenceModel:
    """Instantiate a preference model from its (case-insensitive) name."""
    key = name.strip().lower().replace("θ", "theta")
    if key not in PREFERENCE_REGISTRY:
        raise ConfigurationError(
            f"unknown preference model {name!r}; available: {sorted(PREFERENCE_REGISTRY)}"
        )
    return PREFERENCE_REGISTRY[key](**kwargs)
