"""Preference-model registrations in the unified component registry.

The experiment harness refers to preference models by the symbols the paper
uses in Figure 5 (``thetaA``, ``thetaN``, ``thetaT``, ``thetaG``, ``thetaR``,
``thetaC``); the long-form names are registered as aliases.
"""

from __future__ import annotations

from typing import Mapping

from repro.preferences.base import PreferenceModel
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import (
    ActivityPreference,
    ConstantPreference,
    NormalizedLongTailPreference,
    RandomPreference,
    TfidfPreference,
)
from repro.registry import create, legacy_view, register

register("preference", "thetaa", aliases=("activity",))(ActivityPreference)
register("preference", "thetan", aliases=("long_tail_fraction",))(NormalizedLongTailPreference)
register("preference", "thetat", aliases=("tfidf",))(TfidfPreference)
register("preference", "thetag", aliases=("generalized",))(GeneralizedPreference)
register("preference", "thetar", aliases=("random",))(RandomPreference)
register("preference", "thetac", aliases=("constant",))(ConstantPreference)


def make_preference_model(name: str, **kwargs: object) -> PreferenceModel:
    """Instantiate a preference model from its (case-insensitive) name.

    The paper's ``θ`` spelling (``θG`` → ``thetag``) is normalized by the
    registry itself.  Unknown hyper-parameters raise
    :class:`ConfigurationError`; the reserved ``seed`` kwarg is threaded to
    θR and dropped for the seedless estimators.
    """
    return create("preference", name, **kwargs)


#: Name → factory view of the registered preference models.
PREFERENCE_REGISTRY: Mapping[str, object] = legacy_view("preference")
