"""The generalized long-tail preference ``θG`` (Section II-C of the paper).

The paper defines the item *mediocrity coefficient*

``ε_i = Σ_{u ∈ U^R_i} [ 1 − (θ_ui − θG_u)² ]``

and solves the minimax problem (Eq. II.4)

``min_w max_{θG}  Σ_i w_i ε_i − λ₁ Σ_i log w_i``

by alternating the closed-form updates

* ``w_i = λ₁ / ε_i``                       (Eq. II.5 — minimization step),
* ``θG_u = Σ_{i ∈ I_u} w_i θ_ui / Σ_i w_i``  (Eq. II.6 — maximization step).

An item receives a small weight when its raters regard it as mediocre (their
``θ_ui`` sit close to their general preference), and each user's ``θG_u`` is
the item-weight-weighted average of their per-item values.  With all weights
equal the estimate reduces to ``θT`` — a property the tests verify.

Per the paper, all ``θ_ui`` are projected to ``[0, 1]`` before optimization so
that ``|θ_ui − θG_u| <= 1`` (which keeps every ``ε_i`` non-negative) and
``λ₁ = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError, OptimizationError
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.preferences.simple import per_user_item_preference


@dataclass
class MinimaxTrace:
    """Diagnostics of the alternating optimization.

    Attributes
    ----------
    objective:
        Value of the regularized objective after each iteration.
    theta_delta:
        Maximum absolute change of θG between consecutive iterations.
    converged:
        Whether the tolerance was reached before the iteration cap.
    iterations:
        Number of iterations actually executed.
    item_weights:
        Final item weights ``w`` (useful for inspecting which items the model
        considers discriminative).
    """

    objective: list[float] = field(default_factory=list)
    theta_delta: list[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    item_weights: np.ndarray | None = None


class GeneralizedPreference(PreferenceModel):
    """Alternating minimax estimator of the generalized preference ``θG``.

    Parameters
    ----------
    regularization:
        The paper's λ₁ (1.0).
    max_iterations:
        Cap on the number of alternating updates.
    tolerance:
        Convergence threshold on ``max |θG_new − θG_old|``.
    """

    name = "generalized"

    def __init__(
        self,
        *,
        regularization: float = 1.0,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
    ) -> None:
        if regularization <= 0:
            raise ConfigurationError(
                f"regularization must be positive, got {regularization}"
            )
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        self.regularization = float(regularization)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.trace_: MinimaxTrace | None = None

    # ------------------------------------------------------------------ #
    def estimate(
        self,
        train: RatingDataset,
        *,
        popularity: PopularityStats | None = None,
    ) -> PreferenceResult:
        """Run the alternating optimization and return θG."""
        del popularity  # popularity enters through θ_ui
        if train.n_ratings == 0:
            raise OptimizationError("cannot estimate preferences from an empty train set")

        users = train.user_indices
        items = train.item_indices
        n_users, n_items = train.n_users, train.n_items
        theta_ui = per_user_item_preference(train, normalize=True)

        user_counts = np.bincount(users, minlength=n_users).astype(np.float64)
        item_counts = np.bincount(items, minlength=n_items).astype(np.float64)
        rated_users = user_counts > 0
        rated_items = item_counts > 0

        # Initialize θG with the TFIDF average (equal item weights), per Eq. II.3.
        theta = np.zeros(n_users, dtype=np.float64)
        sums = np.bincount(users, weights=theta_ui, minlength=n_users)
        theta[rated_users] = sums[rated_users] / user_counts[rated_users]

        weights = np.ones(n_items, dtype=np.float64)
        trace = MinimaxTrace()

        for iteration in range(1, self.max_iterations + 1):
            # --- w-step (Eq. II.5): w_i = λ₁ / ε_i ------------------------ #
            deviation_sq = (theta_ui - theta[users]) ** 2
            per_interaction = 1.0 - deviation_sq
            mediocrity = np.bincount(items, weights=per_interaction, minlength=n_items)
            # ε_i is non-negative because |θ_ui − θG_u| <= 1; guard against
            # exact zeros (an item whose single rater is maximally different).
            safe_mediocrity = np.where(rated_items, np.maximum(mediocrity, 1e-12), 1.0)
            weights = self.regularization / safe_mediocrity
            weights[~rated_items] = 0.0

            # --- θ-step (Eq. II.6): weighted average of θ_ui --------------- #
            interaction_weights = weights[items]
            weighted_sums = np.bincount(
                users, weights=interaction_weights * theta_ui, minlength=n_users
            )
            weight_totals = np.bincount(
                users, weights=interaction_weights, minlength=n_users
            )
            new_theta = theta.copy()
            positive = weight_totals > 0
            new_theta[positive] = weighted_sums[positive] / weight_totals[positive]

            delta = float(np.max(np.abs(new_theta - theta))) if n_users else 0.0
            theta = new_theta

            objective = float(
                np.dot(weights[rated_items], mediocrity[rated_items])
                - self.regularization * np.sum(np.log(weights[rated_items]))
            )
            trace.objective.append(objective)
            trace.theta_delta.append(delta)
            trace.iterations = iteration
            if delta < self.tolerance:
                trace.converged = True
                break

        trace.item_weights = weights
        self.trace_ = trace
        return PreferenceResult(theta=np.clip(theta, 0.0, 1.0), model_name=self.name)
