"""Comparative analysis of long-tail preference estimators.

Section II motivates the generalized estimator θG by arguing that the simpler
measures discard information (activity ignores *which* items, the long-tail
fraction ignores ratings, TFIDF ignores the other raters).  This module makes
those relationships measurable: pairwise rank correlations between estimators,
agreement on the most exploratory users, and a dispersion summary that the
Figure 2 discussion refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import (
    ActivityPreference,
    NormalizedLongTailPreference,
    TfidfPreference,
)


def default_estimators() -> dict[str, PreferenceModel]:
    """The four data-driven estimators of Figure 2, keyed by the paper's symbols."""
    return {
        "thetaA": ActivityPreference(),
        "thetaN": NormalizedLongTailPreference(),
        "thetaT": TfidfPreference(),
        "thetaG": GeneralizedPreference(),
    }


@dataclass(frozen=True)
class PreferenceComparison:
    """Pairwise comparison of fitted preference vectors.

    Attributes
    ----------
    estimates:
        ``{model name: PreferenceResult}`` for every compared model.
    spearman:
        ``{(model a, model b): rank correlation}`` for every unordered pair.
    top_user_overlap:
        ``{(model a, model b): Jaccard overlap}`` of the top-decile users.
    """

    estimates: Mapping[str, PreferenceResult]
    spearman: Mapping[tuple[str, str], float]
    top_user_overlap: Mapping[tuple[str, str], float]

    def most_correlated_pair(self) -> tuple[str, str]:
        """The pair of estimators with the highest rank correlation."""
        return max(self.spearman, key=lambda pair: self.spearman[pair])

    def correlation(self, model_a: str, model_b: str) -> float:
        """Rank correlation of two models (order-insensitive)."""
        if (model_a, model_b) in self.spearman:
            return self.spearman[(model_a, model_b)]
        if (model_b, model_a) in self.spearman:
            return self.spearman[(model_b, model_a)]
        raise ConfigurationError(f"no correlation recorded for {model_a!r} / {model_b!r}")


def _top_decile_users(theta: np.ndarray) -> set[int]:
    count = max(1, theta.size // 10)
    return set(np.argsort(-theta, kind="stable")[:count].tolist())


def compare_preference_models(
    train: RatingDataset,
    *,
    estimators: Mapping[str, PreferenceModel] | None = None,
) -> PreferenceComparison:
    """Fit all estimators on ``train`` and compare them pairwise."""
    models = dict(estimators) if estimators is not None else default_estimators()
    if len(models) < 2:
        raise ConfigurationError("need at least two estimators to compare")

    estimates = {name: model.estimate(train) for name, model in models.items()}
    names = list(estimates)

    spearman: dict[tuple[str, str], float] = {}
    overlap: dict[tuple[str, str], float] = {}
    for idx, name_a in enumerate(names):
        for name_b in names[idx + 1:]:
            theta_a = estimates[name_a].theta
            theta_b = estimates[name_b].theta
            if theta_a.std() == 0 or theta_b.std() == 0:
                correlation = 0.0
            else:
                correlation = float(scipy_stats.spearmanr(theta_a, theta_b).statistic)
            spearman[(name_a, name_b)] = correlation

            top_a = _top_decile_users(theta_a)
            top_b = _top_decile_users(theta_b)
            union = len(top_a | top_b)
            overlap[(name_a, name_b)] = len(top_a & top_b) / union if union else 0.0

    return PreferenceComparison(
        estimates=estimates, spearman=spearman, top_user_overlap=overlap
    )


def dispersion_summary(estimates: Mapping[str, PreferenceResult]) -> dict[str, dict[str, float]]:
    """Mean / std / interquartile range per estimator (Figure 2's comparison)."""
    summary: dict[str, dict[str, float]] = {}
    for name, result in estimates.items():
        theta = result.theta
        q25, q75 = np.percentile(theta, [25, 75]) if theta.size else (0.0, 0.0)
        summary[name] = {
            "mean": float(theta.mean()) if theta.size else 0.0,
            "std": float(theta.std()) if theta.size else 0.0,
            "iqr": float(q75 - q25),
        }
    return summary


def preference_shift_users(
    baseline: PreferenceResult,
    refined: PreferenceResult,
    *,
    top_k: int = 10,
) -> Sequence[int]:
    """Users whose preference changed the most between two estimators.

    Useful for inspecting what the generalized optimization adds over the
    TFIDF average: the returned users are where the item-weighting matters.
    """
    if baseline.theta.shape != refined.theta.shape:
        raise ConfigurationError("preference vectors must cover the same users")
    if top_k < 1:
        raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
    delta = np.abs(refined.theta - baseline.theta)
    order = np.argsort(-delta, kind="stable")[: min(top_k, delta.size)]
    return [int(u) for u in order]
