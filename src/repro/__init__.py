"""repro — reproduction of the GANC top-N recommendation framework.

The package implements the full system described in "A Generic Top-N
Recommendation Framework For Trading-off Accuracy, Novelty, and Coverage"
(Zolaktaf, Babanezhad, Pottinger — ICDE 2018): the user long-tail preference
estimators, the GANC re-ranking framework with its OSLG optimizer, the base
recommenders and re-ranking baselines it is compared against, the Table III
metric suite, and an experiment harness that regenerates every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import make_dataset, split_ratings, GANC, GANCConfig
>>> from repro.recommenders import PureSVD
>>> from repro.preferences import GeneralizedPreference
>>> from repro.coverage import DynamicCoverage
>>> data = make_dataset("ml100k", scale=0.5)
>>> split = split_ratings(data, train_ratio=0.5, seed=0)
>>> model = GANC(PureSVD(n_factors=50), GeneralizedPreference(), DynamicCoverage(),
...              config=GANCConfig(sample_size=100, seed=0))
>>> top5 = model.fit(split.train).recommend_all(5)
"""

from repro.data import (
    RatingDataset,
    TrainTestSplit,
    RatioSplitter,
    LeaveKOutSplitter,
    split_ratings,
    PopularityStats,
    long_tail_items,
    SyntheticConfig,
    SyntheticDatasetFactory,
    DATASET_PROFILES,
    make_dataset,
)
from repro.preferences import (
    ActivityPreference,
    NormalizedLongTailPreference,
    TfidfPreference,
    GeneralizedPreference,
    RandomPreference,
    ConstantPreference,
    PreferenceResult,
    make_preference_model,
)
from repro.recommenders import (
    MostPopular,
    RandomRecommender,
    RSVD,
    PureSVD,
    CofiRank,
    ItemKNN,
    make_recommender,
)
from repro.coverage import (
    RandomCoverage,
    StaticCoverage,
    DynamicCoverage,
    CoverageState,
    DeltaSnapshots,
    make_coverage,
)
from repro.ganc import GANC, GANCConfig, OSLGOptimizer, LocallyGreedyOptimizer, GaussianKDE
from repro.rerankers import (
    RankingBasedTechnique,
    ResourceAllocation5D,
    PersonalizedRankingAdaptation,
    make_reranker,
)
from repro.metrics import MetricReport, evaluate_top_n
from repro.evaluation import Evaluator, AllUnratedItemsProtocol, RatedTestItemsProtocol
from repro.registry import available, create, register
from repro.pipeline import (
    Pipeline,
    PipelineSpec,
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    ExecutionSpec,
    GANCSpec,
    ganc_spec,
)
from repro.parallel import (
    Executor,
    SerialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    get_executor,
    resolve_executor,
)
from repro.serving import (
    AsyncRecommendationService,
    RecommendationStore,
    build_async_service,
    compile_artifact,
    load_manifest,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "RatingDataset",
    "TrainTestSplit",
    "RatioSplitter",
    "LeaveKOutSplitter",
    "split_ratings",
    "PopularityStats",
    "long_tail_items",
    "SyntheticConfig",
    "SyntheticDatasetFactory",
    "DATASET_PROFILES",
    "make_dataset",
    # preferences
    "ActivityPreference",
    "NormalizedLongTailPreference",
    "TfidfPreference",
    "GeneralizedPreference",
    "RandomPreference",
    "ConstantPreference",
    "PreferenceResult",
    "make_preference_model",
    # recommenders
    "MostPopular",
    "RandomRecommender",
    "RSVD",
    "PureSVD",
    "CofiRank",
    "ItemKNN",
    "make_recommender",
    # coverage
    "RandomCoverage",
    "StaticCoverage",
    "DynamicCoverage",
    "CoverageState",
    "DeltaSnapshots",
    "make_coverage",
    # GANC
    "GANC",
    "GANCConfig",
    "OSLGOptimizer",
    "LocallyGreedyOptimizer",
    "GaussianKDE",
    # re-ranking baselines
    "RankingBasedTechnique",
    "ResourceAllocation5D",
    "PersonalizedRankingAdaptation",
    "make_reranker",
    # evaluation
    "MetricReport",
    "evaluate_top_n",
    "Evaluator",
    "AllUnratedItemsProtocol",
    "RatedTestItemsProtocol",
    # component registry
    "register",
    "create",
    "available",
    # pipeline API
    "Pipeline",
    "PipelineSpec",
    "ComponentSpec",
    "DatasetSpec",
    "EvaluationSpec",
    "ExecutionSpec",
    "GANCSpec",
    "ganc_spec",
    # parallel execution
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_executor",
    # serving
    "RecommendationStore",
    "compile_artifact",
    "load_manifest",
    "AsyncRecommendationService",
    "build_async_service",
]
