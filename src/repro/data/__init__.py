"""Rating-data substrate: dataset model, loaders, splits, popularity statistics.

This subpackage implements everything the paper's Section II-A data model needs:

* :class:`~repro.data.dataset.RatingDataset` — an immutable container of
  (user, item, rating) interactions with fast per-user / per-item access,
* format-exact loaders for the public datasets the paper evaluates on
  (MovieLens 100K/1M/10M, MovieTweetings, Netflix),
* a synthetic dataset factory that reproduces the datasets' popularity bias and
  sparsity profile when the original files are not available offline,
* train/test splitting utilities (per-user ratio split κ, leave-k-out),
* streaming ingestion (:mod:`repro.data.incremental`): append new rating
  triples to a split — id-map growth included — without mutating anything,
* out-of-core stores (:mod:`repro.data.outofcore`): chunked CSV→shard
  ingestion and memmap-backed datasets for ratings files that do not fit
  in memory,
* item popularity statistics and the Pareto (80/20) long-tail item set.
"""

from repro.data.dataset import RatingDataset, Interaction
from repro.data.incremental import (
    SplitExtension,
    consumed_delta,
    extend_split,
    extend_split_interactions,
    iter_rating_rows,
    read_delta_csv,
)
from repro.data.outofcore import (
    IngestReport,
    ingest_csv,
    load_ingest_manifest,
    load_outofcore,
)
from repro.data.popularity import PopularityStats, long_tail_items, compute_popularity
from repro.data.split import (
    RatioSplitter,
    LeaveKOutSplitter,
    TrainTestSplit,
    split_ratings,
)
from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticDatasetFactory,
    DATASET_PROFILES,
    make_dataset,
    stream_ratings_csv,
)
from repro.data.loaders import (
    load_movielens_100k,
    load_movielens_dat,
    load_movietweetings,
    load_netflix_directory,
    load_csv_ratings,
)

__all__ = [
    "RatingDataset",
    "Interaction",
    "SplitExtension",
    "consumed_delta",
    "extend_split",
    "extend_split_interactions",
    "iter_rating_rows",
    "read_delta_csv",
    "IngestReport",
    "ingest_csv",
    "load_ingest_manifest",
    "load_outofcore",
    "PopularityStats",
    "long_tail_items",
    "compute_popularity",
    "RatioSplitter",
    "LeaveKOutSplitter",
    "TrainTestSplit",
    "split_ratings",
    "SyntheticConfig",
    "SyntheticDatasetFactory",
    "DATASET_PROFILES",
    "make_dataset",
    "stream_ratings_csv",
    "load_movielens_100k",
    "load_movielens_dat",
    "load_movietweetings",
    "load_netflix_directory",
    "load_csv_ratings",
]
