"""Streaming ingestion: append new rating triples to an immutable split.

The paper's framework is an offline design — everything downstream (model
fits, the GANC assignment, compiled serving artifacts) is a function of one
frozen train/test split.  This module is the front door for *new* ratings
arriving after that split was made: it appends triples to the train side
while preserving the immutability contract (every step returns new
datasets; see :meth:`~repro.data.dataset.RatingDataset.extend`), grows the
id maps for unseen raw users/items in first-appearance order (the same
determinism rule as :meth:`RatingDataset.from_interactions`), and reports
exactly which dense users were touched — the signal the delta-refit and
delta-compile layers (:mod:`repro.serving.update`) need to bound their
work.

Three ingestion shapes are supported:

* dense-index deltas (:func:`extend_split`) — e.g. feedback replayed by the
  simulator, which already lives in the split's index space,
* raw-id deltas (:func:`extend_split_interactions`) — `(user, item, rating)`
  records whose identifiers may never have been seen before,
* delta CSV files (:func:`read_delta_csv`) — the ``repro compile --update
  --delta`` wire format, one ``user,item[,rating]`` line per new rating.

:func:`consumed_delta` converts a simulation's per-event consumed feedback
(:class:`~repro.simulate.engine.SimulationResult`) into dense delta arrays,
closing the online loop: simulate → ingest → delta-refit → delta-compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import Interaction, RatingDataset
from repro.data.split import TrainTestSplit
from repro.exceptions import DataError, DataFormatError


@dataclass(frozen=True)
class SplitExtension:
    """An extended split plus the delta bookkeeping downstream layers need.

    Attributes
    ----------
    split:
        The new :class:`~repro.data.split.TrainTestSplit`; its train side is
        the old train followed by the appended triples (prefix-preserving),
        its test side keeps the old test triples over the grown universe.
    changed_users:
        Sorted dense indices of users that gained at least one train rating.
    new_users, new_items:
        Dense indices appended to the universe (empty when it did not grow).
    n_new_ratings:
        Number of appended train triples.
    """

    split: TrainTestSplit
    changed_users: np.ndarray
    new_users: np.ndarray
    new_items: np.ndarray
    n_new_ratings: int


def _grow_test(
    test: RatingDataset, train: RatingDataset
) -> RatingDataset:
    """Re-universe the test side onto the extended train's universe."""
    if test.n_users == train.n_users and test.n_items == train.n_items:
        return test
    old_users = test.n_users
    old_items = test.n_items
    return test.extend(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        n_users=train.n_users,
        n_items=train.n_items,
        user_ids=train.user_ids[old_users:],
        item_ids=train.item_ids[old_items:],
    )


def extend_split(
    split: TrainTestSplit,
    user_indices: np.ndarray,
    item_indices: np.ndarray,
    ratings: np.ndarray,
    *,
    n_users: int | None = None,
    n_items: int | None = None,
    user_ids: Sequence[object] | None = None,
    item_ids: Sequence[object] | None = None,
) -> SplitExtension:
    """Append dense-index train triples to a split, growing the universe as needed.

    Parameters mirror :meth:`RatingDataset.extend`; the appended triples go
    to the *train* side (new observations are training signal — held-out
    test futures stay frozen so evaluation remains comparable), and the test
    side is re-universed to keep the split's shared-universe invariant.
    """
    old_users = split.train.n_users
    old_items = split.train.n_items
    train = split.train.extend(
        user_indices,
        item_indices,
        ratings,
        n_users=n_users,
        n_items=n_items,
        user_ids=user_ids,
        item_ids=item_ids,
    )
    test = _grow_test(split.test, train)
    delta_users = train.user_indices[split.train.n_ratings:]
    return SplitExtension(
        split=TrainTestSplit(train=train, test=test),
        changed_users=np.unique(delta_users),
        new_users=np.arange(old_users, train.n_users, dtype=np.int64),
        new_items=np.arange(old_items, train.n_items, dtype=np.int64),
        n_new_ratings=int(delta_users.size),
    )


def extend_split_interactions(
    split: TrainTestSplit,
    interactions: Iterable[Interaction] | Iterable[tuple[object, object, float]],
) -> SplitExtension:
    """Append raw-id ``(user, item, rating)`` records, growing the id maps.

    Known raw identifiers resolve through the split's existing id maps;
    unseen identifiers are assigned fresh dense indices in first-appearance
    order (the same rule :meth:`RatingDataset.from_interactions` uses), so
    repeated ingestion of the same delta file is deterministic.
    """
    train = split.train
    user_map = {raw: index for index, raw in enumerate(train.user_ids)}
    item_map = {raw: index for index, raw in enumerate(train.item_ids)}
    users: list[int] = []
    items: list[int] = []
    values: list[float] = []
    new_user_ids: list[object] = []
    new_item_ids: list[object] = []
    for record in interactions:
        if isinstance(record, Interaction):
            raw_user, raw_item, rating = record.user, record.item, record.rating
        else:
            raw_user, raw_item, rating = record
        if raw_user not in user_map:
            user_map[raw_user] = len(user_map)
            new_user_ids.append(raw_user)
        if raw_item not in item_map:
            item_map[raw_item] = len(item_map)
            new_item_ids.append(raw_item)
        users.append(user_map[raw_user])
        items.append(item_map[raw_item])
        values.append(float(rating))
    return extend_split(
        split,
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
        n_users=len(user_map),
        n_items=len(item_map),
        user_ids=new_user_ids,
        item_ids=new_item_ids,
    )


def _coerce_id(token: str) -> object:
    """Raw CSV ids: integers when they parse as such (the loaders' and
    synthetic factory's default id type), verbatim strings otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def iter_rating_rows(
    path: str | Path,
    *,
    default_rating: float = 1.0,
    description: str = "ratings file",
) -> Iterator[tuple[int, object, object, float]]:
    """Stream ``user,item[,rating]`` rows from a CSV file, one line at a time.

    Yields ``(line_number, raw_user, raw_item, rating)`` tuples without ever
    holding the whole file in memory, which is what lets the out-of-core
    ingestion (:mod:`repro.data.outofcore`) and the delta-CSV reader share
    one validation path at any file size.  Blank lines and ``#`` comments are
    skipped; a first line whose rating column does not parse as a number is
    treated as a header and skipped; a missing rating column defaults to
    ``default_rating``.  Malformed lines raise
    :class:`~repro.exceptions.DataFormatError` naming the file and line, so
    an error in the middle of a multi-gigabyte file is still pinpointed.
    """
    path = Path(path)
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise DataFormatError(f"cannot read {description} {path}: {exc}") from exc
    with handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [part.strip() for part in line.split(",")]
            if len(parts) not in (2, 3):
                raise DataFormatError(
                    f"{path}:{number}: expected 'user,item[,rating]', got {line!r}"
                )
            try:
                rating = float(parts[2]) if len(parts) == 3 else default_rating
            except ValueError as exc:
                if number == 1:
                    continue  # header line
                raise DataFormatError(
                    f"{path}:{number}: rating {parts[2]!r} is not a number"
                ) from exc
            yield number, _coerce_id(parts[0]), _coerce_id(parts[1]), rating


def read_delta_csv(path: str | Path) -> list[tuple[object, object, float]]:
    """Read a delta file of ``user,item[,rating]`` lines (rating defaults to 1.0).

    A first line whose rating column does not parse as a number is treated
    as a header and skipped.  Malformed lines raise
    :class:`~repro.exceptions.DataFormatError` naming the file and line.
    The file is streamed line-by-line (via :func:`iter_rating_rows`) rather
    than slurped, so delta files are not size-limited by memory.
    """
    path = Path(path)
    records: list[tuple[object, object, float]] = [
        (user, item, rating)
        for _, user, item, rating in iter_rating_rows(path, description="delta file")
    ]
    if not records:
        raise DataFormatError(f"delta file {path} contains no interactions")
    return records


def consumed_delta(
    event_users: np.ndarray,
    consumed: Sequence[np.ndarray],
    *,
    rating: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense delta arrays from a simulation's per-event consumed feedback.

    ``event_users[e]`` is the dense user behind event ``e`` and
    ``consumed[e]`` the item indices that event's feedback model consumed
    (:attr:`SimulationResult.consumed <repro.simulate.SimulationResult>`);
    each consumed item becomes one implicit-rating triple, preserving event
    order and duplicates (repeat consumption is repeat evidence — exactly
    what popularity counting expects).
    """
    event_users = np.asarray(event_users, dtype=np.int64)
    if event_users.size != len(consumed):
        raise DataError(
            f"consumed_delta needs one consumed array per event, got "
            f"{event_users.size} events and {len(consumed)} arrays"
        )
    sizes = np.asarray([np.asarray(arr).size for arr in consumed], dtype=np.int64)
    users = np.repeat(event_users, sizes)
    items = (
        np.concatenate([np.asarray(arr, dtype=np.int64) for arr in consumed])
        if users.size
        else np.empty(0, dtype=np.int64)
    )
    return users, items, np.full(users.size, float(rating), dtype=np.float64)
