"""Synthetic rating-data generators with MovieLens/Netflix-like popularity bias.

The paper evaluates on five public datasets (Table II).  In an offline
environment those files are not available, so this module builds surrogates
that reproduce the *statistical structure* the paper's phenomena depend on:

* a heavy-tailed (Zipf) item popularity distribution, so that roughly 85% of
  the items form the Pareto long tail,
* a heavy-tailed user activity distribution with a configurable minimum number
  of ratings per user (the paper's τ),
* per-user heterogeneity in long-tail propensity — some users sample items
  almost proportionally to popularity, others sample closer to uniformly; this
  is exactly the signal the θ estimators of Section II are designed to recover,
* a low-rank latent preference structure plus an item popularity effect in the
  rating *values*, so matrix-factorization recommenders have real signal to
  learn and popular items receive systematically more and slightly higher
  ratings (the "missing not at random" popularity bias).

``DATASET_PROFILES`` mirrors Table II at laptop scale: the user/item counts
are scaled down but the density, rating scale, κ and τ of each dataset are
preserved, so sparse-vs-dense comparisons behave like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of a synthetic popularity-biased rating dataset.

    Attributes
    ----------
    name:
        Dataset name used in reports.
    n_users, n_items:
        Size of the user and item universes.
    target_ratings:
        Total number of interactions to generate (approximate; duplicates are
        never produced, so very dense configurations may saturate below this).
    popularity_exponent:
        Zipf exponent of the item popularity weights; larger values mean a
        heavier head.  ~0.8-1.2 matches movie-rating datasets.
    min_user_ratings:
        The paper's τ: every user rates at least this many items.
    rating_levels:
        The discrete rating vocabulary (e.g. 1..5 stars, or half-star steps).
    latent_dim:
        Rank of the latent user/item preference structure.
    latent_scale:
        Standard deviation of the latent factors; controls how much of the
        rating variance is personalized versus popularity-driven.
    popularity_rating_boost:
        Strength of the effect "popular items receive higher ratings".
    exploration_concentration:
        Beta-distribution parameters (alpha, beta) of the per-user long-tail
        propensity ρ_u.  Skewed toward 0 reproduces the paper's observation
        that most users concentrate on popular items.
    noise_scale:
        Standard deviation of the rating noise before discretization.
    seed:
        Seed for reproducible generation.
    """

    name: str = "synthetic"
    n_users: int = 500
    n_items: int = 800
    target_ratings: int = 25_000
    popularity_exponent: float = 1.0
    min_user_ratings: int = 20
    rating_levels: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    latent_dim: int = 8
    latent_scale: float = 0.45
    popularity_rating_boost: float = 0.6
    exploration_concentration: tuple[float, float] = (1.3, 3.5)
    noise_scale: float = 0.55
    seed: int = 0
    train_ratio: float = 0.8

    def __post_init__(self) -> None:
        if self.n_users <= 1 or self.n_items <= 1:
            raise ConfigurationError(
                f"n_users and n_items must exceed 1, got {self.n_users}, {self.n_items}"
            )
        if self.min_user_ratings < 1:
            raise ConfigurationError(
                f"min_user_ratings must be >= 1, got {self.min_user_ratings}"
            )
        if self.min_user_ratings > self.n_items:
            raise ConfigurationError(
                "min_user_ratings cannot exceed the number of items "
                f"({self.min_user_ratings} > {self.n_items})"
            )
        if self.target_ratings < self.n_users * self.min_user_ratings:
            raise ConfigurationError(
                "target_ratings is too small to give every user min_user_ratings "
                f"interactions ({self.target_ratings} < "
                f"{self.n_users * self.min_user_ratings})"
            )
        if self.target_ratings > self.n_users * self.n_items:
            raise ConfigurationError(
                "target_ratings exceeds the number of user-item pairs "
                f"({self.target_ratings} > {self.n_users * self.n_items})"
            )
        if not self.rating_levels:
            raise ConfigurationError("rating_levels must not be empty")
        if self.popularity_exponent < 0:
            raise ConfigurationError(
                f"popularity_exponent must be non-negative, got {self.popularity_exponent}"
            )

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Return a configuration scaled by ``factor`` in users/items/ratings."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        n_users = max(int(round(self.n_users * factor)), 10)
        n_items = max(int(round(self.n_items * factor)), 20)
        target = max(
            int(round(self.target_ratings * factor)),
            n_users * self.min_user_ratings,
        )
        target = min(target, n_users * n_items)
        return replace(self, n_users=n_users, n_items=n_items, target_ratings=target)


class SyntheticDatasetFactory:
    """Generates :class:`RatingDataset` instances from a :class:`SyntheticConfig`."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    def generate(self, *, seed: SeedLike = None) -> RatingDataset:
        """Generate a dataset; ``seed`` overrides the config seed when given."""
        cfg = self.config
        rng = ensure_rng(cfg.seed if seed is None else seed)

        item_weights = self._item_popularity_weights(rng)
        user_activity = self._user_activity(rng)
        exploration = rng.beta(*cfg.exploration_concentration, size=cfg.n_users)

        user_factors = rng.normal(0.0, cfg.latent_scale, size=(cfg.n_users, cfg.latent_dim))
        item_factors = rng.normal(0.0, cfg.latent_scale, size=(cfg.n_items, cfg.latent_dim))
        item_bias = rng.normal(0.0, 0.25, size=cfg.n_items)
        user_bias = rng.normal(0.0, 0.25, size=cfg.n_users)

        # Popularity effect on rating values: log-popularity, normalized to
        # zero mean so it shifts rather than inflates the global mean.
        log_pop = np.log(item_weights / item_weights.min())
        log_pop = (log_pop - log_pop.mean()) / max(log_pop.std(), 1e-12)

        levels = np.asarray(sorted(cfg.rating_levels), dtype=np.float64)
        global_mean = float(levels.mean())

        users: list[np.ndarray] = []
        items: list[np.ndarray] = []
        values: list[np.ndarray] = []
        uniform = np.full(cfg.n_items, 1.0 / cfg.n_items)

        for user in range(cfg.n_users):
            count = int(user_activity[user])
            rho = float(exploration[user])
            mixture = (1.0 - rho) * item_weights + rho * uniform
            mixture = mixture / mixture.sum()
            chosen = rng.choice(cfg.n_items, size=count, replace=False, p=mixture)

            scores = (
                global_mean
                + user_bias[user]
                + item_bias[chosen]
                + cfg.popularity_rating_boost * log_pop[chosen] * (1.0 - rho)
                + user_factors[user] @ item_factors[chosen].T
                + rng.normal(0.0, cfg.noise_scale, size=count)
            )
            ratings = self._discretize(scores, levels)

            users.append(np.full(count, user, dtype=np.int64))
            items.append(chosen.astype(np.int64))
            values.append(ratings)

        return RatingDataset(
            np.concatenate(users),
            np.concatenate(items),
            np.concatenate(values),
            n_users=cfg.n_users,
            n_items=cfg.n_items,
            name=cfg.name,
        )

    # ------------------------------------------------------------------ #
    def _item_popularity_weights(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-like popularity weights with a shuffled item identity."""
        cfg = self.config
        ranks = np.arange(1, cfg.n_items + 1, dtype=np.float64)
        weights = ranks ** (-cfg.popularity_exponent)
        rng.shuffle(weights)
        return weights / weights.sum()

    def _user_activity(self, rng: np.random.Generator) -> np.ndarray:
        """Heavy-tailed per-user rating counts summing (almost) to the target.

        A Pareto share of the extra budget is given to each user on top of the
        minimum; whatever is lost to rounding or to the per-user cap (a user
        cannot rate more than ``n_items`` items) is redistributed among the
        users that still have headroom, so the generated dataset hits the
        configured ``target_ratings`` unless the matrix itself saturates.
        """
        cfg = self.config
        raw = rng.pareto(1.2, size=cfg.n_users) + 1.0
        raw = raw / raw.sum()
        budget = cfg.target_ratings - cfg.n_users * cfg.min_user_ratings
        extra = np.floor(raw * budget).astype(np.int64)
        activity = np.minimum(extra + cfg.min_user_ratings, cfg.n_items)

        shortfall = cfg.target_ratings - int(activity.sum())
        if shortfall > 0:
            headroom = cfg.n_items - activity
            # Hand out the remaining budget one rating at a time, preferring
            # users with the largest Pareto share (keeps the heavy tail).
            order = np.argsort(-raw, kind="stable")
            while shortfall > 0 and headroom[order].sum() > 0:
                for user in order:
                    if shortfall == 0:
                        break
                    if headroom[user] > 0:
                        activity[user] += 1
                        headroom[user] -= 1
                        shortfall -= 1
        return activity

    @staticmethod
    def _discretize(scores: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Snap continuous scores to the nearest allowed rating level."""
        clipped = np.clip(scores, levels[0], levels[-1])
        idx = np.abs(clipped[:, None] - levels[None, :]).argmin(axis=1)
        return levels[idx]


def _fill_counts_to_target(
    counts: np.ndarray,
    raw: np.ndarray,
    target: int,
    *,
    floor: int,
    cap: int,
) -> np.ndarray:
    """Adjust per-user counts to sum exactly to ``target`` within [floor, cap].

    The residual budget (positive or negative) is handed out in order of
    Pareto share ``raw`` — the most active users absorb the correction, which
    preserves the heavy tail — using cumulative headroom instead of the
    one-rating-at-a-time loop of :meth:`SyntheticDatasetFactory._user_activity`
    (that loop is O(target) and unusable at 10M ratings).
    """
    diff = int(target - counts.sum())
    if diff == 0:
        return counts
    order = np.argsort(-raw, kind="stable")
    if diff > 0:
        avail = (cap - counts)[order]
    else:
        avail = (counts - floor)[order]
    cumulative = np.cumsum(avail)
    take = np.clip(abs(diff) - (cumulative - avail), 0, avail)
    adjust = np.zeros_like(counts)
    adjust[order] = take
    return counts + adjust if diff > 0 else counts - adjust


def stream_ratings_csv(
    path: str | Path,
    *,
    n_users: int,
    n_items: int,
    target_ratings: int,
    seed: SeedLike = 0,
    min_user_ratings: int = 1,
    max_user_ratings: int = 1_000,
    popularity_exponent: float = 1.0,
    rating_levels: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0),
    exploration_concentration: tuple[float, float] = (1.3, 3.5),
    n_genres: int = 24,
    genre_affinity: float = 0.8,
    genre_concentration: float = 0.25,
    chunk_users: int = 256,
    header: bool = True,
) -> int:
    """Write a popularity-biased synthetic ratings CSV without materializing it.

    The in-memory factory (:class:`SyntheticDatasetFactory`) samples each
    user's items with ``rng.choice(..., replace=False, p=mixture)``, which is
    a per-user Python loop with an O(|I|) probability renormalization — far
    too slow at the 10M-rating scale the out-of-core path targets.  This
    generator keeps the same statistical shape (Zipf item popularity, Pareto
    user activity, per-user exploration mixing, discretized rating levels)
    but samples every user of a chunk at once with the Gumbel top-k trick:
    ``argtop_c(log w + Gumbel noise)`` draws ``c`` items without replacement
    with probability proportional to ``w``, entirely vectorized.  Rows are
    streamed to ``path`` chunk by chunk, so peak memory is
    ``O(chunk_users × n_items)`` regardless of ``target_ratings``.

    On top of popularity, items carry a latent genre and users a Dirichlet-like
    preference over genres (``n_genres``, ``genre_affinity``,
    ``genre_concentration``) — without this cluster structure, item co-rating
    patterns are popularity-plus-noise, every item-item similarity is equally
    weak, and no approximate neighbour search (nor, arguably, the exact KNN
    itself) is meaningful.  Real rating data is strongly clustered; the genre
    field reproduces that, which is what the ANN recall gates measure against.
    ``genre_affinity=0`` recovers the unclustered behaviour.

    Per-user activity is capped at ``max_user_ratings`` — beyond keeping the
    chunk matrices small, the cap bounds the cost of the exact item-item
    gram product downstream (``Σ_u nnz_u²``), which is what makes the exact
    baseline feasible at benchmark scale.

    Returns the number of rating rows written (exactly ``target_ratings``
    unless the caps make that total infeasible, which raises).
    """
    cap = min(int(max_user_ratings), int(n_items))
    if n_users <= 1 or n_items <= 1:
        raise ConfigurationError(
            f"n_users and n_items must exceed 1, got {n_users}, {n_items}"
        )
    if min_user_ratings < 1 or min_user_ratings > cap:
        raise ConfigurationError(
            f"min_user_ratings must be in [1, {cap}], got {min_user_ratings}"
        )
    if not n_users * min_user_ratings <= target_ratings <= n_users * cap:
        raise ConfigurationError(
            f"target_ratings must lie in [{n_users * min_user_ratings}, "
            f"{n_users * cap}] for these caps, got {target_ratings}"
        )
    if chunk_users < 1:
        raise ConfigurationError(f"chunk_users must be >= 1, got {chunk_users}")
    if n_genres < 1:
        raise ConfigurationError(f"n_genres must be >= 1, got {n_genres}")
    if not 0.0 <= genre_affinity <= 1.0:
        raise ConfigurationError(
            f"genre_affinity must be in [0, 1], got {genre_affinity}"
        )
    if genre_concentration <= 0.0:
        raise ConfigurationError(
            f"genre_concentration must be positive, got {genre_concentration}"
        )
    rng = ensure_rng(seed)

    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-float(popularity_exponent))
    rng.shuffle(weights)
    weights = weights / weights.sum()
    item_genres = rng.integers(0, n_genres, size=n_items)

    raw = rng.pareto(1.2, size=n_users) + 1.0
    share = raw / raw.sum()
    counts = np.clip(
        np.floor(share * target_ratings).astype(np.int64), min_user_ratings, cap
    )
    counts = _fill_counts_to_target(
        counts, raw, int(target_ratings), floor=min_user_ratings, cap=cap
    )
    exploration = rng.beta(*exploration_concentration, size=n_users)
    user_bias = rng.normal(0.0, 0.25, size=n_users)
    item_bias = rng.normal(0.0, 0.25, size=n_items)

    levels = np.asarray(sorted(rating_levels), dtype=np.float64)
    midpoints = (levels[1:] + levels[:-1]) / 2.0
    global_mean = float(levels.mean())

    written = 0
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write("user,item,rating\n")
        for start in range(0, n_users, int(chunk_users)):
            block = np.arange(start, min(start + int(chunk_users), n_users))
            rho = exploration[block]
            # Dirichlet genre preferences for the chunk's users (gamma draws
            # normalized per row); small concentration = taste focused on a
            # few genres, which is what gives items real neighbourhoods.
            prefs = rng.gamma(genre_concentration, size=(block.size, n_genres))
            prefs /= prefs.sum(axis=1, keepdims=True)
            taste = prefs[:, item_genres] * n_genres
            personalized = weights[None, :] * (
                (1.0 - genre_affinity) + genre_affinity * taste
            )
            personalized /= personalized.sum(axis=1, keepdims=True)
            mixture = (1.0 - rho)[:, None] * personalized + rho[:, None] * (
                1.0 / n_items
            )
            keys = np.log(mixture) + rng.gumbel(size=mixture.shape)
            for offset, user in enumerate(block):
                count = int(counts[user])
                chosen = np.argpartition(keys[offset], -count)[-count:]
                scores = (
                    global_mean
                    + user_bias[user]
                    + item_bias[chosen]
                    + 0.3 * genre_affinity * np.clip(taste[offset, chosen] - 1.0, -1.0, 3.0)
                    + rng.normal(0.0, 0.55, size=count)
                )
                values = levels[
                    np.searchsorted(midpoints, np.clip(scores, levels[0], levels[-1]))
                ]
                handle.writelines(
                    f"{user},{item},{value:.1f}\n"
                    for item, value in zip(chosen.tolist(), values.tolist())
                )
                written += count
    return written


def _profiles() -> Mapping[str, SyntheticConfig]:
    """Laptop-scale surrogates of the paper's Table II datasets.

    User/item counts are scaled down ~10-100x but density, rating scale, τ and
    the popularity-bias strength track the original datasets, so the relative
    behaviour of dense (ML-100K/1M) versus sparse (MT-200K, Netflix) settings
    is preserved.
    """
    return {
        # ML-100K: dense (6.3%), 5-star, τ=20.
        "ml100k": SyntheticConfig(
            name="ML-100K-like",
            n_users=400,
            n_items=700,
            target_ratings=17_500,  # ~6.3% density
            popularity_exponent=0.95,
            min_user_ratings=20,
            latent_dim=8,
            seed=100,
            train_ratio=0.5,
        ),
        # ML-1M: density 4.5%, τ=20.
        "ml1m": SyntheticConfig(
            name="ML-1M-like",
            n_users=900,
            n_items=1_100,
            target_ratings=44_000,  # ~4.4% density
            popularity_exponent=1.0,
            min_user_ratings=20,
            latent_dim=10,
            seed=101,
            train_ratio=0.5,
        ),
        # ML-10M: density 1.3%, half-star ratings, τ=20.
        "ml10m": SyntheticConfig(
            name="ML-10M-like",
            n_users=1_800,
            n_items=2_200,
            target_ratings=54_000,  # ~1.4% density
            popularity_exponent=1.05,
            min_user_ratings=20,
            rating_levels=tuple(np.arange(0.5, 5.01, 0.5)),
            latent_dim=10,
            seed=102,
            train_ratio=0.5,
        ),
        # MT-200K: extremely sparse (0.16%), τ=5, many infrequent users.
        "mt200k": SyntheticConfig(
            name="MT-200K-like",
            n_users=1_500,
            n_items=3_000,
            target_ratings=13_500,  # ~0.3% density, very sparse
            popularity_exponent=1.15,
            min_user_ratings=5,
            exploration_concentration=(1.1, 4.5),
            latent_dim=6,
            seed=103,
            train_ratio=0.8,
        ),
        # Netflix: 1.2% density, huge item space relative to per-user activity.
        "netflix": SyntheticConfig(
            name="Netflix-like",
            n_users=2_500,
            n_items=2_000,
            target_ratings=60_000,  # ~1.2% density
            popularity_exponent=1.1,
            min_user_ratings=10,
            latent_dim=12,
            seed=104,
            train_ratio=0.5,
        ),
    }


DATASET_PROFILES: Mapping[str, SyntheticConfig] = _profiles()


def make_dataset(profile: str, *, scale: float = 1.0, seed: SeedLike = None) -> RatingDataset:
    """Generate the surrogate dataset for a named Table II profile.

    Parameters
    ----------
    profile:
        One of ``ml100k``, ``ml1m``, ``ml10m``, ``mt200k``, ``netflix``.
    scale:
        Multiplier on users/items/ratings, e.g. ``0.25`` for quick tests.
    seed:
        Optional override of the profile's seed.
    """
    if profile not in DATASET_PROFILES:
        raise ConfigurationError(
            f"unknown dataset profile {profile!r}; choose from {sorted(DATASET_PROFILES)}"
        )
    config = DATASET_PROFILES[profile]
    if scale != 1.0:
        config = config.scaled(scale)
    return SyntheticDatasetFactory(config).generate(seed=seed)
