"""Out-of-core rating datasets: chunked CSV ingestion into memmap-backed shards.

Everything upstream of this module assumes a :class:`RatingDataset` whose
interaction arrays fit in memory — fine at the synthetic ML-1M scale the
reproduction started from, a hard wall at the paper's Netflix scale.  This
module is the scale front door:

* :func:`ingest_csv` streams a ``user,item[,rating]`` CSV through the same
  line-validation path as the delta reader
  (:func:`repro.data.incremental.iter_rating_rows`), growing the raw→dense id
  maps incrementally and writing fixed-size ``.npy`` shards plus a manifest —
  the same shard+manifest pattern as the compiled serving artifact
  (:mod:`repro.serving.artifact`), including atomic writes (temp file +
  ``os.replace``) and a manifest-last commit so a crashed ingest never leaves
  a store that parses.  ``append=True`` resumes an existing store, preserving
  already-assigned dense indices (first-appearance order, exactly like
  :meth:`RatingDataset.from_interactions` / ``extend``).
* :func:`load_outofcore` consolidates the shards into one contiguous
  ``.npy`` per column (built once per manifest revision, streamed through
  :func:`numpy.lib.format.open_memmap` so the build itself is out-of-core)
  and returns a :class:`RatingDataset` whose interaction arrays are
  read-only memmaps — the dataset constructor's ``np.asarray`` calls are
  no-copy for matching dtypes, so a 10M-rating store opens without reading
  10M ratings into RAM.

The peak resident cost of ingestion is one chunk (``chunk_size`` triples)
plus the id maps; the peak cost of loading is the id maps alone.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.incremental import iter_rating_rows
from repro.exceptions import ConfigurationError, DataError, DataFormatError

INGEST_FORMAT = "repro-ingest-v1"
"""Format tag written to (and required from) every ingest-store manifest."""

_MANIFEST_KEYS = (
    "format",
    "n_ratings",
    "n_users",
    "n_items",
    "revision",
    "shard_size",
    "shards",
)

_COLUMNS = ("users", "items", "ratings")
_DTYPES = {"users": np.int64, "items": np.int64, "ratings": np.float64}

_TMP_COUNTER = itertools.count()


def _tmp_path(path: Path) -> Path:
    """A unique sibling temp path (same filesystem, so ``os.replace`` is atomic)."""
    return path.with_name(f".{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")


def _atomic_save(path: Path, array: np.ndarray) -> None:
    """Write ``array`` to ``path`` atomically (readers never see partial files)."""
    tmp = _tmp_path(path)
    with tmp.open("wb") as handle:
        np.save(handle, array)
    os.replace(tmp, path)


def _atomic_write_json(path: Path, payload: object) -> None:
    """Write JSON atomically; the manifest is always the last file committed."""
    tmp = _tmp_path(path)
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _shard_name(column: str, index: int) -> str:
    """Relative shard path for chunk ``index`` of ``column``."""
    return f"shards/{column}_{index:05d}.npy"


@dataclass(frozen=True)
class IngestReport:
    """Summary of one :func:`ingest_csv` run.

    Attributes
    ----------
    directory:
        The ingest-store directory the run wrote to.
    n_ratings, n_users, n_items:
        Totals over the whole store after the run (not just this CSV).
    n_new_ratings:
        Triples appended by this run.
    n_shards:
        Number of chunk shards in the store after the run.
    revision:
        Monotonic store revision (bumped once per successful ingest).
    """

    directory: Path
    n_ratings: int
    n_users: int
    n_items: int
    n_new_ratings: int
    n_shards: int
    revision: int


def load_ingest_manifest(directory: str | Path) -> dict:
    """Read and validate an ingest store's ``manifest.json``.

    Raises :class:`~repro.exceptions.DataFormatError` when the manifest is
    missing, unparseable, has the wrong format tag, or lacks required keys;
    additive keys from future revisions are tolerated.
    """
    directory = Path(directory)
    path = directory / "manifest.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise DataFormatError(f"no ingest manifest at {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise DataFormatError(f"cannot parse ingest manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != INGEST_FORMAT:
        raise DataFormatError(
            f"{path} is not a {INGEST_FORMAT} manifest "
            f"(format={payload.get('format')!r})"
            if isinstance(payload, dict)
            else f"{path} is not a JSON object"
        )
    missing = [key for key in _MANIFEST_KEYS if key not in payload]
    if missing:
        raise DataFormatError(f"{path} is missing manifest keys: {missing}")
    return payload


def _read_id_map(path: Path) -> dict[object, int]:
    """Load a raw→dense id map from its JSON list (dense order)."""
    try:
        raw_ids = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DataFormatError(f"cannot read id map {path}: {exc}") from exc
    return {raw: index for index, raw in enumerate(raw_ids)}


def _flush_chunk(
    directory: Path,
    index: int,
    users: Sequence[int],
    items: Sequence[int],
    values: Sequence[float],
) -> list[str]:
    """Write one chunk as three parallel shards; returns their relative names."""
    arrays = {
        "users": np.asarray(users, dtype=np.int64),
        "items": np.asarray(items, dtype=np.int64),
        "ratings": np.asarray(values, dtype=np.float64),
    }
    names = []
    for column in _COLUMNS:
        name = _shard_name(column, index)
        _atomic_save(directory / name, arrays[column])
        names.append(name)
    return names


def ingest_csv(
    csv_path: str | Path,
    output_dir: str | Path,
    *,
    chunk_size: int = 1_000_000,
    default_rating: float = 1.0,
    append: bool = False,
) -> IngestReport:
    """Stream a ratings CSV into an out-of-core shard store.

    The CSV is read line-by-line through
    :func:`~repro.data.incremental.iter_rating_rows` (same validation and
    ``file:line`` error reporting as the delta reader); every ``chunk_size``
    rows become one triplet of ``.npy`` shards under ``output_dir/shards/``.
    Raw identifiers are mapped to dense indices in first-appearance order —
    the id maps are persisted as JSON so the mapping is stable across
    appends, giving the store the same prefix-preserving semantics as
    :meth:`RatingDataset.extend`.

    Parameters
    ----------
    csv_path:
        The ``user,item[,rating]`` CSV to ingest.
    output_dir:
        Store directory.  Must not already hold a store unless ``append``.
    chunk_size:
        Rows buffered in memory per shard; bounds the resident footprint.
    default_rating:
        Value used for two-column rows.
    append:
        Continue an existing store (new chunks, grown id maps, bumped
        revision) instead of creating a fresh one.

    Returns
    -------
    IngestReport
        Totals for the store after this run.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    csv_path = Path(csv_path)
    directory = Path(output_dir)
    manifest_path = directory / "manifest.json"

    if manifest_path.exists():
        if not append:
            raise DataError(
                f"{directory} already holds an ingest store; pass append=True "
                "to add ratings to it"
            )
        manifest = load_ingest_manifest(directory)
        user_map = _read_id_map(directory / "user_ids.json")
        item_map = _read_id_map(directory / "item_ids.json")
        shards: list[str] = list(manifest["shards"])
        n_existing = int(manifest["n_ratings"])
        revision = int(manifest["revision"])
        shard_index = len(shards) // len(_COLUMNS)
    else:
        if append:
            raise DataError(f"cannot append: no ingest store at {directory}")
        if directory.exists() and any(directory.iterdir()):
            raise DataError(
                f"refusing to create an ingest store in non-empty {directory}"
            )
        manifest = None
        user_map = {}
        item_map = {}
        shards = []
        n_existing = 0
        revision = 0
        shard_index = 0

    (directory / "shards").mkdir(parents=True, exist_ok=True)

    users: list[int] = []
    items: list[int] = []
    values: list[float] = []
    n_new = 0
    for _, raw_user, raw_item, rating in iter_rating_rows(
        csv_path, default_rating=default_rating
    ):
        users.append(user_map.setdefault(raw_user, len(user_map)))
        items.append(item_map.setdefault(raw_item, len(item_map)))
        values.append(rating)
        n_new += 1
        if len(users) >= chunk_size:
            shards.extend(_flush_chunk(directory, shard_index, users, items, values))
            shard_index += 1
            users, items, values = [], [], []
    if users:
        shards.extend(_flush_chunk(directory, shard_index, users, items, values))
        shard_index += 1
    if n_new == 0:
        raise DataFormatError(f"ratings file {csv_path} contains no interactions")

    # Id maps before the manifest; the manifest commit is what makes the
    # new revision visible, so a crash between these writes leaves the
    # store readable at its previous revision (extra shards are ignored).
    _atomic_write_json(directory / "user_ids.json", list(user_map))
    _atomic_write_json(directory / "item_ids.json", list(item_map))
    _atomic_write_json(
        manifest_path,
        {
            "format": INGEST_FORMAT,
            "n_ratings": n_existing + n_new,
            "n_users": len(user_map),
            "n_items": len(item_map),
            "revision": revision + 1,
            "shard_size": int(chunk_size),
            "shards": shards,
        },
    )
    return IngestReport(
        directory=directory,
        n_ratings=n_existing + n_new,
        n_users=len(user_map),
        n_items=len(item_map),
        n_new_ratings=n_new,
        n_shards=shard_index,
        revision=revision + 1,
    )


def _consolidate(directory: Path, manifest: dict) -> Path:
    """Concatenate the store's shards into one contiguous ``.npy`` per column.

    The build streams shard-by-shard through a writable
    :func:`numpy.lib.format.open_memmap`, so peak memory is one shard
    regardless of store size.  The result is keyed on the manifest revision
    (``consolidated/revision.json``) and rebuilt only when the store has
    ingested new ratings since the last build.
    """
    consolidated = directory / "consolidated"
    marker = consolidated / "revision.json"
    revision = int(manifest["revision"])
    if marker.exists():
        try:
            built = json.loads(marker.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            built = None
        if (
            isinstance(built, dict)
            and built.get("revision") == revision
            and all((consolidated / f"{column}.npy").exists() for column in _COLUMNS)
        ):
            return consolidated

    consolidated.mkdir(parents=True, exist_ok=True)
    total = int(manifest["n_ratings"])
    shard_names = list(manifest["shards"])
    per_column = {
        column: [name for name in shard_names if Path(name).name.startswith(column + "_")]
        for column in _COLUMNS
    }
    for column in _COLUMNS:
        names = per_column[column]
        target = consolidated / f"{column}.npy"
        tmp = _tmp_path(target)
        out = np.lib.format.open_memmap(
            tmp, mode="w+", dtype=_DTYPES[column], shape=(total,)
        )
        cursor = 0
        for name in names:
            shard = np.load(directory / name, mmap_mode="r")
            out[cursor : cursor + shard.size] = shard
            cursor += shard.size
        if cursor != total:
            raise DataFormatError(
                f"ingest store {directory} is inconsistent: manifest says "
                f"{total} ratings but {column} shards hold {cursor}"
            )
        out.flush()
        del out
        os.replace(tmp, target)
    _atomic_write_json(marker, {"revision": revision})
    return consolidated


def load_outofcore(
    directory: str | Path, *, mmap: bool = True, name: str | None = None
) -> RatingDataset:
    """Open an ingest store as a memmap-backed :class:`RatingDataset`.

    Shards are consolidated into contiguous per-column arrays on first load
    (and again only after new ingests; see :func:`_consolidate`), then
    memory-mapped read-only.  The returned dataset behaves exactly like an
    in-memory one — same id maps, same interaction order — but its
    interaction arrays are paged from disk on demand, so opening a
    10M-rating store costs the id maps, not the triples.

    Parameters
    ----------
    directory:
        The ingest-store directory written by :func:`ingest_csv`.
    mmap:
        Load the consolidated arrays with ``mmap_mode="r"`` (default).
        ``False`` reads them fully into memory — useful for benchmarking
        the memmap overhead itself.
    name:
        Dataset name; defaults to the store directory's basename.
    """
    directory = Path(directory)
    manifest = load_ingest_manifest(directory)
    user_map = _read_id_map(directory / "user_ids.json")
    item_map = _read_id_map(directory / "item_ids.json")
    if len(user_map) != int(manifest["n_users"]) or len(item_map) != int(
        manifest["n_items"]
    ):
        raise DataFormatError(
            f"ingest store {directory} is inconsistent: id maps hold "
            f"{len(user_map)} users / {len(item_map)} items but the manifest "
            f"says {manifest['n_users']} / {manifest['n_items']}"
        )
    consolidated = _consolidate(directory, manifest)
    mode = "r" if mmap else None
    columns = {
        column: np.load(consolidated / f"{column}.npy", mmap_mode=mode)
        for column in _COLUMNS
    }
    return RatingDataset(
        columns["users"],
        columns["items"],
        columns["ratings"],
        n_users=int(manifest["n_users"]),
        n_items=int(manifest["n_items"]),
        user_ids=list(user_map),
        item_ids=list(item_map),
        name=name or directory.name,
    )
