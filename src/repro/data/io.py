"""Persistence helpers: datasets, recommendation collections and metric reports.

Long experiment runs need to save their intermediate artefacts (train/test
splits, generated top-N sets, metric reports) so that downstream analysis does
not have to recompute them.  Everything is stored in simple, inspectable
formats: CSV for interactions and recommendations, JSON for metric reports.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import DataFormatError
from repro.metrics.report import MetricReport


# --------------------------------------------------------------------------- #
# Datasets
# --------------------------------------------------------------------------- #
def save_dataset_csv(dataset: RatingDataset, path: str | Path) -> Path:
    """Write a dataset's interactions as ``user,item,rating`` CSV (raw ids)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    user_ids = dataset.user_ids
    item_ids = dataset.item_ids
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "item", "rating"])
        for user, item, rating in zip(
            dataset.user_indices, dataset.item_indices, dataset.ratings
        ):
            writer.writerow([user_ids[user], item_ids[item], rating])
    return path


def load_dataset_csv(path: str | Path, *, name: str | None = None) -> RatingDataset:
    """Load a dataset previously written by :func:`save_dataset_csv`."""
    from repro.data.loaders import load_csv_ratings

    path = Path(path)
    return load_csv_ratings(path, name=name or path.stem, has_header=True)


# --------------------------------------------------------------------------- #
# Recommendations
# --------------------------------------------------------------------------- #
def save_recommendations_csv(
    recommendations: Mapping[int, np.ndarray], path: str | Path
) -> Path:
    """Write a ``{user: items}`` collection as ``user,rank,item`` CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "rank", "item"])
        for user in sorted(recommendations):
            for rank, item in enumerate(np.asarray(recommendations[user]).tolist(), start=1):
                writer.writerow([user, rank, int(item)])
    return path


def load_recommendations_csv(path: str | Path) -> dict[int, np.ndarray]:
    """Load a collection written by :func:`save_recommendations_csv`."""
    path = Path(path)
    per_user: dict[int, list[tuple[int, int]]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None or [h.strip() for h in header[:3]] != ["user", "rank", "item"]:
                raise DataFormatError(
                    f"{path}: expected a 'user,rank,item' header, got {header!r}"
                )
            for row_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) < 3:
                    raise DataFormatError(f"{path}:{row_number}: expected 3 columns, got {row!r}")
                user, rank, item = int(row[0]), int(row[1]), int(row[2])
                per_user.setdefault(user, []).append((rank, item))
    except OSError as exc:
        raise DataFormatError(f"cannot read recommendations file {path}: {exc}") from exc
    except ValueError as exc:
        raise DataFormatError(f"{path}: non-integer value in recommendations file") from exc

    return {
        user: np.array([item for _, item in sorted(entries)], dtype=np.int64)
        for user, entries in per_user.items()
    }


# --------------------------------------------------------------------------- #
# Metric reports
# --------------------------------------------------------------------------- #
def report_to_dict(report: MetricReport) -> dict[str, object]:
    """Convert a :class:`MetricReport` into a JSON-serializable dictionary."""
    payload: dict[str, object] = {
        "algorithm": report.algorithm,
        "dataset": report.dataset,
        "n": report.n,
    }
    payload.update(report.as_dict())
    payload["extras"] = dict(report.extras)
    return payload


def report_from_dict(payload: Mapping[str, object]) -> MetricReport:
    """Rebuild a :class:`MetricReport` from :func:`report_to_dict` output."""
    try:
        return MetricReport(
            algorithm=str(payload["algorithm"]),
            dataset=str(payload["dataset"]),
            n=int(payload["n"]),
            precision=float(payload["precision"]),
            recall=float(payload["recall"]),
            f_measure=float(payload["f_measure"]),
            lt_accuracy=float(payload["lt_accuracy"]),
            stratified_recall=float(payload["stratified_recall"]),
            coverage=float(payload["coverage"]),
            gini=float(payload["gini"]),
            extras={str(k): float(v) for k, v in dict(payload.get("extras", {})).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"malformed metric report payload: {exc}") from exc


def save_reports_json(reports: list[MetricReport], path: str | Path) -> Path:
    """Write a list of metric reports as a JSON array."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [report_to_dict(report) for report in reports]
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_reports_json(path: str | Path) -> list[MetricReport]:
    """Load metric reports written by :func:`save_reports_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DataFormatError(f"cannot read reports file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise DataFormatError(f"{path}: expected a JSON array of reports")
    return [report_from_dict(entry) for entry in payload]
