"""Item popularity statistics and the Pareto (80/20) long-tail item set.

Following the paper (Section II-A), the popularity of item ``i`` is its
frequency in the train set, ``f^R_i = |U^R_i|``, and the long-tail item set
``L`` consists of the least popular items that together generate the lower
20% of the total ratings (items sorted in decreasing popularity, the tail of
that ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError


def compute_popularity(train: RatingDataset) -> np.ndarray:
    """Return the per-item rating counts ``f^R_i`` of the train set."""
    return train.item_popularity().astype(np.int64)


def long_tail_items(
    train: RatingDataset | np.ndarray,
    *,
    tail_fraction: float = 0.2,
) -> np.ndarray:
    """Return the indices of the Pareto long-tail items.

    Items are sorted in decreasing popularity; the long-tail is the maximal
    suffix of that ordering whose cumulative rating count does not exceed
    ``tail_fraction`` of the total number of ratings.  Items with zero ratings
    are always part of the long tail.

    Parameters
    ----------
    train:
        Either a :class:`RatingDataset` or a precomputed popularity vector.
    tail_fraction:
        Fraction of the total rating mass assigned to the tail (0.2 = the
        paper's 80/20 rule).
    """
    if not 0.0 < tail_fraction < 1.0:
        raise ConfigurationError(
            f"tail_fraction must be in (0, 1), got {tail_fraction}"
        )
    if isinstance(train, RatingDataset):
        popularity = compute_popularity(train)
    else:
        popularity = np.asarray(train, dtype=np.int64)
        if popularity.ndim != 1:
            raise ConfigurationError("popularity vector must be 1-D")
        if popularity.size and popularity.min() < 0:
            raise ConfigurationError("popularity counts cannot be negative")

    total = int(popularity.sum())
    if total == 0:
        return np.arange(popularity.size, dtype=np.int64)

    # Sort items by decreasing popularity; walk from the most popular item and
    # mark the "head" until it has accumulated (1 - tail_fraction) of the mass.
    order = np.argsort(-popularity, kind="stable")
    cumulative = np.cumsum(popularity[order])
    head_mass = (1.0 - tail_fraction) * total
    # Head = smallest prefix whose cumulative count reaches the head mass.
    head_size = int(np.searchsorted(cumulative, head_mass, side="left")) + 1
    head_size = min(head_size, popularity.size)
    tail = order[head_size:]
    return np.sort(tail)


@dataclass
class PopularityStats:
    """Aggregated popularity statistics of a train set.

    Attributes
    ----------
    popularity:
        Per-item rating counts ``f^R_i``.
    long_tail:
        Indices of long-tail items (Pareto rule).
    tail_fraction:
        The fraction of rating mass defining the tail.
    """

    popularity: np.ndarray
    long_tail: np.ndarray
    tail_fraction: float = 0.2
    _long_tail_mask: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.popularity = np.asarray(self.popularity, dtype=np.int64)
        self.long_tail = np.asarray(self.long_tail, dtype=np.int64)
        mask = np.zeros(self.popularity.size, dtype=bool)
        mask[self.long_tail] = True
        self._long_tail_mask = mask

    @classmethod
    def from_dataset(
        cls, train: RatingDataset, *, tail_fraction: float = 0.2
    ) -> "PopularityStats":
        """Compute popularity counts and the long-tail set of ``train``."""
        popularity = compute_popularity(train)
        tail = long_tail_items(popularity, tail_fraction=tail_fraction)
        return cls(popularity=popularity, long_tail=tail, tail_fraction=tail_fraction)

    @property
    def n_items(self) -> int:
        """Number of items in the universe."""
        return int(self.popularity.size)

    @property
    def long_tail_mask(self) -> np.ndarray:
        """Boolean mask over items that is True for long-tail items."""
        return self._long_tail_mask

    @property
    def long_tail_percentage(self) -> float:
        """``L%`` from Table II: long-tail items / items with ratings, in %."""
        rated_items = int(np.count_nonzero(self.popularity))
        if rated_items == 0:
            return 100.0
        rated_tail = int(np.count_nonzero(self.popularity[self.long_tail] > 0))
        # The paper reports |L| / |I_R|; items with zero train ratings are not
        # part of I_R, so exclude them from both numerator and denominator.
        return 100.0 * rated_tail / rated_items

    def is_long_tail(self, items: np.ndarray) -> np.ndarray:
        """Vectorized membership test of ``items`` in the long-tail set."""
        return self._long_tail_mask[np.asarray(items, dtype=np.int64)]

    def head_items(self) -> np.ndarray:
        """Indices of short-head (non-long-tail) items."""
        return np.flatnonzero(~self._long_tail_mask)

    def average_popularity_of(self, items: np.ndarray) -> float:
        """Mean popularity of the given items (0.0 for an empty selection)."""
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return 0.0
        return float(self.popularity[items].mean())
