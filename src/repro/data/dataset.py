"""The core rating-dataset container used throughout the library.

The paper's data model (Section II-A) is a set of ratings
``D = {r_ui : u in U, i in I}`` together with derived per-user and per-item
index sets (``I_u``, ``U_i``).  :class:`RatingDataset` stores the triples in
contiguous numpy arrays, maps arbitrary raw identifiers onto dense integer
indices, and exposes the per-user / per-item views the algorithms need without
materializing a dense ``|U| x |I|`` matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import DataError


@dataclass(frozen=True)
class Interaction:
    """A single (user, item, rating) observation with raw identifiers."""

    user: object
    item: object
    rating: float


class RatingDataset:
    """Immutable collection of user-item ratings with dense index mapping.

    Parameters
    ----------
    user_indices, item_indices, ratings:
        Parallel arrays describing the interactions using *dense* indices in
        ``[0, n_users)`` and ``[0, n_items)``.
    n_users, n_items:
        Size of the user and item universes.  These may exceed the number of
        distinct indices present in the arrays (e.g. a test split references
        the same universe as its train split even if some users have no test
        ratings).
    user_ids, item_ids:
        Optional sequences mapping dense indices back to the raw identifiers
        found in the source files.  Defaults to ``0..n-1``.

    Notes
    -----
    Instances are conceptually immutable: all arrays are stored with
    ``writeable=False`` and derived structures are cached on first use.
    """

    def __init__(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        ratings: np.ndarray,
        *,
        n_users: int,
        n_items: int,
        user_ids: Sequence[object] | None = None,
        item_ids: Sequence[object] | None = None,
        name: str = "dataset",
    ) -> None:
        users = np.asarray(user_indices, dtype=np.int64)
        items = np.asarray(item_indices, dtype=np.int64)
        values = np.asarray(ratings, dtype=np.float64)
        if not (users.shape == items.shape == values.shape):
            raise DataError(
                "user_indices, item_indices and ratings must have identical shapes; "
                f"got {users.shape}, {items.shape}, {values.shape}"
            )
        if users.ndim != 1:
            raise DataError(f"interaction arrays must be 1-D, got {users.ndim}-D")
        if n_users <= 0 or n_items <= 0:
            raise DataError(f"n_users and n_items must be positive, got {n_users}, {n_items}")
        if users.size:
            if users.min() < 0 or users.max() >= n_users:
                raise DataError(
                    f"user indices must lie in [0, {n_users}), got range "
                    f"[{users.min()}, {users.max()}]"
                )
            if items.min() < 0 or items.max() >= n_items:
                raise DataError(
                    f"item indices must lie in [0, {n_items}), got range "
                    f"[{items.min()}, {items.max()}]"
                )
        for arr in (users, items, values):
            arr.setflags(write=False)

        self._users = users
        self._items = items
        self._ratings = values
        self._n_users = int(n_users)
        self._n_items = int(n_items)
        self._name = name
        self._user_ids = list(user_ids) if user_ids is not None else list(range(n_users))
        self._item_ids = list(item_ids) if item_ids is not None else list(range(n_items))
        if len(self._user_ids) != n_users:
            raise DataError(
                f"user_ids has {len(self._user_ids)} entries but n_users={n_users}"
            )
        if len(self._item_ids) != n_items:
            raise DataError(
                f"item_ids has {len(self._item_ids)} entries but n_items={n_items}"
            )

        self._csr: sparse.csr_matrix | None = None
        self._csc: sparse.csc_matrix | None = None
        self._user_slices: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_interactions(
        cls,
        interactions: Iterable[Interaction] | Iterable[tuple[object, object, float]],
        *,
        name: str = "dataset",
    ) -> "RatingDataset":
        """Build a dataset from raw (user, item, rating) records.

        Raw identifiers are mapped onto dense indices in first-appearance
        order, which keeps loading deterministic.
        """
        user_map: dict[object, int] = {}
        item_map: dict[object, int] = {}
        users: list[int] = []
        items: list[int] = []
        values: list[float] = []
        for record in interactions:
            if isinstance(record, Interaction):
                raw_user, raw_item, rating = record.user, record.item, record.rating
            else:
                raw_user, raw_item, rating = record
            uidx = user_map.setdefault(raw_user, len(user_map))
            iidx = item_map.setdefault(raw_item, len(item_map))
            users.append(uidx)
            items.append(iidx)
            values.append(float(rating))
        if not users:
            raise DataError("cannot build a RatingDataset from zero interactions")
        return cls(
            np.asarray(users),
            np.asarray(items),
            np.asarray(values),
            n_users=len(user_map),
            n_items=len(item_map),
            user_ids=list(user_map.keys()),
            item_ids=list(item_map.keys()),
            name=name,
        )

    def extend(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        ratings: np.ndarray,
        *,
        n_users: int | None = None,
        n_items: int | None = None,
        user_ids: Sequence[object] | None = None,
        item_ids: Sequence[object] | None = None,
        name: str | None = None,
    ) -> "RatingDataset":
        """Append interactions (optionally growing the universe) into a *new* dataset.

        This is the ingestion constructor of the streaming path
        (:mod:`repro.data.incremental`): the receiver is left untouched —
        immutability is preserved by returning a fresh dataset whose
        interaction arrays are the receiver's followed by the appended
        triples, in order.  Models that support delta refits rely on that
        prefix property to recover the delta from the extended dataset.

        Parameters
        ----------
        user_indices, item_indices, ratings:
            The appended triples in *dense* index space.  Indices at or
            beyond the current universe grow it (see below); an empty batch
            with explicit ``n_users``/``n_items`` grows the universe without
            adding interactions (cold-start arrivals).
        n_users, n_items:
            New universe sizes.  Default to the smallest size containing the
            appended indices (never smaller than the current universe);
            explicit values must not shrink the universe.
        user_ids, item_ids:
            Raw identifiers for the *newly added* universe entries only
            (``n_users - self.n_users`` / ``n_items - self.n_items``
            entries).  Default to the new dense indices, matching the base
            constructor's convention.
        """
        users = np.atleast_1d(np.asarray(user_indices, dtype=np.int64))
        items = np.atleast_1d(np.asarray(item_indices, dtype=np.int64))
        values = np.atleast_1d(np.asarray(ratings, dtype=np.float64))
        grown_users = int(users.max()) + 1 if users.size else self._n_users
        grown_items = int(items.max()) + 1 if items.size else self._n_items
        n_users = max(self._n_users, grown_users) if n_users is None else int(n_users)
        n_items = max(self._n_items, grown_items) if n_items is None else int(n_items)
        if n_users < self._n_users or n_items < self._n_items:
            raise DataError(
                f"extend() cannot shrink the universe: {self._n_users}x{self._n_items} "
                f"-> {n_users}x{n_items}"
            )
        added_users = n_users - self._n_users
        added_items = n_items - self._n_items
        new_user_ids = (
            list(user_ids) if user_ids is not None
            else list(range(self._n_users, n_users))
        )
        new_item_ids = (
            list(item_ids) if item_ids is not None
            else list(range(self._n_items, n_items))
        )
        if len(new_user_ids) != added_users:
            raise DataError(
                f"user_ids must name exactly the {added_users} new user(s), "
                f"got {len(new_user_ids)} entries"
            )
        if len(new_item_ids) != added_items:
            raise DataError(
                f"item_ids must name exactly the {added_items} new item(s), "
                f"got {len(new_item_ids)} entries"
            )
        return RatingDataset(
            np.concatenate([self._users, users]),
            np.concatenate([self._items, items]),
            np.concatenate([self._ratings, values]),
            n_users=n_users,
            n_items=n_items,
            user_ids=self._user_ids + new_user_ids,
            item_ids=self._item_ids + new_item_ids,
            name=name or self._name,
        )

    def with_interactions(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        ratings: np.ndarray,
        *,
        name: str | None = None,
    ) -> "RatingDataset":
        """Create a dataset over the *same universe* with different triples.

        This is how train/test splits stay index-compatible with each other.
        """
        return RatingDataset(
            user_indices,
            item_indices,
            ratings,
            n_users=self._n_users,
            n_items=self._n_items,
            user_ids=self._user_ids,
            item_ids=self._item_ids,
            name=name or self._name,
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable dataset name (used in experiment reports)."""
        return self._name

    @property
    def n_users(self) -> int:
        """Number of users in the universe (``|U|``)."""
        return self._n_users

    @property
    def n_items(self) -> int:
        """Number of items in the universe (``|I|``)."""
        return self._n_items

    @property
    def n_ratings(self) -> int:
        """Number of observed interactions (``|D|``)."""
        return int(self._ratings.size)

    @property
    def user_indices(self) -> np.ndarray:
        """Read-only array of user indices, one per interaction."""
        return self._users

    @property
    def item_indices(self) -> np.ndarray:
        """Read-only array of item indices, one per interaction."""
        return self._items

    @property
    def ratings(self) -> np.ndarray:
        """Read-only array of rating values, one per interaction."""
        return self._ratings

    @property
    def user_ids(self) -> list[object]:
        """Raw user identifiers indexed by dense user index."""
        return list(self._user_ids)

    @property
    def item_ids(self) -> list[object]:
        """Raw item identifiers indexed by dense item index."""
        return list(self._item_ids)

    @property
    def density(self) -> float:
        """Fraction of the full rating matrix that is observed."""
        return self.n_ratings / float(self._n_users * self._n_items)

    @property
    def rating_scale(self) -> tuple[float, float]:
        """(min, max) of the observed rating values."""
        if self.n_ratings == 0:
            return (0.0, 0.0)
        return (float(self._ratings.min()), float(self._ratings.max()))

    def __len__(self) -> int:
        return self.n_ratings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RatingDataset(name={self._name!r}, users={self._n_users}, "
            f"items={self._n_items}, ratings={self.n_ratings}, "
            f"density={self.density:.4%})"
        )

    def __iter__(self) -> Iterator[Interaction]:
        for u, i, r in zip(self._users, self._items, self._ratings):
            yield Interaction(self._user_ids[u], self._item_ids[i], float(r))

    # ------------------------------------------------------------------ #
    # Sparse views
    # ------------------------------------------------------------------ #
    def to_csr(self) -> sparse.csr_matrix:
        """Return the interactions as a ``|U| x |I|`` CSR matrix of ratings."""
        if self._csr is None:
            self._csr = sparse.csr_matrix(
                (self._ratings, (self._users, self._items)),
                shape=(self._n_users, self._n_items),
            )
        return self._csr

    def to_csc(self) -> sparse.csc_matrix:
        """Return the interactions as a CSC matrix (fast per-item access)."""
        if self._csc is None:
            self._csc = self.to_csr().tocsc()
        return self._csc

    # ------------------------------------------------------------------ #
    # Per-user / per-item access
    # ------------------------------------------------------------------ #
    def _ensure_user_slices(self) -> tuple[np.ndarray, np.ndarray]:
        """Build (indptr, order) so user ``u``'s interactions are a slice."""
        if self._user_slices is None:
            order = np.argsort(self._users, kind="stable")
            counts = np.bincount(self._users, minlength=self._n_users)
            indptr = np.zeros(self._n_users + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._user_slices = (indptr, order)
        return self._user_slices

    def user_items(self, user: int) -> np.ndarray:
        """Item indices rated by ``user`` (``I_u``)."""
        indptr, order = self._ensure_user_slices()
        rows = order[indptr[user]:indptr[user + 1]]
        return self._items[rows]

    def user_items_batch(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rated items of a block of users as flattened ``(row, item)`` pairs.

        Returns ``(rows, items)`` where ``rows[j]`` is the *position of the
        user within the block* (not the global user index) owning rated item
        ``items[j]``.  This is the layout batched score paths need to mask a
        ``(len(users), n_items)`` score block in one fancy-indexing operation.
        """
        users = np.asarray(users, dtype=np.int64)
        indptr, order = self._ensure_user_slices()
        starts = indptr[users]
        counts = indptr[users + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.repeat(np.arange(users.size, dtype=np.int64), counts)
        # Gather the ragged per-user slices of ``order`` without a Python loop:
        # each output position offsets from its user's slice start.
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        items = self._items[order[np.repeat(starts, counts) + offsets]]
        return rows, items

    def user_ratings(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(item_indices, rating_values)`` for ``user``."""
        indptr, order = self._ensure_user_slices()
        rows = order[indptr[user]:indptr[user + 1]]
        return self._items[rows], self._ratings[rows]

    def item_users(self, item: int) -> np.ndarray:
        """User indices that rated ``item`` (``U_i``)."""
        csc = self.to_csc()
        return csc.indices[csc.indptr[item]:csc.indptr[item + 1]].astype(np.int64)

    def user_activity(self) -> np.ndarray:
        """Number of rated items per user (``|I_u|``), shape ``(n_users,)``."""
        return np.bincount(self._users, minlength=self._n_users)

    def item_popularity(self) -> np.ndarray:
        """Number of ratings per item (``f_i = |U_i|``), shape ``(n_items,)``."""
        return np.bincount(self._items, minlength=self._n_items)

    def users_with_ratings(self) -> np.ndarray:
        """Indices of users that have at least one interaction."""
        return np.flatnonzero(self.user_activity() > 0)

    def items_with_ratings(self) -> np.ndarray:
        """Indices of items that have at least one interaction."""
        return np.flatnonzero(self.item_popularity() > 0)

    def rating_lookup(self) -> Mapping[tuple[int, int], float]:
        """Return a dict mapping ``(user, item)`` to the rating value."""
        return {
            (int(u), int(i)): float(r)
            for u, i, r in zip(self._users, self._items, self._ratings)
        }

    def mean_rating(self) -> float:
        """Global mean of the observed ratings (0.0 when empty)."""
        if self.n_ratings == 0:
            return 0.0
        return float(self._ratings.mean())

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter_users_with_min_ratings(self, minimum: int, *, name: str | None = None) -> "RatingDataset":
        """Keep only interactions of users with at least ``minimum`` ratings.

        Mirrors the paper's preprocessing (τ): MovieLens datasets keep users
        with >= 20 ratings, MovieTweetings keeps users with >= 5 ratings.  The
        user/item universe is re-indexed to the surviving entities.
        """
        if minimum < 1:
            raise DataError(f"minimum must be >= 1, got {minimum}")
        activity = self.user_activity()
        keep_users = activity >= minimum
        mask = keep_users[self._users]
        return self._reindexed_subset(mask, name=name or f"{self._name}|min{minimum}")

    def _reindexed_subset(self, mask: np.ndarray, *, name: str) -> "RatingDataset":
        """Return a re-indexed dataset containing only interactions in ``mask``."""
        users = self._users[mask]
        items = self._items[mask]
        values = self._ratings[mask]
        if users.size == 0:
            raise DataError("filtering removed every interaction")
        unique_users, new_users = np.unique(users, return_inverse=True)
        unique_items, new_items = np.unique(items, return_inverse=True)
        return RatingDataset(
            new_users,
            new_items,
            values,
            n_users=unique_users.size,
            n_items=unique_items.size,
            user_ids=[self._user_ids[u] for u in unique_users],
            item_ids=[self._item_ids[i] for i in unique_items],
            name=name,
        )
