"""Descriptive statistics of rating datasets.

Bundles the quantities the paper's data-analysis figures and tables rely on —
user activity and item popularity distributions, rating-value histograms, the
share of infrequent users, per-user average item popularity — into one
structured summary that Table II, Figure 1 and the synthetic-surrogate
validation all reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a non-negative integer distribution."""

    minimum: float
    percentile_25: float
    median: float
    percentile_75: float
    maximum: float
    mean: float
    std: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "DistributionSummary":
        """Summarize ``values`` (must be non-empty)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ConfigurationError("cannot summarize an empty distribution")
        q25, median, q75 = np.percentile(arr, [25, 50, 75])
        return cls(
            minimum=float(arr.min()),
            percentile_25=float(q25),
            median=float(median),
            percentile_75=float(q75),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            std=float(arr.std()),
        )


@dataclass(frozen=True)
class DatasetSummary:
    """Full descriptive summary of one rating dataset.

    Attributes mirror the quantities discussed in Sections II and IV-A of the
    paper: density, long-tail share, activity/popularity distributions, the
    fraction of infrequent users (fewer than 10 ratings, as highlighted for
    MT-200K and Netflix), and the rating-value histogram.
    """

    name: str
    n_users: int
    n_items: int
    n_ratings: int
    density: float
    long_tail_share: float
    infrequent_user_share: float
    user_activity: DistributionSummary
    item_popularity: DistributionSummary
    rating_values: dict[float, int]
    mean_rating: float

    def as_rows(self) -> list[list[object]]:
        """Key/value rows for table rendering."""
        return [
            ["users", self.n_users],
            ["items", self.n_items],
            ["ratings", self.n_ratings],
            ["density %", round(100.0 * self.density, 3)],
            ["long-tail share %", round(100.0 * self.long_tail_share, 2)],
            ["infrequent users %", round(100.0 * self.infrequent_user_share, 2)],
            ["mean rating", round(self.mean_rating, 3)],
            ["median activity", self.user_activity.median],
            ["max activity", self.user_activity.maximum],
            ["median item popularity", self.item_popularity.median],
            ["max item popularity", self.item_popularity.maximum],
        ]


def summarize_dataset(
    dataset: RatingDataset,
    *,
    infrequent_threshold: int = 10,
    tail_fraction: float = 0.2,
) -> DatasetSummary:
    """Compute a :class:`DatasetSummary` for ``dataset``.

    Parameters
    ----------
    dataset:
        The dataset (usually a train split) to describe.
    infrequent_threshold:
        Users with fewer ratings than this are counted as infrequent (the
        paper reports the share of users with fewer than 10 ratings).
    tail_fraction:
        Pareto fraction used for the long-tail share.
    """
    if infrequent_threshold < 1:
        raise ConfigurationError(
            f"infrequent_threshold must be >= 1, got {infrequent_threshold}"
        )
    activity = dataset.user_activity()
    popularity = dataset.item_popularity()
    stats = PopularityStats.from_dataset(dataset, tail_fraction=tail_fraction)

    rated_users = activity[activity > 0]
    rated_items = popularity[popularity > 0]
    infrequent = float(np.mean(rated_users < infrequent_threshold)) if rated_users.size else 0.0

    values, counts = np.unique(dataset.ratings, return_counts=True)
    rating_histogram = {float(v): int(c) for v, c in zip(values, counts)}

    return DatasetSummary(
        name=dataset.name,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        n_ratings=dataset.n_ratings,
        density=dataset.density,
        long_tail_share=stats.long_tail_percentage / 100.0,
        infrequent_user_share=infrequent,
        user_activity=DistributionSummary.from_values(rated_users if rated_users.size else np.zeros(1)),
        item_popularity=DistributionSummary.from_values(rated_items if rated_items.size else np.zeros(1)),
        rating_values=rating_histogram,
        mean_rating=dataset.mean_rating(),
    )


def average_rated_popularity_per_user(dataset: RatingDataset) -> np.ndarray:
    """Per-user mean popularity of the items they rated (Figure 1's y-values)."""
    popularity = dataset.item_popularity().astype(np.float64)
    counts = dataset.user_activity().astype(np.float64)
    sums = np.bincount(
        dataset.user_indices,
        weights=popularity[dataset.item_indices],
        minlength=dataset.n_users,
    )
    out = np.zeros(dataset.n_users, dtype=np.float64)
    rated = counts > 0
    out[rated] = sums[rated] / counts[rated]
    return out


def popularity_concentration(dataset: RatingDataset, *, top_fraction: float = 0.1) -> float:
    """Share of the rating mass captured by the most popular ``top_fraction`` of items."""
    if not 0.0 < top_fraction <= 1.0:
        raise ConfigurationError(f"top_fraction must be in (0, 1], got {top_fraction}")
    popularity = np.sort(dataset.item_popularity())[::-1].astype(np.float64)
    total = popularity.sum()
    if total == 0:
        return 0.0
    head = max(1, int(round(top_fraction * popularity.size)))
    return float(popularity[:head].sum() / total)
