"""Loaders for the public rating datasets used in the paper.

The evaluation uses MovieLens 100K / 1M / 10M, MovieTweetings-200K and the
Netflix Prize dataset.  These loaders parse the exact on-disk formats so that
the full pipeline runs unchanged on the real data when it is available.  When
it is not (as in the offline reproduction environment), the synthetic factory
in :mod:`repro.data.synthetic` provides statistically matched surrogates.

Supported formats
-----------------
* ``load_movielens_100k`` — the tab-separated ``u.data`` file
  (``user\titem\trating\ttimestamp``).
* ``load_movielens_dat`` — the ``::``-separated ``ratings.dat`` file used by
  ML-1M and ML-10M (``user::item::rating::timestamp``).
* ``load_movietweetings`` — same ``::`` layout with a 0-10 rating scale that
  is mapped onto [1, 5] as in the paper (following Hernandez-Lobato et al.).
* ``load_netflix_directory`` — the per-movie ``mv_*.txt`` files of the Netflix
  Prize training set (first line ``movie_id:``, then ``user,rating,date``).
* ``load_csv_ratings`` — generic ``user,item,rating[,timestamp]`` CSV.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Callable, Iterator

from repro.data.dataset import RatingDataset
from repro.exceptions import DataFormatError


def _open_text(path: Path) -> io.TextIOWrapper:
    try:
        return open(path, "r", encoding="utf-8", errors="replace")
    except OSError as exc:
        raise DataFormatError(f"cannot open rating file {path}: {exc}") from exc


def _parse_delimited(
    path: Path,
    delimiter: str,
    *,
    rating_transform: Callable[[float], float] | None = None,
) -> Iterator[tuple[str, str, float]]:
    """Yield (user, item, rating) triples from a delimited rating file."""
    with _open_text(path) as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            parts = line.split(delimiter)
            if len(parts) < 3:
                raise DataFormatError(
                    f"{path}:{line_number}: expected at least 3 fields separated by "
                    f"{delimiter!r}, got {line!r}"
                )
            user, item, rating_text = parts[0], parts[1], parts[2]
            try:
                rating = float(rating_text)
            except ValueError as exc:
                raise DataFormatError(
                    f"{path}:{line_number}: rating {rating_text!r} is not numeric"
                ) from exc
            if rating_transform is not None:
                rating = rating_transform(rating)
            yield user, item, rating


def load_movielens_100k(path: str | Path, *, name: str = "ML-100K") -> RatingDataset:
    """Load the MovieLens-100K ``u.data`` file (tab separated)."""
    triples = _parse_delimited(Path(path), "\t")
    return RatingDataset.from_interactions(triples, name=name)


def load_movielens_dat(path: str | Path, *, name: str = "ML-1M") -> RatingDataset:
    """Load a MovieLens ``ratings.dat`` file (``user::item::rating::ts``)."""
    triples = _parse_delimited(Path(path), "::")
    return RatingDataset.from_interactions(triples, name=name)


def map_rating_to_five_star(rating: float, *, source_max: float = 10.0) -> float:
    """Map a rating on ``[0, source_max]`` to the ``[1, 5]`` interval.

    MovieTweetings ratings are integers in 0..10; following the paper's
    preprocessing they are linearly mapped to [1, 5].
    """
    if source_max <= 0:
        raise DataFormatError(f"source_max must be positive, got {source_max}")
    clipped = min(max(rating, 0.0), source_max)
    return 1.0 + 4.0 * clipped / source_max


def load_movietweetings(
    path: str | Path,
    *,
    name: str = "MT-200K",
    min_user_ratings: int = 5,
) -> RatingDataset:
    """Load a MovieTweetings ``ratings.dat`` file and apply the paper's filtering.

    Ratings are mapped from 0-10 onto [1, 5] and users with fewer than
    ``min_user_ratings`` interactions are removed (τ = 5 in the paper).
    """
    triples = _parse_delimited(
        Path(path), "::", rating_transform=map_rating_to_five_star
    )
    dataset = RatingDataset.from_interactions(triples, name=name)
    if min_user_ratings > 1:
        dataset = dataset.filter_users_with_min_ratings(min_user_ratings, name=name)
    return dataset


def load_netflix_directory(
    directory: str | Path,
    *,
    name: str = "Netflix",
    limit_files: int | None = None,
) -> RatingDataset:
    """Load Netflix Prize ``mv_*.txt`` files from ``directory``.

    Each file starts with ``<movie_id>:`` followed by ``user,rating,date``
    lines.  ``limit_files`` allows loading a subset for smoke tests.
    """
    directory = Path(directory)
    files = sorted(directory.glob("mv_*.txt"))
    if not files:
        raise DataFormatError(f"no Netflix mv_*.txt files found under {directory}")
    if limit_files is not None:
        files = files[:limit_files]

    def _iter_triples() -> Iterator[tuple[str, str, float]]:
        for path in files:
            with _open_text(path) as handle:
                header = handle.readline().strip()
                if not header.endswith(":"):
                    raise DataFormatError(
                        f"{path}: expected a '<movie_id>:' header, got {header!r}"
                    )
                movie_id = header[:-1]
                for line_number, raw_line in enumerate(handle, start=2):
                    line = raw_line.strip()
                    if not line:
                        continue
                    parts = line.split(",")
                    if len(parts) < 2:
                        raise DataFormatError(
                            f"{path}:{line_number}: expected 'user,rating,date', got {line!r}"
                        )
                    user, rating_text = parts[0], parts[1]
                    try:
                        rating = float(rating_text)
                    except ValueError as exc:
                        raise DataFormatError(
                            f"{path}:{line_number}: rating {rating_text!r} is not numeric"
                        ) from exc
                    yield user, movie_id, rating

    return RatingDataset.from_interactions(_iter_triples(), name=name)


def load_csv_ratings(
    path: str | Path,
    *,
    name: str = "csv",
    has_header: bool = True,
    delimiter: str = ",",
) -> RatingDataset:
    """Load a generic ``user,item,rating[,timestamp]`` CSV file."""
    path = Path(path)

    def _iter_triples() -> Iterator[tuple[str, str, float]]:
        with _open_text(path) as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            for row_number, row in enumerate(reader, start=1):
                if not row:
                    continue
                if has_header and row_number == 1:
                    continue
                if len(row) < 3:
                    raise DataFormatError(
                        f"{path}:{row_number}: expected at least 3 columns, got {row!r}"
                    )
                try:
                    rating = float(row[2])
                except ValueError as exc:
                    raise DataFormatError(
                        f"{path}:{row_number}: rating {row[2]!r} is not numeric"
                    ) from exc
                yield row[0].strip(), row[1].strip(), rating

    return RatingDataset.from_interactions(_iter_triples(), name=name)
