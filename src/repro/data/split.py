"""Train/test splitting strategies.

The paper splits each dataset by keeping a fixed ratio ``κ`` of every user's
ratings in the train set and moving the rest to test (Section IV-A).  This
guarantees every user retains some training signal: an infrequent user with 5
ratings and κ=0.8 keeps 4 ratings in train and 1 in test.  For the Netflix
probe-style evaluation a leave-k-out splitter is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import SplitError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TrainTestSplit:
    """A train/test pair defined over the same user/item universe."""

    train: RatingDataset
    test: RatingDataset

    def __post_init__(self) -> None:
        if self.train.n_users != self.test.n_users or self.train.n_items != self.test.n_items:
            raise SplitError(
                "train and test must share the same universe: "
                f"train is {self.train.n_users}x{self.train.n_items}, "
                f"test is {self.test.n_users}x{self.test.n_items}"
            )

    @property
    def n_ratings(self) -> int:
        """Total number of interactions across both partitions."""
        return self.train.n_ratings + self.test.n_ratings


class RatioSplitter:
    """Per-user ratio split: keep fraction ``train_ratio`` of each user's ratings.

    Parameters
    ----------
    train_ratio:
        The paper's ``κ``: fraction of each user's ratings placed in train.
        The number of train ratings of a user with ``n`` ratings is
        ``max(1, round(κ·n))`` but never ``n`` when the user has at least two
        ratings, so every such user gets at least one test rating only when
        rounding allows it (users whose rounded train size equals ``n`` simply
        contribute no test ratings, as in the original protocol).
    seed:
        Seed controlling which ratings land in train vs test.
    """

    def __init__(self, train_ratio: float = 0.8, *, seed: SeedLike = None) -> None:
        if not 0.0 < train_ratio < 1.0:
            raise SplitError(f"train_ratio must be in (0, 1), got {train_ratio}")
        self.train_ratio = float(train_ratio)
        self._seed = seed

    def split(self, dataset: RatingDataset) -> TrainTestSplit:
        """Split ``dataset`` into a :class:`TrainTestSplit`."""
        rng = ensure_rng(self._seed)
        users = dataset.user_indices
        n = dataset.n_ratings
        train_mask = np.zeros(n, dtype=bool)

        order = np.argsort(users, kind="stable")
        sorted_users = users[order]
        boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            size = group.size
            n_train = int(round(self.train_ratio * size))
            n_train = min(max(n_train, 1), size)
            chosen = rng.choice(group, size=n_train, replace=False)
            train_mask[chosen] = True

        return _build_split(dataset, train_mask)


class LeaveKOutSplitter:
    """Hold out ``k`` ratings per user as the test set (probe-style split).

    Users with fewer than ``k + 1`` ratings keep all their ratings in train so
    that every user retains training signal, matching the paper's requirement
    that probe users absent from train are removed.
    """

    def __init__(self, k: int = 1, *, seed: SeedLike = None) -> None:
        if k < 1:
            raise SplitError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self._seed = seed

    def split(self, dataset: RatingDataset) -> TrainTestSplit:
        """Split ``dataset`` by holding out ``k`` ratings per user."""
        rng = ensure_rng(self._seed)
        users = dataset.user_indices
        n = dataset.n_ratings
        train_mask = np.ones(n, dtype=bool)

        order = np.argsort(users, kind="stable")
        sorted_users = users[order]
        boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            if group.size <= self.k:
                continue
            held_out = rng.choice(group, size=self.k, replace=False)
            train_mask[held_out] = False

        return _build_split(dataset, train_mask)


def split_ratings(
    dataset: RatingDataset,
    *,
    train_ratio: float = 0.8,
    seed: SeedLike = None,
) -> TrainTestSplit:
    """Convenience wrapper around :class:`RatioSplitter`."""
    return RatioSplitter(train_ratio, seed=seed).split(dataset)


def _build_split(dataset: RatingDataset, train_mask: np.ndarray) -> TrainTestSplit:
    """Materialize a :class:`TrainTestSplit` from a boolean train mask."""
    if not train_mask.any():
        raise SplitError("split produced an empty train set")
    test_mask = ~train_mask
    train = dataset.with_interactions(
        dataset.user_indices[train_mask],
        dataset.item_indices[train_mask],
        dataset.ratings[train_mask],
        name=f"{dataset.name}|train",
    )
    test = dataset.with_interactions(
        dataset.user_indices[test_mask],
        dataset.item_indices[test_mask],
        dataset.ratings[test_mask],
        name=f"{dataset.name}|test",
    )
    return TrainTestSplit(train=train, test=test)
