"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause without swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """Raised when rating data is malformed or inconsistent."""


class DataFormatError(DataError):
    """Raised when a dataset file cannot be parsed in the expected format."""


class SplitError(DataError):
    """Raised when a train/test split cannot be produced as requested."""


class NotFittedError(ReproError):
    """Raised when a model is used before :meth:`fit` has been called."""


class ConfigurationError(ReproError):
    """Raised when a model or experiment is configured with invalid values."""


class OptimizationError(ReproError):
    """Raised when an iterative optimization fails to make progress."""


class EvaluationError(ReproError):
    """Raised when an evaluation request is inconsistent with the data."""


class ServingError(ReproError):
    """Raised when a serving lookup cannot be answered.

    Covers requests outside the compiled artifact's coverage when no live
    fallback pipeline is attached, and user indices outside the compiled
    pipeline's universe.
    """


class SimulationError(ReproError):
    """Raised when a traffic simulation cannot run or violates an invariant.

    Covers recommendation sources that cannot answer a trace's events and —
    most importantly — failures of the online invariant: the delta-updated
    coverage state diverging from a from-scratch recompute over the consumed
    event history.
    """
