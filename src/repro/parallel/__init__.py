"""Sharded parallel execution backend.

The user axis of the GANC framework is embarrassingly parallel: accuracy
scoring, coverage snapshots and the locally-greedy per-user assignment are
independent per user (Sections III and IV of the paper), so every batched
path in the library can fan its user blocks out to workers.  This package
supplies the machinery:

:mod:`repro.parallel.executor`
    The :class:`Executor` abstraction with ``serial``, ``thread`` and
    ``process`` backends.  All backends consume the same
    ``(task, blocks)`` contract and return block results in block order, so
    the scored output is byte-identical to the serial loop for every backend
    and any block size.
:mod:`repro.parallel.handles`
    Lightweight fitted-state handles built on the pipeline persistence layer
    (:func:`repro.pipeline.persistence.component_state`): the process backend
    ships a component's fitted arrays to workers once and rehydrates there
    without refitting anything.
:mod:`repro.parallel.tasks`
    Picklable block tasks and providers used by ``recommend_all``, the
    locally-greedy independent assignment and the OSLG snapshot phase.

Determinism
-----------
Block tasks used by the library are RNG-free at serve time (stochastic
models draw from per-user keyed streams fixed at fit time), which is what
makes results invariant to backend, ``n_jobs`` *and* block size.  Tasks that
do need randomness receive per-block generators derived with
``numpy.random.SeedSequence.spawn`` (:func:`repro.utils.rng.spawn_seed_sequences`)
in the parent process, so their streams depend only on the root seed and the
block position — never on worker scheduling.
"""

from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    effective_n_jobs,
    get_executor,
    resolve_executor,
)
from repro.parallel.handles import ComponentHandle, DatasetHandle
from repro.parallel.tasks import (
    ExclusionPairsProvider,
    IndependentAssignTask,
    RecommendBlockTask,
    SnapshotAssignTask,
    TopNScoresTask,
    UnitScoresProvider,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_executor",
    "effective_n_jobs",
    "ComponentHandle",
    "DatasetHandle",
    "RecommendBlockTask",
    "TopNScoresTask",
    "UnitScoresProvider",
    "ExclusionPairsProvider",
    "IndependentAssignTask",
    "SnapshotAssignTask",
]
