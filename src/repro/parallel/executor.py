"""The :class:`Executor` abstraction: one fan-out contract, three backends.

Every batched path in the library reduces to the same shape of work: shard
the user axis into contiguous blocks (:func:`repro.utils.topn.iter_user_blocks`)
and apply a *block task* — a callable mapping a block's user indices to that
block's result rows — to each block.  An :class:`Executor` owns how those
applications run:

``serial``
    Plain in-order loop in the calling process.  The reference backend; the
    other two are required (and tested) to reproduce its output byte for
    byte.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor` fan-out.  The heavy
    lifting inside block tasks is numpy matrix work that releases the GIL,
    so threads scale on multi-core machines while sharing the fitted models
    with zero serialization cost.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` fan-out.  The task is
    shipped to each worker once (via the pool initializer); tasks that hold
    fitted models serialize themselves as lightweight state handles
    (:mod:`repro.parallel.handles`) and rehydrate in the worker without
    refitting.  Worth it when per-block compute dominates and the GIL or
    BLAS thread contention limits the thread backend.

Results are always returned in block order, so callers can scatter them into
the output array exactly as the serial loop would have.  Tasks that declare
``needs_rng = True`` are called as ``task(users, rng)`` with a per-block
generator derived via ``SeedSequence.spawn`` in the *parent* process, which
makes their streams independent of worker scheduling.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import multiprocessing

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import spawn_seed_sequences

#: Names accepted by :func:`get_executor` / spec ``execution.backend``.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


@runtime_checkable
class BlockTask(Protocol):
    """A unit of sharded work: maps a block of user indices to result rows."""

    def __call__(self, users: np.ndarray) -> Any:  # pragma: no cover - protocol
        ...


def effective_n_jobs(n_jobs: int) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``-1`` means one worker per available CPU; any other value must be a
    positive integer.
    """
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if not isinstance(n_jobs, (int, np.integer)) or isinstance(n_jobs, bool) or n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be a positive integer or -1, got {n_jobs!r}")
    return int(n_jobs)


class Executor(ABC):
    """Runs block tasks over user blocks and returns results in block order."""

    #: backend name, one of :data:`EXECUTOR_BACKENDS`
    backend: str = "abstract"

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = effective_n_jobs(n_jobs)

    @property
    def is_serial(self) -> bool:
        """Whether this executor runs blocks in the calling thread only."""
        return self.backend == "serial" or self.n_jobs == 1

    def _calls(
        self, task: BlockTask, blocks: Sequence[np.ndarray], seed: int | None
    ) -> list[Callable[[], Any]]:
        """Bind each block (and, if requested, its derived rng) to the task."""
        if seed is None and not getattr(task, "needs_rng", False):
            return [lambda users=users: task(users) for users in blocks]
        sequences = spawn_seed_sequences(seed, len(blocks))
        return [
            lambda users=users, seq=seq: task(users, np.random.default_rng(seq))
            for users, seq in zip(blocks, sequences)
        ]

    @abstractmethod
    def map_blocks(
        self,
        task: BlockTask,
        blocks: Sequence[np.ndarray],
        *,
        seed: int | None = None,
    ) -> list[Any]:
        """Apply ``task`` to every block; results come back in block order.

        ``seed`` (or a task with ``needs_rng = True``) switches to the seeded
        calling convention ``task(users, rng)`` with per-block generators
        derived in the parent via ``SeedSequence.spawn``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialExecutor(Executor):
    """In-order execution in the calling process (the reference backend)."""

    backend = "serial"

    def __init__(self, n_jobs: int = 1) -> None:
        super().__init__(1)
        del n_jobs  # serial always runs one block at a time

    def map_blocks(
        self,
        task: BlockTask,
        blocks: Sequence[np.ndarray],
        *,
        seed: int | None = None,
    ) -> list[Any]:
        """Run every block in order in the calling thread."""
        return [call() for call in self._calls(task, blocks, seed)]


class ThreadExecutor(Executor):
    """Thread-pool fan-out; fitted models are shared, numpy releases the GIL."""

    backend = "thread"

    def map_blocks(
        self,
        task: BlockTask,
        blocks: Sequence[np.ndarray],
        *,
        seed: int | None = None,
    ) -> list[Any]:
        """Fan blocks out to a thread pool, preserving block order."""
        calls = self._calls(task, blocks, seed)
        if len(calls) <= 1 or self.n_jobs == 1:
            return [call() for call in calls]
        with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
            return list(pool.map(lambda call: call(), calls))


# --------------------------------------------------------------------------- #
# Process backend
# --------------------------------------------------------------------------- #
#: Per-worker slot for the task shipped through the pool initializer; the
#: task is deserialized (rehydrating any state handles) once per worker, not
#: once per block.
_WORKER_TASK: BlockTask | None = None


def _initialize_worker(task: BlockTask) -> None:
    global _WORKER_TASK
    _WORKER_TASK = task


def _run_block(payload: tuple[np.ndarray, Any]) -> Any:
    users, seed_sequence = payload
    assert _WORKER_TASK is not None, "worker used before initialization"
    if seed_sequence is None:
        return _WORKER_TASK(users)
    return _WORKER_TASK(users, np.random.default_rng(seed_sequence))


class ProcessExecutor(Executor):
    """Process-pool fan-out with initializer-shipped, handle-rehydrated tasks.

    Parameters
    ----------
    n_jobs:
        Worker count (``-1`` = one per CPU).
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  ``spawn``
        exercises the full serialize-and-rehydrate path on every platform;
        ``fork`` additionally shares the parent's memory copy-on-write.
    """

    backend = "process"

    def __init__(self, n_jobs: int = 1, *, start_method: str | None = None) -> None:
        super().__init__(n_jobs)
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"unknown start method {start_method!r}; available: "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self.start_method = start_method

    def map_blocks(
        self,
        task: BlockTask,
        blocks: Sequence[np.ndarray],
        *,
        seed: int | None = None,
    ) -> list[Any]:
        """Ship the task to workers once, fan blocks out, keep block order."""
        if len(blocks) <= 1 or self.n_jobs == 1:
            return SerialExecutor().map_blocks(task, blocks, seed=seed)
        if seed is None and not getattr(task, "needs_rng", False):
            payloads = [(users, None) for users in blocks]
        else:
            sequences = spawn_seed_sequences(seed, len(blocks))
            payloads = list(zip(blocks, sequences))
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.n_jobs, len(blocks))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_initialize_worker,
            initargs=(task,),
        ) as pool:
            return list(pool.map(_run_block, payloads))


_BACKENDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(backend: str = "serial", n_jobs: int = 1, **kwargs: Any) -> Executor:
    """Instantiate an executor by backend name.

    ``kwargs`` are backend-specific (e.g. ``start_method`` for ``process``).
    """
    if not isinstance(backend, str) or backend.strip().lower() not in _BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {backend!r}; available: {list(EXECUTOR_BACKENDS)}"
        )
    return _BACKENDS[backend.strip().lower()](n_jobs, **kwargs)


def resolve_executor(
    executor: Executor | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> Executor:
    """Normalize the ``(executor, n_jobs, backend)`` option triple.

    An explicit :class:`Executor` instance wins.  Otherwise ``n_jobs`` in
    ``(None, 1)`` means serial, and anything larger builds the requested
    backend (default ``thread`` — it shares fitted state for free and the
    block work is GIL-releasing numpy).
    """
    if executor is not None:
        if not isinstance(executor, Executor):
            raise ConfigurationError(
                f"executor must be a repro.parallel.Executor, got {type(executor).__name__}"
            )
        return executor
    if n_jobs is None or n_jobs == 1:
        if backend is not None and backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {backend!r}; available: {list(EXECUTOR_BACKENDS)}"
            )
        return SerialExecutor()
    return get_executor(backend or "thread", n_jobs)
