"""Picklable block tasks and providers behind the sharded score paths.

Each task realizes exactly the per-block arithmetic of the serial loop it
replaces — the same :func:`~repro.ganc.value_function.combined_score_matrix`,
:func:`~repro.utils.topn.mask_pairs` and
:func:`~repro.utils.topn.top_n_matrix` calls on bit-identical inputs — which
is what makes every backend's output byte-identical to serial.

Tasks hold *live* component references in the constructing process (serial
and thread backends pay zero serialization).  When the process backend
pickles a task, ``__getstate__`` swaps each live component for a
:class:`~repro.parallel.handles.ComponentHandle`; in the worker the first
block rehydrates the component (cached per process) and subsequent blocks
reuse it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.parallel.handles import ComponentHandle, DatasetHandle
from repro.utils.topn import mask_pairs, top_n_matrix


def _combined_score_matrix(*args: Any) -> np.ndarray:
    # Imported lazily: repro.ganc pulls in the GANC facade, which imports
    # this module — a module-level import would cycle through the package
    # __init__ files.
    from repro.ganc.value_function import combined_score_matrix

    return combined_score_matrix(*args)


class _HandleSwapped:
    """Base for tasks/providers that ship one component as a state handle.

    Subclasses store the live component under ``self._live`` and everything
    else in picklable attributes; pickling replaces ``_live`` with a captured
    handle and unpickling rehydrates lazily on first use.  ``train_handle``
    lets several tasks of one fan-out share a single
    :class:`~repro.parallel.handles.DatasetHandle`, so workers rebuild the
    train dataset once instead of once per task.
    """

    def __init__(self, live: Any, *, train_handle: DatasetHandle | None = None) -> None:
        self._live: Any | None = live
        self._handle: ComponentHandle | None = None
        self._train_handle = train_handle

    def _component(self) -> Any:
        if self._live is None:
            assert self._handle is not None
            self._live = self._handle.restore()
        return self._live

    def __getstate__(self) -> dict[str, Any]:
        if self._handle is None and self._live is not None:
            # Capture once; repeated fan-outs of the same task reuse the
            # handle token, so workers also rehydrate at most once.
            self._handle = ComponentHandle.capture(self._live, train=self._train_handle)
        state = dict(self.__dict__)
        state["_live"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)


class RecommendBlockTask(_HandleSwapped):
    """Fan-out unit of :meth:`Recommender.recommend_all`: one top-N block."""

    def __init__(self, recommender: Any, n: int) -> None:
        super().__init__(recommender)
        self.n = int(n)

    def __call__(self, users: np.ndarray) -> np.ndarray:
        return self._component().recommend_block(users, self.n)


class TopNScoresTask(_HandleSwapped):
    """Fan-out unit of artifact compilation (:mod:`repro.serving`).

    Given the already-selected top-N item rows of every user, gathers the
    recommender's raw :meth:`predict_matrix` scores of exactly those items,
    one block of users at a time.  ``-1`` padding gathers to ``NaN``.  The
    item table is a small ``(n_users, n)`` int64 array and pickles as-is;
    the recommender ships as a state handle like every other task.
    """

    def __init__(self, recommender: Any, items: np.ndarray) -> None:
        super().__init__(recommender)
        self.items = np.asarray(items, dtype=np.int64)

    def __call__(self, users: np.ndarray) -> np.ndarray:
        block_items = self.items[users]
        matrix = self._component().predict_matrix(users)
        valid = block_items >= 0
        gathered = np.take_along_axis(matrix, np.where(valid, block_items, 0), axis=1)
        return np.where(valid, gathered, np.nan)


class UnitScoresProvider(_HandleSwapped):
    """Batched accuracy provider ``users -> unit_scores_batch`` that pickles.

    Drop-in replacement for the closure GANC used to build over its accuracy
    recommender; identical rows, but shippable to process workers.
    """

    def __init__(
        self, recommender: Any, n: int, *, train_handle: DatasetHandle | None = None
    ) -> None:
        super().__init__(recommender, train_handle=train_handle)
        self.n = int(n)

    def __call__(self, users: np.ndarray) -> np.ndarray:
        return self._component().unit_scores_batch(users, self.n)


class ExclusionPairsProvider:
    """Batched exclusion provider ``users -> (rows, cols)`` that pickles."""

    def __init__(self, train: Any, *, handle: DatasetHandle | None = None) -> None:
        self._train: Any | None = train
        self._handle: DatasetHandle | None = handle

    def _dataset(self) -> Any:
        if self._train is None:
            assert self._handle is not None
            self._train = self._handle.restore()
        return self._train

    def __getstate__(self) -> dict[str, Any]:
        if self._handle is None and self._train is not None:
            self._handle = DatasetHandle.capture(self._train)
        state = dict(self.__dict__)
        state["_train"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __call__(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._dataset().user_items_batch(users)


class IndependentAssignTask(_HandleSwapped):
    """One blocked step of :meth:`LocallyGreedyOptimizer.run_independent`.

    Valid only for stateless coverage: scores a block's combined value matrix
    and selects its top-N rows, independent of every other block.
    """

    def __init__(
        self,
        coverage: Any,
        theta: np.ndarray,
        n: int,
        accuracy_matrix: Any,
        exclusion_pairs: Any,
    ) -> None:
        super().__init__(coverage)
        self.theta = np.asarray(theta, dtype=np.float64)
        self.n = int(n)
        self.accuracy_matrix = accuracy_matrix
        self.exclusion_pairs = exclusion_pairs

    def __call__(self, users: np.ndarray) -> np.ndarray:
        values = _combined_score_matrix(
            self.accuracy_matrix(users),
            self._component().scores_matrix(users),
            self.theta[users],
        )
        rows, cols = self.exclusion_pairs(users)
        mask_pairs(values, rows, cols)
        return top_n_matrix(values, self.n)


class SnapshotAssignTask:
    """One blocked step of the OSLG snapshot phase (Algorithm 1, lines 11-15).

    Every non-sampled user is scored against the frozen coverage snapshot of
    the sampled user with the nearest θ; blocks are mutually independent.
    ``snapshots`` is preferably a compact
    :class:`~repro.coverage.state.DeltaSnapshots` log — it pickles at
    O(|I| + S·N) instead of the dense matrix's O(S·|I|), and each block
    reconstructs only the score rows of the snapshot positions it actually
    references (bit-identical to the dense path).  A plain dense
    ``(S, n_items)`` frequency array is still accepted.  The θ vectors
    pickle as-is; the accuracy/exclusion providers handle their own state
    shipping.
    """

    def __init__(
        self,
        theta: np.ndarray,
        sampled_theta: np.ndarray,
        snapshots: Any,
        n: int,
        accuracy_matrix: Any,
        exclusion_pairs: Any,
    ) -> None:
        self.theta = np.asarray(theta, dtype=np.float64)
        self.sampled_theta = np.asarray(sampled_theta, dtype=np.float64)
        from repro.coverage.state import DeltaSnapshots

        if isinstance(snapshots, DeltaSnapshots):
            self.snapshots = snapshots
        else:
            self.snapshots = np.asarray(snapshots, dtype=np.float64)
        self.n = int(n)
        self.accuracy_matrix = accuracy_matrix
        self.exclusion_pairs = exclusion_pairs

    def _coverage_block(self, nearest: np.ndarray) -> np.ndarray:
        from repro.coverage.dynamic import DynamicCoverage
        from repro.coverage.state import DeltaSnapshots

        if isinstance(self.snapshots, DeltaSnapshots):
            return self.snapshots.scores_at(nearest)
        return DynamicCoverage.snapshot_scores(self.snapshots[nearest])

    def __call__(self, users: np.ndarray) -> np.ndarray:
        nearest = np.argmin(
            np.abs(self.sampled_theta[None, :] - self.theta[users, None]), axis=1
        )
        values = _combined_score_matrix(
            self.accuracy_matrix(users), self._coverage_block(nearest), self.theta[users]
        )
        rows, cols = self.exclusion_pairs(users)
        mask_pairs(values, rows, cols)
        return top_n_matrix(values, self.n)
