"""Lightweight fitted-state handles for process workers.

The process backend must get fitted models into worker processes without
refitting them.  A :class:`ComponentHandle` captures exactly what the
pipeline persistence layer would write to disk — the constructor parameters
(:meth:`~repro.registry.ParamsMixin.get_params`) plus the fitted
arrays/scalars (:func:`repro.pipeline.persistence.component_state`) — and
:meth:`ComponentHandle.restore` inverts it in the worker: rebuild an
unfitted clone with ``from_params``, pour the state back with
:func:`~repro.pipeline.persistence.restore_component_state`, and mark it
fitted against the shipped train data.  Since the captured arrays travel
bit-exactly, a rehydrated model scores byte-identically to the original.

Handles carry a capture token; workers cache restored objects by token so a
task fan-out rehydrates each model once per worker process, not once per
block, and providers sharing a :class:`DatasetHandle` share one restored
:class:`~repro.data.dataset.RatingDataset` instance.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.dataset import RatingDataset

#: Per-process cache of rehydrated objects, keyed by capture token.  Each
#: worker process has its own copy of this module, hence its own cache.
_REHYDRATED: dict[str, Any] = {}


def _cache_token() -> str:
    return uuid.uuid4().hex


@dataclass
class DatasetHandle:
    """Picklable snapshot of a :class:`RatingDataset` (same arrays as split.npz)."""

    token: str
    users: np.ndarray
    items: np.ndarray
    ratings: np.ndarray
    n_users: int
    n_items: int
    user_ids: list
    item_ids: list
    name: str

    @classmethod
    def capture(cls, dataset: RatingDataset) -> "DatasetHandle":
        """Snapshot the dataset's interaction arrays and universe metadata."""
        return cls(
            token=_cache_token(),
            users=dataset.user_indices,
            items=dataset.item_indices,
            ratings=dataset.ratings,
            n_users=dataset.n_users,
            n_items=dataset.n_items,
            user_ids=list(dataset.user_ids),
            item_ids=list(dataset.item_ids),
            name=dataset.name,
        )

    def restore(self) -> RatingDataset:
        """Rebuild (or fetch the process-cached) dataset."""
        cached = _REHYDRATED.get(self.token)
        if cached is None:
            cached = RatingDataset(
                self.users,
                self.items,
                self.ratings,
                n_users=self.n_users,
                n_items=self.n_items,
                user_ids=self.user_ids,
                item_ids=self.item_ids,
                name=self.name,
            )
            _REHYDRATED[self.token] = cached
        return cached


@dataclass
class ComponentHandle:
    """Fitted component captured as params + persistence-layer state.

    Works for any :class:`~repro.registry.ParamsMixin` component whose fitted
    state the persistence layer can harvest — the same contract
    :meth:`Pipeline.save` enforces, so everything that persists to disk also
    ships to workers.
    """

    token: str
    cls: type
    params: dict[str, Any]
    arrays: dict[str, np.ndarray]
    meta: dict[str, Any]
    train: DatasetHandle | None = field(default=None)

    @classmethod
    def capture(cls, component: Any, *, train: DatasetHandle | None = None) -> "ComponentHandle":
        """Snapshot a fitted component.

        ``train`` lets several handles share one :class:`DatasetHandle`; by
        default a recommender's train dataset is captured automatically
        (coverage/preference components keep their fitted state inline and
        need no dataset).
        """
        # Imported lazily: repro.pipeline imports the recommender base, which
        # imports repro.parallel — a module-level import here would cycle.
        from repro.pipeline.persistence import component_state

        arrays, meta = component_state(component)
        if train is None and getattr(component, "_train", None) is not None:
            train = DatasetHandle.capture(component._train)
        return cls(
            token=_cache_token(),
            cls=type(component),
            params=component.get_params(),
            arrays=arrays,
            meta=meta,
            train=train,
        )

    def restore(self) -> Any:
        """Rebuild (or fetch the process-cached) fitted component."""
        cached = _REHYDRATED.get(self.token)
        if cached is None:
            from repro.pipeline.persistence import restore_component_state

            cached = self.cls.from_params(self.params)
            restore_component_state(cached, self.arrays, self.meta)
            if self.train is not None:
                cached._mark_fitted(self.train.restore())
            _REHYDRATED[self.token] = cached
        return cached
