"""Feedback models: which recommended items an arriving user consumes.

The simulator's online loop is *recommend → consume → update coverage*; the
consume step is where behavioural assumptions live.  Three models cover the
scenarios the paper's coverage discussion motivates:

* :class:`AcceptAll` — every recommended slot is consumed; the upper bound
  where the assignment the optimizer planned is exactly what happens.
* :class:`PositionBiased` — the classic cascade-style click model: slot ``k``
  is consumed with probability ``attraction * decay**k``, so popular head
  placements get most of the feedback.  This is the model that reproduces
  popularity-bias feedback loops.
* :class:`ThresholdOnScore` — consume only the items whose stored serving
  score clears a fraction of the row's best score; a proxy for a discerning
  user.  When the source provides no scores the top slot alone is consumed.

Determinism contract: a model may only draw randomness from the ``rng`` it is
handed, with a draw pattern that depends on the *event* (its item row) alone —
never on wall clock, global state, or how events were sharded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError

#: Names accepted by :func:`create_feedback` / the ``--feedback`` CLI flag.
FEEDBACK_MODELS = ("accept-all", "position-biased", "threshold")


def _valid_row(items: np.ndarray) -> np.ndarray:
    """Strip the ``-1`` padding every top-N row in the library may carry."""
    items = np.asarray(items, dtype=np.int64)
    return items[items >= 0]


class FeedbackModel(ABC):
    """Maps one event's recommended row to the subset the user consumes."""

    #: registry name (one of :data:`FEEDBACK_MODELS`)
    name: str = "abstract"

    @abstractmethod
    def consume(
        self,
        items: np.ndarray,
        scores: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Consumed items in rank order (a subset of the valid ``items``)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AcceptAll(FeedbackModel):
    """Every valid recommended item is consumed (no randomness drawn)."""

    name = "accept-all"

    def consume(
        self,
        items: np.ndarray,
        scores: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All valid (non-padding) items of the row."""
        del scores, rng
        return _valid_row(items)


class PositionBiased(FeedbackModel):
    """Rank-decayed click probabilities: ``P(consume slot k) = a * d**k``.

    Parameters
    ----------
    attraction:
        Probability of consuming the top slot (``a``), in ``(0, 1]``.
    decay:
        Multiplicative decay per rank position (``d``), in ``(0, 1]``.
    """

    name = "position-biased"

    def __init__(self, attraction: float = 0.7, decay: float = 0.85) -> None:
        if not 0.0 < attraction <= 1.0:
            raise ConfigurationError(
                f"attraction must be in (0, 1], got {attraction}"
            )
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.attraction = float(attraction)
        self.decay = float(decay)

    def consume(
        self,
        items: np.ndarray,
        scores: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One Bernoulli draw per slot with rank-decayed acceptance."""
        del scores
        valid = _valid_row(items)
        if valid.size == 0:
            return valid
        ranks = np.arange(valid.size, dtype=np.float64)
        probabilities = self.attraction * self.decay**ranks
        draws = rng.random(valid.size)
        return valid[draws < probabilities]

    def __repr__(self) -> str:
        return f"PositionBiased(attraction={self.attraction}, decay={self.decay})"


class ThresholdOnScore(FeedbackModel):
    """Consume items scoring at least ``fraction`` of the row's best score.

    Rows without usable scores (source served no diagnostics, or every score
    is NaN) degrade to consuming the top slot only.  No randomness is drawn.
    """

    name = "threshold"

    def __init__(self, fraction: float = 0.8) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def consume(
        self,
        items: np.ndarray,
        scores: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Items whose score clears the fractional threshold."""
        del rng
        items = np.asarray(items, dtype=np.int64)
        valid_mask = items >= 0
        valid = items[valid_mask]
        if valid.size == 0:
            return valid
        if scores is None:
            return valid[:1]
        scores = np.asarray(scores, dtype=np.float64)[valid_mask]
        finite = np.isfinite(scores)
        if not finite.any():
            return valid[:1]
        best = float(scores[finite].max())
        keep = finite & (scores >= self.fraction * best)
        return valid[keep]

    def __repr__(self) -> str:
        return f"ThresholdOnScore(fraction={self.fraction})"


_FEEDBACK_CLASSES: dict[str, type[FeedbackModel]] = {
    AcceptAll.name: AcceptAll,
    PositionBiased.name: PositionBiased,
    ThresholdOnScore.name: ThresholdOnScore,
}


def create_feedback(name: str, **params: Any) -> FeedbackModel:
    """Instantiate a feedback model by registry name.

    ``params`` are forwarded to the model constructor (e.g. ``attraction=``
    for ``position-biased``); unknown names raise a
    :class:`~repro.exceptions.ConfigurationError` listing the registry.
    """
    if not isinstance(name, str) or name.strip().lower() not in _FEEDBACK_CLASSES:
        raise ConfigurationError(
            f"unknown feedback model {name!r}; available: {list(FEEDBACK_MODELS)}"
        )
    cls = _FEEDBACK_CLASSES[name.strip().lower()]
    try:
        return cls(**params)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid parameters for feedback model {name!r}: {error}"
        ) from None
