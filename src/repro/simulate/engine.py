"""The simulation engine: sharded replay, online feedback, windowed drift.

A run has two phases:

**Replay** — the trace's events are answered by the recommendation source
and filtered through the feedback model.  For ``parallel_safe`` sources the
event axis is cut into ``config.shards`` contiguous shards (a pure function
of the trace length — never of worker counts) and fanned out over a
:class:`~repro.parallel.Executor`; each shard's feedback randomness comes
from a per-shard generator derived via ``SeedSequence.spawn`` in the parent,
so results are byte-identical across ``serial``/``thread``/``process``
backends and any ``--jobs``.  Online sources (a live dynamic-coverage GANC)
are consumed strictly in event order instead: each event's consumed items
flow back through ``CoverageState.apply`` before the next lookup — with the
*same* per-shard generator layout, so the run stays a pure function of the
seed.

**Windowed drift** — events are merged in global order into fixed-size
windows.  Per window the engine records item-space coverage and Gini (of
the recommended rows), novelty (EPC/ARP against train popularity),
accuracy proxies (precision/recall of the recommended rows against the
user's held-out relevant items), and the *cumulative* coverage state over
everything consumed so far — maintained with the O(N)
:meth:`CoverageState.apply_batch` delta and, when ``config.verify`` is on,
checked bit-identical against a from-scratch recompute at every window
boundary (the online invariant) with an additional
``apply → revert → apply`` round trip exercising the exact-inverse
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.coverage.state import CoverageState
from repro.data.split import TrainTestSplit
from repro.exceptions import ConfigurationError, SimulationError
from repro.metrics.report import relevant_test_items
from repro.parallel.executor import Executor, SerialExecutor
from repro.simulate.events import KIND_COLD, KIND_RETURNING, Trace
from repro.simulate.feedback import FEEDBACK_MODELS, create_feedback
from repro.simulate.report import REPORT_SCHEMA_VERSION
from repro.simulate.scenarios import SCENARIOS, build_trace
from repro.simulate.sources import PipelineSource, RecommendationSource
from repro.utils.rng import spawn_seed_sequences

#: Events looked up per batched source call inside one shard.  Purely a
#: mechanism knob: per-event feedback still runs in event order, so the
#: chunk size never changes results.
_LOOKUP_CHUNK = 512


def _feedback_seed(seed: int) -> int:
    """A replay-phase root seed decorrelated from the scenario's streams.

    Scenario builders and the executor both spawn children of their root
    seed; deriving the replay root from a *salted* ``SeedSequence`` keeps
    the feedback draws statistically independent of the trace draws while
    remaining a pure function of the run seed.
    """
    sequence = np.random.SeedSequence([int(seed), 0x5EEDFEED])
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that determines a run's bytes (no mechanism knobs).

    ``shards`` is part of the *configuration*, not the execution mechanism:
    the shard layout feeds the per-shard rng derivation, so it must be fixed
    independently of how many workers happen to execute the shards.
    """

    scenario: str = "steady"
    n_events: int = 1000
    n: int = 10
    feedback: str = "position-biased"
    feedback_params: Mapping[str, float] = field(default_factory=dict)
    window: int = 100
    seed: int = 0
    shards: int = 4
    verify: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; available: {list(SCENARIOS)}"
            )
        if self.feedback not in FEEDBACK_MODELS:
            raise ConfigurationError(
                f"unknown feedback model {self.feedback!r}; available: "
                f"{list(FEEDBACK_MODELS)}"
            )
        for name, value, floor in (
            ("n_events", self.n_events, 1),
            ("n", self.n, 1),
            ("window", self.window, 1),
            ("shards", self.shards, 1),
        ):
            if value < floor:
                raise ConfigurationError(f"{name} must be >= {floor}, got {value}")


class ShardReplayTask:
    """Replays one shard of trace events against a parallel-safe source.

    Instances are shipped once per process-pool worker (the executor's
    initializer path); the source serializes as paths and re-opens lazily,
    so shipping cost is O(trace columns), not O(model state).
    """

    needs_rng = True

    def __init__(
        self,
        source: RecommendationSource,
        users: np.ndarray,
        n: int,
        feedback: str,
        feedback_params: Mapping[str, float],
    ) -> None:
        self.source = source
        self.users = users
        self.n = n
        self.feedback = feedback
        self.feedback_params = dict(feedback_params)

    def __call__(
        self, events: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """``(items_block, consumed_per_event)`` for this shard's events."""
        model = create_feedback(self.feedback, **self.feedback_params)
        items_block = np.full((events.size, self.n), -1, dtype=np.int64)
        consumed: list[np.ndarray] = []
        for start in range(0, events.size, _LOOKUP_CHUNK):
            chunk = events[start : start + _LOOKUP_CHUNK]
            items, scores = self.source.rows(self.users[chunk], self.n)
            items_block[start : start + chunk.size] = items[:, : self.n]
            for row in range(chunk.size):
                row_scores = None if scores is None else scores[row]
                consumed.append(model.consume(items[row], row_scores, rng))
        return items_block, consumed


def _replay_online(
    source: RecommendationSource,
    trace: Trace,
    config: SimulationConfig,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Strictly in-order replay with per-event feedback into the source.

    Uses the same shard layout and per-shard generators as the parallel
    path, so the run is a pure function of the seed even though it cannot
    be sharded (each event's consumption changes the next event's answer).
    """
    blocks = trace.shard(config.shards)
    sequences = spawn_seed_sequences(_feedback_seed(config.seed), len(blocks))
    model = create_feedback(config.feedback, **dict(config.feedback_params))
    items_all = np.full((trace.n_events, config.n), -1, dtype=np.int64)
    consumed_all: list[np.ndarray] = []
    for block, sequence in zip(blocks, sequences):
        rng = np.random.default_rng(sequence)
        for event in block.tolist():
            items, scores = source.rows(
                np.asarray([trace.users[event]], dtype=np.int64), config.n
            )
            items_all[event] = items[0, : config.n]
            row_scores = None if scores is None else scores[0]
            eaten = model.consume(items[0], row_scores, rng)
            consumed_all.append(eaten)
            source.push_feedback(eaten)
    return items_all, consumed_all


def _replay_sharded(
    source: RecommendationSource,
    trace: Trace,
    config: SimulationConfig,
    executor: Executor,
) -> tuple[np.ndarray, list[np.ndarray]]:
    blocks = trace.shard(config.shards)
    task = ShardReplayTask(
        source, trace.users, config.n, config.feedback, config.feedback_params
    )
    results = executor.map_blocks(task, blocks, seed=_feedback_seed(config.seed))
    items_all = np.full((trace.n_events, config.n), -1, dtype=np.int64)
    consumed_all: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * trace.n_events
    for block, (items_block, consumed) in zip(blocks, results):
        items_all[block] = items_block
        for offset, event in enumerate(block.tolist()):
            consumed_all[event] = consumed[offset]
    return items_all, consumed_all


def _gini(frequencies: np.ndarray) -> float:
    """Lorenz-curve Gini of a frequency vector (Table III formula)."""
    freq = np.asarray(frequencies, dtype=np.float64)
    total = freq.sum()
    if total <= 0:
        return 1.0
    sorted_freq = np.sort(freq)
    count = sorted_freq.size
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weighted = float(((count + 1 - ranks) * sorted_freq).sum())
    return float((count + 1 - 2.0 * weighted / total) / count)


def _verify_checkpoint(
    state: CoverageState,
    consumed_history: list[np.ndarray],
    window_index: int,
) -> None:
    """The online invariant: delta state == from-scratch recompute, bitwise."""
    fresh = CoverageState.zeros(state.n_items)
    fresh.apply_batch(consumed_history)
    if not np.array_equal(state.counts, fresh.counts) or not np.array_equal(
        state.scores, fresh.scores
    ):
        raise SimulationError(
            f"online invariant violated at window {window_index}: the "
            "delta-updated coverage state diverged from a from-scratch "
            "recompute over the consumed-event history"
        )


@dataclass(frozen=True)
class SimulationResult:
    """A finished run: the trace it consumed and the structured report.

    ``consumed`` holds each event's consumed item indices (same order as
    ``trace``); together with ``trace.users`` it is exactly what
    :func:`repro.data.incremental.consumed_delta` needs to turn the run's
    online feedback into an ingestible rating delta — the simulate →
    ingest → delta-refit → delta-compile loop.
    """

    trace: Trace
    report: dict[str, Any]
    consumed: tuple[np.ndarray, ...] = ()


def run_simulation(
    source: RecommendationSource,
    config: SimulationConfig,
    *,
    split: TrainTestSplit | None = None,
    executor: Executor | None = None,
    trace: Trace | None = None,
) -> SimulationResult:
    """Replay (or generate and replay) a trace and report windowed drift.

    ``split`` supplies held-out futures for the accuracy proxies and train
    popularity for novelty; it defaults to the pipeline's own split when the
    source is a :class:`PipelineSource` and is required by the ``replay``
    scenario.  ``executor`` is pure mechanism — any backend/worker count
    yields byte-identical traces and reports.
    """
    if split is None and isinstance(source, PipelineSource):
        split = source.split
    if trace is None:
        trace = build_trace(
            config.scenario,
            n_users=source.n_users,
            n_items=source.n_items,
            n_events=config.n_events,
            seed=config.seed,
            split=split,
        )
    executor = executor if executor is not None else SerialExecutor()

    # ------------------------------------------------------------------ #
    # Phase 1: replay
    # ------------------------------------------------------------------ #
    baseline_counts = (
        source.coverage_counts() if isinstance(source, PipelineSource) else None
    )
    if source.online or not source.parallel_safe:
        items_all, consumed_all = _replay_online(source, trace, config)
    else:
        items_all, consumed_all = _replay_sharded(source, trace, config, executor)

    # ------------------------------------------------------------------ #
    # Phase 2: windowed drift metrics
    # ------------------------------------------------------------------ #
    n_items = source.n_items
    relevant = None if split is None else relevant_test_items(split.test)
    popularity = (
        None
        if split is None
        else split.train.item_popularity().astype(np.float64)
    )
    max_pop = None if popularity is None else max(float(popularity.max()), 1.0)

    state = CoverageState.zeros(n_items)
    consumed_history: list[np.ndarray] = []
    windows: list[dict[str, Any]] = []

    for start in range(0, trace.n_events, config.window):
        stop = min(start + config.window, trace.n_events)
        index = start // config.window
        window_events = range(start, stop)

        window_freq = np.zeros(n_items, dtype=np.int64)
        window_consumed = [consumed_all[event] for event in window_events]
        consumed_count = int(sum(arr.size for arr in window_consumed))
        precision_sum = recall_sum = 0.0
        accuracy_events = 0
        pop_sum = 0.0
        epc_sum = 0.0
        slot_count = 0
        for event in window_events:
            recs = items_all[event]
            recs = recs[recs >= 0]
            if recs.size:
                np.add.at(window_freq, recs, 1)
                if popularity is not None:
                    pops = popularity[recs]
                    pop_sum += float(pops.sum())
                    epc_sum += float((1.0 - pops / max_pop).sum())
                    slot_count += recs.size
            if relevant is not None:
                rel = relevant[int(trace.users[event])]
                if rel.size:
                    hits = np.intersect1d(recs, rel, assume_unique=False).size
                    precision_sum += hits / float(config.n)
                    recall_sum += hits / float(rel.size)
                    accuracy_events += 1

        # Cumulative coverage via the O(N) delta path, with the windowed
        # what-if round trip: apply the window, and under --verify prove
        # revert() is its exact inverse before re-applying.
        covered_before = int(np.count_nonzero(state.counts))
        if config.verify:
            pre_counts = state.counts.copy()
            pre_scores = state.scores.copy()
        state.apply_batch(window_consumed)
        covered_after = int(np.count_nonzero(state.counts))
        if config.verify:
            flat = (
                np.concatenate(window_consumed)
                if consumed_count
                else np.empty(0, dtype=np.int64)
            )
            state.revert(flat)
            if not np.array_equal(state.counts, pre_counts) or not np.array_equal(
                state.scores, pre_scores
            ):
                raise SimulationError(
                    f"revert() failed to invert window {index}'s apply_batch"
                )
            state.apply(flat)
        consumed_history.extend(window_consumed)
        if config.verify:
            _verify_checkpoint(state, consumed_history, index)

        kinds = trace.kinds[start:stop]
        windows.append(
            {
                "index": index,
                "start": start,
                "end": stop,
                "events": stop - start,
                "unique_users": int(np.unique(trace.users[start:stop]).size),
                "cold_arrivals": int((kinds == KIND_COLD).sum()),
                "returning_arrivals": int((kinds == KIND_RETURNING).sum()),
                "consumed": consumed_count,
                "window_coverage": float(np.count_nonzero(window_freq)) / n_items,
                "window_gini": _gini(window_freq),
                "cumulative_coverage": covered_after / n_items,
                "cumulative_gini": _gini(state.counts),
                "coverage_gain": (covered_after - covered_before) / n_items,
                "precision": (
                    None
                    if relevant is None or accuracy_events == 0
                    else precision_sum / accuracy_events
                ),
                "recall": (
                    None
                    if relevant is None or accuracy_events == 0
                    else recall_sum / accuracy_events
                ),
                "epc": (
                    None if popularity is None or slot_count == 0 else epc_sum / slot_count
                ),
                "arp": (
                    None if popularity is None or slot_count == 0 else pop_sum / slot_count
                ),
            }
        )

    # Online sources: the live coverage state must have advanced by exactly
    # the consumed history (float adds of unit increments are exact).
    if config.verify and baseline_counts is not None:
        after = source.coverage_counts()
        assert after is not None
        if not np.array_equal(after, baseline_counts + state.counts):
            raise SimulationError(
                "online invariant violated: the live pipeline coverage state "
                "does not equal its baseline plus the consumed-event history"
            )

    kind_counts = trace.kind_counts()
    report: dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "simulation-report",
        "scenario": trace.scenario,
        "feedback": config.feedback,
        "source": source.kind,
        "config": {
            "events": trace.n_events,
            "n": config.n,
            "window": config.window,
            "seed": config.seed,
            "shards": config.shards,
            "n_users": trace.n_users,
            "n_items": trace.n_items,
            "online": bool(source.online),
            "verified": bool(config.verify),
        },
        "trace_digest": trace.digest(),
        "windows": windows,
        "totals": {
            "events": trace.n_events,
            "consumed": int(sum(arr.size for arr in consumed_all)),
            "unique_users": int(np.unique(trace.users).size),
            "existing_arrivals": kind_counts["existing"],
            "cold_arrivals": kind_counts["cold"],
            "returning_arrivals": kind_counts["returning"],
            "cumulative_coverage": float(np.count_nonzero(state.counts)) / n_items,
            "cumulative_gini": _gini(state.counts),
        },
    }
    return SimulationResult(trace=trace, report=report, consumed=tuple(consumed_all))
