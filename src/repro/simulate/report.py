"""Structured simulation run reports with one canonical byte encoding.

A run report is the simulator's durable output: the run configuration, the
trace digest, a per-window series of drift metrics and whole-run totals.
The schema is pinned (:data:`REPORT_SCHEMA_VERSION`, fixed key sets) and the
encoding is canonical — sorted keys, minimal separators, one trailing
newline — so two runs can be compared byte-for-byte, which is exactly how
the determinism tests and the CI smoke job compare backends.

Determinism rule: nothing wall-clock-dependent may enter a report.
Throughput numbers live in ``BENCH_simulate.json``, not here.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.exceptions import SimulationError

REPORT_SCHEMA_VERSION = 1

#: Exact key set of every per-window record.  ``precision``, ``recall``,
#: ``epc`` and ``arp`` are ``None`` when the run had no split / popularity
#: context (plain store or HTTP replay); everything else is always a number.
WINDOW_KEYS = frozenset(
    {
        "index",
        "start",
        "end",
        "events",
        "unique_users",
        "cold_arrivals",
        "returning_arrivals",
        "consumed",
        "window_coverage",
        "window_gini",
        "cumulative_coverage",
        "cumulative_gini",
        "coverage_gain",
        "precision",
        "recall",
        "epc",
        "arp",
    }
)

#: Metrics that may legitimately be ``None`` (missing context, empty window).
_OPTIONAL_KEYS = frozenset({"precision", "recall", "epc", "arp"})

_TOP_LEVEL_KEYS = frozenset(
    {"schema", "kind", "scenario", "feedback", "source", "config", "trace_digest",
     "windows", "totals"}
)


def _check_number(value: Any, where: str, errors: list[str]) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(f"{where} must be a number, got {type(value).__name__}")
    elif isinstance(value, float) and not math.isfinite(value):
        errors.append(f"{where} must be finite, got {value!r}")


def validate_report(payload: Any) -> list[str]:
    """All schema violations in ``payload`` (empty list = valid report)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"report must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != REPORT_SCHEMA_VERSION:
        errors.append(
            f"schema must be {REPORT_SCHEMA_VERSION}, got {payload.get('schema')!r}"
        )
    if payload.get("kind") != "simulation-report":
        errors.append(f"kind must be 'simulation-report', got {payload.get('kind')!r}")
    missing = _TOP_LEVEL_KEYS - payload.keys()
    if missing:
        errors.append(f"missing top-level keys: {sorted(missing)}")
    extra = payload.keys() - _TOP_LEVEL_KEYS
    if extra:
        errors.append(f"unexpected top-level keys: {sorted(extra)}")
    for field in ("scenario", "feedback", "source", "trace_digest"):
        if field in payload and not isinstance(payload[field], str):
            errors.append(f"{field} must be a string")
    config = payload.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object of flat scalars")
    else:
        for key, value in config.items():
            if not isinstance(value, (str, bool)):
                _check_number(value, f"config[{key!r}]", errors)
    windows = payload.get("windows")
    if not isinstance(windows, list):
        errors.append("windows must be a list")
        windows = []
    for position, window in enumerate(windows):
        where = f"windows[{position}]"
        if not isinstance(window, dict):
            errors.append(f"{where} must be an object")
            continue
        if window.keys() != WINDOW_KEYS:
            errors.append(
                f"{where} keys differ from the pinned set: "
                f"missing {sorted(WINDOW_KEYS - window.keys())}, "
                f"extra {sorted(window.keys() - WINDOW_KEYS)}"
            )
            continue
        for key, value in window.items():
            if value is None and key in _OPTIONAL_KEYS:
                continue
            _check_number(value, f"{where}[{key!r}]", errors)
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals must be an object")
    else:
        for key, value in totals.items():
            if value is None:
                continue
            _check_number(value, f"totals[{key!r}]", errors)
    return errors


def canonical_bytes(payload: dict[str, Any]) -> bytes:
    """The report's one canonical encoding (what determinism tests compare)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def write_report(payload: dict[str, Any], path: str | Path) -> Path:
    """Validate and write a report in canonical form; returns the path."""
    errors = validate_report(payload)
    if errors:
        raise SimulationError(
            "refusing to write an invalid simulation report:\n  " + "\n  ".join(errors)
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(canonical_bytes(payload))
    return path


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report written by :func:`write_report`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    errors = validate_report(payload)
    if errors:
        raise SimulationError(
            f"{path} is not a valid simulation report:\n  " + "\n  ".join(errors)
        )
    return payload
