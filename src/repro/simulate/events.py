"""Timestamped interaction traces: the input stream of the traffic simulator.

A :class:`Trace` is a columnar event log — parallel ``timestamps`` / ``users``
arrays plus a derived per-event *arrival kind* — describing who asks for
recommendations and when.  Traces are the determinism anchor of the whole
subsystem: scenario generators build them from ``SeedSequence``-derived
streams only, and :meth:`Trace.tobytes` defines one canonical byte encoding
so two runs can be compared with a single digest instead of array-by-array.

Arrival kinds distinguish the three user populations the paper's dynamic
coverage variants react to differently:

* ``KIND_EXISTING`` — a known user's first arrival in the trace,
* ``KIND_COLD`` — the first arrival of a user from the scenario's cold-start
  pool (no prior interactions in the replayed world),
* ``KIND_RETURNING`` — any repeat arrival, whose feedback has already shifted
  the coverage state once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError

#: Arrival kinds (values are part of the canonical trace encoding).
KIND_EXISTING = 0
KIND_COLD = 1
KIND_RETURNING = 2

_ENCODING_VERSION = 1


def label_kinds(users: np.ndarray, cold_pool: np.ndarray) -> np.ndarray:
    """Derive per-event arrival kinds from the user column.

    The first occurrence of a user is ``KIND_COLD`` when the user belongs to
    ``cold_pool`` and ``KIND_EXISTING`` otherwise; every later occurrence is
    ``KIND_RETURNING``.  Pure function of its inputs, so the kinds never need
    to be shipped separately from the user column.
    """
    users = np.asarray(users, dtype=np.int64)
    cold = set(np.asarray(cold_pool, dtype=np.int64).tolist())
    kinds = np.empty(users.size, dtype=np.uint8)
    seen: set[int] = set()
    for position, user in enumerate(users.tolist()):
        if user in seen:
            kinds[position] = KIND_RETURNING
        else:
            seen.add(user)
            kinds[position] = KIND_COLD if user in cold else KIND_EXISTING
    return kinds


@dataclass(frozen=True)
class Trace:
    """An immutable, canonical event log for one simulation run."""

    scenario: str
    seed: int
    n_users: int
    n_items: int
    timestamps: np.ndarray = field(repr=False)
    users: np.ndarray = field(repr=False)
    kinds: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        timestamps = np.ascontiguousarray(self.timestamps, dtype=np.float64)
        users = np.ascontiguousarray(self.users, dtype=np.int64)
        kinds = np.ascontiguousarray(self.kinds, dtype=np.uint8)
        if not (timestamps.shape == users.shape == kinds.shape) or timestamps.ndim != 1:
            raise SimulationError(
                "trace columns must be parallel 1-D arrays, got shapes "
                f"{timestamps.shape}/{users.shape}/{kinds.shape}"
            )
        if timestamps.size:
            if np.diff(timestamps).min() < 0:
                raise SimulationError("trace timestamps must be non-decreasing")
            if users.min() < 0 or users.max() >= self.n_users:
                raise SimulationError(
                    f"trace user indices must lie in [0, {self.n_users}), got "
                    f"range [{users.min()}, {users.max()}]"
                )
        for name, value in (("timestamps", timestamps), ("users", users), ("kinds", kinds)):
            value.setflags(write=False)
            object.__setattr__(self, name, value)

    @property
    def n_events(self) -> int:
        """Number of events in the trace."""
        return self.timestamps.size

    def __len__(self) -> int:
        return self.n_events

    def shard(self, n_shards: int) -> list[np.ndarray]:
        """Split the event axis into ``n_shards`` contiguous index blocks.

        The shard layout is a pure function of ``(n_events, n_shards)`` —
        never of worker counts — which is what makes sharded replay
        byte-identical across executor backends and ``--jobs`` values.
        Trailing shards may be one event shorter; empty shards are dropped.
        """
        if n_shards < 1:
            raise SimulationError(f"n_shards must be >= 1, got {n_shards}")
        blocks = np.array_split(np.arange(self.n_events, dtype=np.int64), n_shards)
        return [block for block in blocks if block.size]

    def tobytes(self) -> bytes:
        """One canonical byte encoding of the whole trace.

        Header fields and column bytes are concatenated in a fixed order
        (little-endian scalars, C-order arrays), so byte equality here is
        exactly array-and-metadata equality.
        """
        header = (
            np.array(
                [_ENCODING_VERSION, self.seed, self.n_users, self.n_items, self.n_events],
                dtype=np.int64,
            ).tobytes()
            + self.scenario.encode("utf-8")
            + b"\x00"
        )
        return (
            header
            + self.timestamps.tobytes()
            + self.users.tobytes()
            + self.kinds.tobytes()
        )

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`tobytes` (recorded in run reports)."""
        return hashlib.sha256(self.tobytes()).hexdigest()

    def kind_counts(self) -> dict[str, int]:
        """Event counts per arrival kind (for report totals)."""
        kinds = self.kinds
        return {
            "existing": int((kinds == KIND_EXISTING).sum()),
            "cold": int((kinds == KIND_COLD).sum()),
            "returning": int((kinds == KIND_RETURNING).sum()),
        }
