"""Recommendation sources: where the simulator gets its top-N rows from.

One simulator, three deployment shapes:

* :class:`PipelineSource` — a live fitted :class:`~repro.pipeline.Pipeline`.
  For GANC specs with dynamic coverage this is the *online* mode: consumed
  items flow back into the live :class:`~repro.coverage.state.CoverageState`
  via its O(N) delta, so every later arrival is answered against the shifted
  state — the Dyn optimizers running genuinely online.
* :class:`StoreSource` — a compiled, memory-mapped
  :class:`~repro.serving.store.RecommendationStore` artifact.  Stateless and
  constructed from paths, so it pickles cheaply into process-pool workers
  and trace shards can replay in parallel.
* :class:`HTTPSource` — a running ``repro serve`` tier reached over HTTP;
  the end-to-end mode, which also scrapes the tier's Prometheus
  ``/metrics`` endpoint for the run report.

The common contract is :meth:`RecommendationSource.rows`: a batched
``(users, n) -> (items, scores | None)`` lookup with the library's standard
``-1``-padded rows.  ``parallel_safe`` tells the engine whether shards may
fan out over an executor; ``online`` tells it that feedback mutates the
source, which forces strictly in-order sequential consumption.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.pipeline.pipeline import Pipeline

#: Names accepted by the ``--source`` CLI flag.
SOURCE_KINDS = ("pipeline", "store", "http")


class RecommendationSource(ABC):
    """Answers batched top-N lookups for the simulator's event stream."""

    #: source kind label recorded in run reports
    kind: str = "abstract"
    #: whether independent trace shards may query this source concurrently
    parallel_safe: bool = False
    #: whether consumed feedback mutates the source's recommendation state
    online: bool = False

    @property
    @abstractmethod
    def n_users(self) -> int:
        """Size of the user universe the source can answer for."""

    @property
    @abstractmethod
    def n_items(self) -> int:
        """Size of the item universe recommendations are drawn from."""

    @abstractmethod
    def rows(self, users: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Top-``n`` rows for a block of users: ``(items, scores | None)``."""

    def push_feedback(self, items: np.ndarray) -> None:
        """Record one event's consumed items (no-op for offline sources)."""
        del items

    def close(self) -> None:
        """Release any held connections or maps (no-op by default)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r}, online={self.online})"


class PipelineSource(RecommendationSource):
    """Serve events from a live fitted pipeline, optionally with online feedback.

    ``online`` is true exactly when the pipeline is a GANC run with dynamic
    coverage: ``Pipeline.recommend`` evaluates each user against the
    *current* coverage state, and :meth:`push_feedback` advances that state
    through the O(N) ``CoverageState.apply`` delta.
    """

    kind = "pipeline"
    parallel_safe = False  # feedback (or shared model state) is not shardable

    def __init__(self, pipeline: Pipeline | str | Path) -> None:
        if not isinstance(pipeline, Pipeline):
            pipeline = Pipeline.load(pipeline)
        if not pipeline.is_fitted:
            raise ConfigurationError("PipelineSource needs a fitted pipeline")
        self.pipeline = pipeline
        model = pipeline.model
        self._coverage = (
            model.coverage if model is not None and model.coverage.is_dynamic else None
        )
        self.online = self._coverage is not None

    @property
    def n_users(self) -> int:
        """User-universe size of the fitted split."""
        return self.pipeline.split.train.n_users

    @property
    def n_items(self) -> int:
        """Item-universe size of the fitted split."""
        return self.pipeline.split.train.n_items

    @property
    def split(self):
        """The fitted split (gives the engine held-out futures for accuracy)."""
        return self.pipeline.split

    def rows(self, users: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Live top-``n`` rows against the *current* coverage state."""
        return self.pipeline.recommend(np.asarray(users, dtype=np.int64), n), None

    def push_feedback(self, items: np.ndarray) -> None:
        """Advance the dynamic coverage state by the consumed items."""
        if self._coverage is not None and np.asarray(items).size:
            self._coverage.update(np.asarray(items, dtype=np.int64))

    def coverage_counts(self) -> np.ndarray | None:
        """The live coverage counts (for online-invariant verification)."""
        if self._coverage is None:
            return None
        return self._coverage.state.counts.copy()


class StoreSource(RecommendationSource):
    """Serve events from a compiled artifact via :class:`RecommendationStore`.

    Holds only the artifact/pipeline *paths* and opens the store lazily, so
    instances pickle into process-pool workers without shipping mapped
    shards; each worker re-maps the artifact on first use (mmap pages are
    shared by the OS anyway).
    """

    kind = "store"
    parallel_safe = True

    def __init__(
        self,
        artifact_dir: str | Path,
        *,
        pipeline_dir: str | Path | None = None,
    ) -> None:
        self.artifact_dir = Path(artifact_dir)
        self.pipeline_dir = None if pipeline_dir is None else Path(pipeline_dir)
        self._store = None
        self._open()  # validate eagerly in the parent process

    def _open(self):
        if self._store is None:
            from repro.serving.store import RecommendationStore

            self._store = RecommendationStore(
                self.artifact_dir, pipeline=self.pipeline_dir
            )
        return self._store

    def __getstate__(self) -> dict:
        return {
            "artifact_dir": self.artifact_dir,
            "pipeline_dir": self.pipeline_dir,
        }

    def __setstate__(self, state: dict) -> None:
        self.artifact_dir = state["artifact_dir"]
        self.pipeline_dir = state["pipeline_dir"]
        self._store = None

    @property
    def n_users(self) -> int:
        """User-universe size recorded in the artifact manifest."""
        return self._open().n_users_total

    @property
    def n_items(self) -> int:
        """Item-universe size recorded in the artifact manifest."""
        store = self._open()
        n_items = store.manifest.get("n_items")
        if n_items is None:
            raise SimulationError(
                f"artifact {self.artifact_dir} predates n_items manifests; "
                "recompile it with repro compile"
            )
        return int(n_items)

    def rows(self, users: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Batched ``lookup_rows`` against the memory-mapped artifact."""
        items, scores, _ = self._open().lookup_rows(np.asarray(users, dtype=np.int64), n)
        return items, scores


class HTTPSource(RecommendationSource):
    """Serve events from a running ``repro serve`` tier over HTTP.

    Each event is one ``GET /recommend`` round trip (both tiers answer it);
    the universe sizes come from ``GET /manifest``.  ``scrape_metrics``
    fetches the tier's Prometheus ``/metrics`` text for the run report.
    """

    kind = "http"
    parallel_safe = False  # one connection, ordered requests

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"base_url must start with http:// or https://, got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        manifest = self._get_json("/manifest")
        self._n_users = int(manifest.get("n_users_total", manifest["n_users"]))
        n_items = manifest.get("n_items")
        if n_items is None:
            raise SimulationError(
                f"the tier at {self.base_url} serves an artifact without "
                "n_items in its manifest; recompile it with repro compile"
            )
        self._n_items = int(n_items)

    def _get(self, path: str) -> bytes:
        try:
            with urllib.request.urlopen(self.base_url + path, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.URLError as error:
            raise SimulationError(
                f"request to {self.base_url + path} failed: {error}"
            ) from None

    def _get_json(self, path: str) -> dict:
        return json.loads(self._get(path).decode("utf-8"))

    @property
    def n_users(self) -> int:
        """User-universe size from the tier's ``/manifest``."""
        return self._n_users

    @property
    def n_items(self) -> int:
        """Item-universe size from the tier's ``/manifest``."""
        return self._n_items

    def rows(self, users: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray | None]:
        """One ``GET /recommend`` round trip per user in the block."""
        users = np.asarray(users, dtype=np.int64)
        items = np.full((users.size, n), -1, dtype=np.int64)
        scores = np.full((users.size, n), np.nan, dtype=np.float64)
        have_scores = False
        for row, user in enumerate(users.tolist()):
            payload = self._get_json(f"/recommend?user={user}&n={n}")
            got = np.asarray(payload["items"], dtype=np.int64)
            items[row, : got.size] = got
            if payload.get("scores") is not None:
                row_scores = [
                    np.nan if s is None else float(s) for s in payload["scores"]
                ]
                scores[row, : len(row_scores)] = row_scores
                have_scores = True
        return items, (scores if have_scores else None)

    def scrape_metrics(self) -> str:
        """The serving tier's Prometheus ``/metrics`` exposition text."""
        return self._get("/metrics").decode("utf-8")


def create_source(
    source: str,
    *,
    artifact_dir: str | Path | None = None,
    pipeline_dir: str | Path | None = None,
    url: str | None = None,
) -> RecommendationSource:
    """Build the source the ``--source`` CLI flag names.

    Validates the flag combinations up front with errors naming the missing
    flag, mirroring the other subcommands' parse-time checks.
    """
    if source not in SOURCE_KINDS:
        raise ConfigurationError(
            f"unknown source {source!r}; available: {list(SOURCE_KINDS)}"
        )
    if source == "pipeline":
        if pipeline_dir is None:
            raise ConfigurationError("--source pipeline requires --pipeline DIR")
        return PipelineSource(pipeline_dir)
    if source == "store":
        if artifact_dir is None:
            raise ConfigurationError("--source store requires --artifact DIR")
        return StoreSource(artifact_dir, pipeline_dir=pipeline_dir)
    if url is None:
        raise ConfigurationError("--source http requires --url URL")
    return HTTPSource(url)
